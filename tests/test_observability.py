"""Tests for the static (BDD) verification helpers."""

from repro.boolean.expr import and_, not_, or_, var
from repro.core import derive_activation_functions
from repro.core.isolate import isolate_candidate
from repro.verify import (
    activation_preserved_after_isolation,
    functions_equivalent,
)


class TestFunctionsEquivalent:
    def test_demorgan(self):
        a, b = var("a"), var("b")
        assert functions_equivalent(not_(and_(a, b)), or_(not_(a), not_(b)))

    def test_inequivalent(self):
        assert not functions_equivalent(var("a"), var("b"))


class TestActivationPreservation:
    def originals(self, design):
        analysis = derive_activation_functions(design)
        return {m.name: analysis.of_module(m) for m in design.datapath_modules}

    def test_holds_after_each_style(self, fig1):
        for style in ("and", "or", "latch"):
            originals = self.originals(fig1)
            working = fig1.copy()
            analysis = derive_activation_functions(working)
            instance = isolate_candidate(
                working,
                working.cell("a1"),
                analysis.of_module(working.cell("a1")),
                style,
            )
            assert activation_preserved_after_isolation(
                originals, working, [instance]
            )

    def test_holds_after_sequential_isolations(self, d1):
        originals = self.originals(d1)
        working = d1.copy()
        instances = []
        for name in ("mul0", "add0"):
            analysis = derive_activation_functions(working)
            instances.append(
                isolate_candidate(
                    working,
                    working.cell(name),
                    analysis.of_module(working.cell(name)),
                    "and",
                )
            )
        assert activation_preserved_after_isolation(originals, working, instances)

    def test_detects_bogus_strengthening(self, fig1):
        """If the 'original' claims a0 is never active, re-derivation must
        contradict it."""
        originals = self.originals(fig1)
        from repro.boolean.expr import FALSE

        originals["a0"] = FALSE
        working = fig1.copy()
        analysis = derive_activation_functions(working)
        instance = isolate_candidate(
            working, working.cell("a1"), analysis.of_module(working.cell("a1")), "and"
        )
        assert not activation_preserved_after_isolation(
            originals, working, [instance]
        )
