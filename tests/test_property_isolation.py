"""Property-based tests of the central correctness invariants.

Over seeded random datapaths and random control statistics:

1. **Safety** — applying the full Algorithm-1 flow with any isolation
   style never changes observable behaviour (register loads, outputs).
2. **Activation soundness (dynamic)** — whenever a register loads a value
   that structurally depends on a module's output within the same
   combinational block, the module's derived activation function holds in
   that cycle (so the isolation banks were transparent).
3. **Transform sanity** — the transformed design still validates, and
   never gains primary inputs/outputs or architectural registers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IsolationConfig, derive_activation_functions, isolate_design
from repro.designs import random_datapath
from repro.netlist.validate import validate_design
from repro.sim.engine import Simulator
from repro.sim.probes import ProbeSet
from repro.sim.stimulus import random_stimulus
from repro.verify import check_observable_equivalence

STYLES = ["and", "or", "latch"]


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 400),
    style=st.sampled_from(STYLES),
    p=st.sampled_from([0.15, 0.5, 0.85]),
)
def test_isolation_preserves_observable_behaviour(seed, style, p):
    design = random_datapath(seed=seed, layers=2, modules_per_layer=2)

    def stimulus():
        return random_stimulus(design, seed=seed + 1, control_probability=p)

    result = isolate_design(
        design, stimulus, IsolationConfig(style=style, cycles=250)
    )
    validate_design(result.design)
    report = check_observable_equivalence(design, result.design, stimulus(), 600)
    assert report.equivalent, report.mismatches[:3]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 400))
def test_transform_preserves_interface(seed):
    design = random_datapath(seed=seed, layers=2, modules_per_layer=3)

    def stimulus():
        return random_stimulus(design, seed=seed, control_probability=0.3)

    result = isolate_design(design, stimulus, IsolationConfig(cycles=200))
    assert {c.name for c in result.design.primary_inputs} == {
        c.name for c in design.primary_inputs
    }
    assert {c.name for c in result.design.primary_outputs} == {
        c.name for c in design.primary_outputs
    }
    assert {c.name for c in result.design.registers} == {
        c.name for c in design.registers
    }


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 400), p=st.sampled_from([0.2, 0.5, 0.8]))
def test_activation_functions_are_dynamically_sound(seed, p):
    """If a module's output value reaches a loading register this cycle,
    its activation function must evaluate true this cycle.

    Checked by perturbation: simulate normally and with the module's
    output XOR-flipped; any divergence in committed register state at a
    cycle where f_c = 0 would be a soundness bug.
    """
    design = random_datapath(seed=seed, layers=2, modules_per_layer=2)
    analysis = derive_activation_functions(design)
    modules = [m for m in design.datapath_modules
               if not analysis.of_module(m).is_true]
    if not modules:
        return
    module = modules[0]
    f_c = analysis.of_module(module)

    probes = ProbeSet({"f": f_c})
    stim = random_stimulus(design, seed=seed, control_probability=p)
    sim = Simulator(design)
    probes.begin(design)

    twin = Simulator(design.copy())
    twin_module = twin.design.cell(module.name)
    out_net = module.net("Y")
    twin_out = twin_module.net("Y")

    for cycle in range(300):
        values = stim.values(cycle)
        settled = sim.step(values)
        twin_settled = twin.step(values)
        active = f_c.evaluate(
            {
                name: _bit(design, settled, name)
                for name in f_c.support()
            }
        )
        # Corrupt the twin's module output after settling, re-evaluate its
        # downstream cone, then compare committed register state.
        twin.values[twin_out] = twin_out.clip(twin_settled[twin_out] ^ twin_out.mask)
        _resettle_downstream(twin, twin_module)
        sim.commit()
        twin.commit()
        if not active:
            for reg in design.registers:
                assert (
                    sim.state[reg] == twin.state[twin.design.cell(reg.name)]
                ), f"cycle {cycle}: corrupting idle module {module.name} leaked into {reg.name}"
        else:
            # Re-synchronise the twin with the golden state.
            for reg in design.registers:
                twin.state[twin.design.cell(reg.name)] = sim.state[reg]
                twin.values[twin.design.cell(reg.name).net("Q")] = sim.state[reg]
            for cell, state in sim.state.items():
                if not cell.is_sequential:
                    twin.state[twin.design.cell(cell.name)] = state


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 400),
    style=st.sampled_from(STYLES),
    p=st.sampled_from([0.2, 0.5, 0.8]),
)
def test_lookahead_isolation_preserves_outputs(seed, style, p):
    """With registered controls, look-ahead derivation finds real
    prediction opportunities; outputs must still match cycle-for-cycle
    (registers may legitimately differ — free-running pipeline stages
    can hold blocked values)."""
    design = random_datapath(
        seed=seed, layers=2, modules_per_layer=2, registered_controls=True
    )

    def stimulus():
        return random_stimulus(design, seed=seed + 3, control_probability=p)

    result = isolate_design(
        design,
        stimulus,
        IsolationConfig(style=style, cycles=250, lookahead_depth=1),
    )
    validate_design(result.design)
    report = check_observable_equivalence(
        design, result.design, stimulus(), 600, compare_registers=False
    )
    assert report.equivalent, report.mismatches[:3]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 400))
def test_lookahead_only_strengthens(seed):
    """Look-ahead activation functions always imply the baseline's."""
    from repro.boolean.bdd import BddManager
    from repro.core.lookahead import derive_with_lookahead

    design = random_datapath(
        seed=seed, layers=2, modules_per_layer=2, registered_controls=True
    )
    baseline = derive_activation_functions(design)
    ahead = derive_with_lookahead(design, depth=2)
    manager = BddManager()
    for module in design.datapath_modules:
        assert manager.implies(
            ahead.of_module(module), baseline.of_module(module)
        ), module.name


def _bit(design, settled, name):
    from repro.netlist.bitref import parse_bitref

    net, bit = parse_bitref(design, name)
    return (settled[net] >> bit) & 1


def _resettle_downstream(sim, module):
    """Re-evaluate combinational cells downstream of ``module`` only."""
    from repro.netlist.traversal import transitive_fanout_cells

    downstream = transitive_fanout_cells(module, stop_at_sequential=True)
    for cell in sim._order:
        if cell not in downstream:
            continue
        inputs = {
            port: sim.values[net]
            for port, net in cell.connections()
            if cell.port_spec(port).direction.value == "in"
        }
        if getattr(cell, "has_state", False):
            out_port = cell.output_ports[0]
            sim.values[cell.net(out_port)] = cell.output_value(
                sim.state[cell], inputs
            )
        else:
            for port, value in cell.evaluate(inputs).items():
                sim.values[cell.net(port)] = value
