"""Edge-case coverage across the pipeline: degenerate designs, unusual
configurations, boundary behaviours."""

import pytest

from repro.core import IsolationConfig, compare_styles, isolate_design
from repro.core.explore import rank_candidates
from repro.netlist.builder import DesignBuilder
from repro.sim import SequenceStimulus, random_stimulus


def moduleless_design():
    """Pure glue logic: no isolation candidates at all."""
    b = DesignBuilder("glue")
    x = b.input("X", 8)
    y = b.input("Y", 8)
    g = b.input("G", 1)
    masked = b.and_(x, y)
    q = b.register(masked, enable=g, name="r0")
    b.output(q, "OUT")
    return b.build()


def po_only_module():
    """A candidate feeding a primary output directly: always active."""
    b = DesignBuilder("po_only")
    x = b.input("X", 8)
    y = b.input("Y", 8)
    b.output(b.add(x, y, name="a0"), "OUT")
    return b.build()


class TestDegenerateDesigns:
    def test_no_candidates_is_a_clean_noop(self):
        design = moduleless_design()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=1),
            IsolationConfig(cycles=100),
        )
        assert result.isolated_names == []
        assert result.final.power_mw == pytest.approx(
            result.baseline.power_mw, rel=0.01
        )

    def test_always_active_candidate_never_isolated(self):
        design = po_only_module()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=1),
            IsolationConfig(cycles=100),
        )
        assert result.isolated_names == []

    def test_rank_handles_no_candidates(self):
        design = moduleless_design()
        ranked = rank_candidates(
            design, random_stimulus(design, seed=1), cycles=100
        )
        assert ranked == []

    def test_semantic_tautology_pruned(self):
        """f = S + S̄ (full mux decode) is semantically always active."""
        b = DesignBuilder("taut")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        s = b.input("S", 1)
        total = b.add(x, y, name="a0")
        routed = b.mux(s, total, total, name="m0")  # both legs!
        b.output(b.register(routed, name="r0"), "OUT")
        design = b.build()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=1),
            IsolationConfig(cycles=100),
        )
        assert result.isolated_names == []


class TestConfigurationEdges:
    def test_compare_styles_subset(self, d1):
        stim = lambda: random_stimulus(d1, seed=1, control_probability=0.2)
        comparison = compare_styles(
            d1, stim, IsolationConfig(cycles=200), styles=["or"]
        )
        labels = [row.label for row in comparison.rows]
        assert labels == ["non-isolated", "OR-isolated"]

    def test_zero_warmup(self, tiny_design):
        stim = SequenceStimulus([{"A": 1, "C": 2, "S": 0, "G": 1}])
        from repro.power import estimate_power

        breakdown = estimate_power(tiny_design, stim, 10, warmup=0)
        assert breakdown.total_power_mw >= 0

    def test_one_cycle_simulation(self, tiny_design):
        from repro.sim import Simulator, ToggleMonitor

        monitor = ToggleMonitor()
        Simulator(tiny_design).run(
            SequenceStimulus([{"A": 1, "C": 2, "S": 0, "G": 1}]),
            1,
            monitors=[monitor],
        )
        assert monitor.cycles == 1
        assert all(rate == 0.0 for rate in monitor.toggle_rates().values())

    def test_stimulus_with_extra_keys_tolerated(self, tiny_design):
        from repro.sim import Simulator

        sim = Simulator(tiny_design)
        sim.step({"A": 1, "C": 2, "S": 0, "G": 1, "GHOST": 99})

    def test_result_summary_with_no_isolation(self):
        design = moduleless_design()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=1),
            IsolationConfig(cycles=100),
        )
        assert "(none)" in result.summary()

    def test_width_one_datapath(self):
        """One-bit 'datapath' modules still work end to end."""
        b = DesignBuilder("w1")
        x = b.input("X", 1)
        y = b.input("Y", 1)
        g = b.input("G", 1)
        total = b.add(x, y, name="a0")
        b.output(b.register(total, enable=g, name="r0"), "OUT")
        design = b.build()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=2, control_probability=0.2),
            IsolationConfig(cycles=300),
        )
        from repro.verify import check_observable_equivalence

        report = check_observable_equivalence(
            design, result.design,
            random_stimulus(design, seed=2, control_probability=0.2), 500,
        )
        assert report.equivalent
