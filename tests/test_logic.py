"""Unit tests for gates, muxes, buffers and bit selects."""

import pytest

from repro.errors import NetlistError
from repro.netlist.design import Design
from repro.netlist.logic import (
    AndGate,
    BitSelect,
    Buffer,
    Mux,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    XnorGate,
    XorGate,
)


def wire2(cell_cls, width=4, **kwargs):
    d = Design("t")
    cell = d.add_cell(cell_cls("u", **kwargs))
    d.connect(cell, "A", d.add_net("na", width))
    d.connect(cell, "B", d.add_net("nb", width))
    d.connect(cell, "Y", d.add_net("ny", width))
    return cell


class TestGates:
    @pytest.mark.parametrize(
        "cls,a,b,expected",
        [
            (AndGate, 0b1100, 0b1010, 0b1000),
            (OrGate, 0b1100, 0b1010, 0b1110),
            (XorGate, 0b1100, 0b1010, 0b0110),
            (NandGate, 0b1100, 0b1010, 0b0111),
            (NorGate, 0b1100, 0b1010, 0b0001),
            (XnorGate, 0b1100, 0b1010, 0b1001),
        ],
    )
    def test_bitwise_truth_tables(self, cls, a, b, expected):
        cell = wire2(cls)
        assert cell.evaluate({"A": a, "B": b})["Y"] == expected

    def test_results_clipped_to_width(self):
        cell = wire2(NandGate, width=4)
        assert cell.evaluate({"A": 0, "B": 0})["Y"] == 0xF

    @pytest.mark.parametrize(
        "cls,controlling",
        [(AndGate, 0), (NandGate, 0), (OrGate, 1), (NorGate, 1), (XorGate, None)],
    )
    def test_controlling_values(self, cls, controlling):
        assert cls.CONTROLLING == controlling

    def test_side_ports(self):
        cell = wire2(AndGate)
        assert cell.side_ports("A") == ["B"]
        assert cell.side_ports("B") == ["A"]
        with pytest.raises(NetlistError):
            cell.side_ports("Y")

    def test_not_gate(self):
        d = Design("t")
        g = d.add_cell(NotGate("n"))
        d.connect(g, "A", d.add_net("a", 4))
        d.connect(g, "Y", d.add_net("y", 4))
        assert g.evaluate({"A": 0b1010})["Y"] == 0b0101

    def test_buffer_passes_value(self):
        d = Design("t")
        g = d.add_cell(Buffer("b"))
        d.connect(g, "A", d.add_net("a", 4))
        d.connect(g, "Y", d.add_net("y", 4))
        assert g.evaluate({"A": 9})["Y"] == 9

    def test_gate_width_inference(self):
        d = Design("t")
        g = d.add_cell(AndGate("g"))
        d.connect(g, "A", d.add_net("a", 8))
        assert g.port_width("B") == 8
        assert g.port_width("Y") == 8


class TestMux:
    def make_mux(self, n, width=4):
        d = Design("t")
        m = d.add_cell(Mux("m", n_inputs=n))
        for i in range(n):
            d.connect(m, f"D{i}", d.add_net(f"d{i}", width))
        d.connect(m, "S", d.add_net("s", m.select_width))
        d.connect(m, "Y", d.add_net("y", width))
        return m

    def test_two_way_select(self):
        m = self.make_mux(2)
        env = {"D0": 3, "D1": 7, "S": 0}
        assert m.evaluate(env)["Y"] == 3
        env["S"] = 1
        assert m.evaluate(env)["Y"] == 7

    def test_four_way_select(self):
        m = self.make_mux(4)
        env = {f"D{i}": 10 + i for i in range(4)}
        for sel in range(4):
            env["S"] = sel
            assert m.evaluate(env)["Y"] == 10 + sel

    def test_select_width(self):
        assert Mux("m", 2).select_width == 1
        assert Mux("m", 3).select_width == 2
        assert Mux("m", 4).select_width == 2
        assert Mux("m", 5).select_width == 3

    def test_out_of_range_select_wraps(self):
        m = self.make_mux(3)
        env = {"D0": 1, "D1": 2, "D2": 3, "S": 3}  # 3 % 3 == 0
        assert m.evaluate(env)["Y"] == 1

    def test_single_input_mux_rejected(self):
        with pytest.raises(NetlistError):
            Mux("m", n_inputs=1)

    def test_data_ports(self):
        assert Mux("m", 3).data_ports() == ["D0", "D1", "D2"]


class TestBitSelect:
    def test_extracts_bit(self):
        d = Design("t")
        b = d.add_cell(BitSelect("b", 2))
        d.connect(b, "A", d.add_net("a", 4))
        d.connect(b, "Y", d.add_net("y", 1))
        assert b.evaluate({"A": 0b0100})["Y"] == 1
        assert b.evaluate({"A": 0b1011})["Y"] == 0

    def test_bit_out_of_range_rejected_at_bind(self):
        d = Design("t")
        b = d.add_cell(BitSelect("b", 9))
        with pytest.raises(NetlistError):
            d.connect(b, "A", d.add_net("a", 4))

    def test_negative_bit_rejected(self):
        with pytest.raises(NetlistError):
            BitSelect("b", -1)
