"""Unit tests for toggle and conditional-toggle monitors."""

from repro.boolean.expr import var
from repro.netlist.builder import DesignBuilder
from repro.sim.engine import Simulator, simulate
from repro.sim.monitor import ConditionalToggleMonitor, ToggleMonitor, popcount
from repro.sim.stimulus import SequenceStimulus


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount(0xFF) == 8


class TestToggleMonitor:
    def test_counts_bit_toggles(self, tiny_design):
        vectors = [
            {"A": 0b0000, "C": 0, "S": 0, "G": 0},
            {"A": 0b1111, "C": 0, "S": 0, "G": 0},  # 4 toggles on A
            {"A": 0b1110, "C": 0, "S": 0, "G": 0},  # 1 toggle on A
        ]
        mon = ToggleMonitor()
        simulate(tiny_design, SequenceStimulus(vectors), 3, monitors=[mon])
        assert mon.toggles[tiny_design.net("A")] == 5

    def test_toggle_rate_normalisation(self, tiny_design):
        vectors = [{"A": 0, "C": 0, "S": 0, "G": 0}, {"A": 1, "C": 0, "S": 0, "G": 0}]
        mon = ToggleMonitor()
        simulate(tiny_design, SequenceStimulus(vectors), 2, monitors=[mon])
        assert mon.toggle_rate(tiny_design.net("A")) == 1.0

    def test_no_toggles_on_first_cycle(self, tiny_design):
        mon = ToggleMonitor()
        simulate(
            tiny_design,
            SequenceStimulus([{"A": 0xFF, "C": 0, "S": 0, "G": 0}]),
            1,
            monitors=[mon],
        )
        assert all(t == 0 for t in mon.toggles.values())
        assert mon.toggle_rate(tiny_design.net("A")) == 0.0

    def test_restriction_to_nets(self, tiny_design):
        target = tiny_design.net("A")
        mon = ToggleMonitor(nets=[target])
        simulate(
            tiny_design,
            SequenceStimulus([{"A": 0, "C": 0, "S": 0, "G": 0}, {"A": 3, "C": 1, "S": 0, "G": 0}]),
            2,
            monitors=[mon],
        )
        assert list(mon.toggles) == [target]

    def test_per_bit_rate(self, tiny_design):
        vectors = [{"A": 0x00, "C": 0, "S": 0, "G": 0}, {"A": 0xFF, "C": 0, "S": 0, "G": 0}]
        mon = ToggleMonitor()
        simulate(tiny_design, SequenceStimulus(vectors), 2, monitors=[mon])
        assert mon.per_bit_toggle_rate(tiny_design.net("A")) == 1.0

    def test_register_output_toggles_only_when_loaded(self, tiny_design):
        vectors = [
            {"A": 1, "C": 0, "S": 0, "G": 1},
            {"A": 2, "C": 0, "S": 0, "G": 0},
            {"A": 3, "C": 0, "S": 0, "G": 0},
        ]
        mon = ToggleMonitor()
        simulate(tiny_design, SequenceStimulus(vectors, wrap=True), 30, monitors=[mon])
        q = tiny_design.cell("r0").net("Q")
        a = tiny_design.net("A")
        assert mon.toggle_rate(q) < mon.toggle_rate(a)


class TestConditionalToggleMonitor:
    def test_splits_by_condition(self, tiny_design):
        vectors = [
            {"A": 0b00, "C": 0, "S": 0, "G": 1},
            {"A": 0b11, "C": 0, "S": 0, "G": 1},  # toggle attributed to G=1
            {"A": 0b01, "C": 0, "S": 0, "G": 0},  # toggle attributed to G=0
        ]
        mon = ConditionalToggleMonitor(tiny_design.net("A"), var("G"))
        simulate(tiny_design, SequenceStimulus(vectors), 3, monitors=[mon])
        assert mon.toggles_true == 2
        assert mon.toggles_false == 1
        assert mon.cycles_true == 2
        assert mon.cycles_false == 1

    def test_rates(self, tiny_design):
        vectors = [
            {"A": 0, "C": 0, "S": 0, "G": 1},
            {"A": 0xFF, "C": 0, "S": 0, "G": 1},
            {"A": 0xFF, "C": 0, "S": 0, "G": 0},
        ]
        mon = ConditionalToggleMonitor(tiny_design.net("A"), var("G"))
        simulate(tiny_design, SequenceStimulus(vectors), 3, monitors=[mon])
        assert mon.rate_when_true == 4.0  # 8 toggles over 2 true cycles
        assert mon.rate_when_false == 0.0
