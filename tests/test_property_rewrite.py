"""Property-based safety net for the rewriting pass.

Over seeded random netlists deliberately rich in rewrite targets
(constant-coefficient multipliers, reassociable add/mul chains, muxes
over and under arithmetic):

1. **Safety** — running the rewrite pass, alone or composed with
   isolation, never changes observable behaviour (outputs and committed
   register state), and the transformed design still validates with the
   original interface intact.
2. **Non-vacuity** — enumeration always proposes at least the seeded
   strength reduction, so the safety property is exercised on designs
   where rewriting genuinely has work to do.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IsolationConfig
from repro.netlist.builder import DesignBuilder
from repro.netlist.validate import validate_design
from repro.opt import optimize
from repro.rewrite import find_rewrites
from repro.sim.stimulus import random_stimulus
from repro.verify import check_observable_equivalence

WIDTH = 8


def rewrite_rich_datapath(seed: int):
    """A random design whose shapes hit every rewrite rule family.

    Every operator output is pinned to ``WIDTH`` bits so any two pool
    nets are width-compatible operands; every net is terminated in a
    register or output so the design validates.
    """
    rng = random.Random(seed)
    bld = DesignBuilder(f"rwprop_{seed}")
    a, b, c = (bld.input(n, WIDTH) for n in ("A", "B", "C"))
    pool = [a, b, c]
    sel = bld.input("S", 1)
    en = bld.input("EN", 1)

    def pick():
        return rng.choice(pool)

    def add(x, y):
        return bld.add(x, y, width=WIDTH)

    def mul(x, y):
        return bld.mul(x, y, width=WIDTH)

    # Guaranteed shapes: a sparse constant multiplier (strength-reduction
    # target), a chain reading every data input (reassociation target),
    # and a shared-operand mux (hoist target, and the only guaranteed
    # reader of S).
    pool.append(mul(pick(), bld.const(3, WIDTH)))
    pool.append(add(a, add(b, c)))
    shared = pick()
    pool.append(bld.mux(sel, add(shared, pick()), add(shared, pick())))

    for _ in range(rng.randint(3, 6)):
        shape = rng.randrange(4)
        if shape == 0:  # constant multiplier, random coefficient
            pool.append(mul(pick(), bld.const(rng.randrange(1, 1 << WIDTH), WIDTH)))
        elif shape == 1:  # reassociable chain of adds or muls
            op = add if rng.random() < 0.7 else mul
            t = pick()
            for _ in range(rng.randint(2, 3)):
                t = op(t, pick())
            pool.append(t)
        elif shape == 2:  # mux over two same-kind ops sharing an operand
            s = pick()
            pool.append(bld.mux(sel, add(s, pick()), add(s, pick())))
        else:  # operator fed by a mux
            pool.append(mul(bld.mux(sel, pick(), pick()), pick()))

    # Terminate every generated net: registers (isolation targets) for
    # some, direct outputs for the rest.
    for i, net in enumerate(pool[3:]):
        if i % 2 == 0:
            bld.output(bld.register(net, enable=en, name=f"r{i}"), f"Q{i}")
        else:
            bld.output(net, f"Y{i}")
    return bld.build()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_enumeration_is_not_vacuous(seed):
    design = rewrite_rich_datapath(seed)
    plans = find_rewrites(design)
    assert any(p.rule == "strength_reduction" for p in plans)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_accepted_rewrites_preserve_observable_behaviour(seed):
    design = rewrite_rich_datapath(seed)

    def stimulus():
        return random_stimulus(design, seed=seed + 1)

    result = optimize(
        design,
        stimulus,
        passes=("rewrite",),
        config=IsolationConfig(cycles=150, engine="compiled"),
    )
    validate_design(result.design)
    report = check_observable_equivalence(design, result.design, stimulus(), 400)
    assert report.equivalent, report.mismatches[:3]
    # Interface is untouched regardless of what was rewritten.
    for kind in ("primary_inputs", "primary_outputs", "registers"):
        assert {c.name for c in getattr(result.design, kind)} == {
            c.name for c in getattr(design, kind)
        }


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500), p=st.sampled_from([0.2, 0.5, 0.8]))
def test_rewrite_isolate_composition_preserves_behaviour(seed, p):
    design = rewrite_rich_datapath(seed)

    def stimulus():
        return random_stimulus(design, seed=seed + 1, control_probability=p)

    result = optimize(
        design,
        stimulus,
        passes=("rewrite", "isolation"),
        config=IsolationConfig(cycles=150, engine="compiled"),
    )
    validate_design(result.design)
    report = check_observable_equivalence(design, result.design, stimulus(), 400)
    assert report.equivalent, report.mismatches[:3]
