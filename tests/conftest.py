"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.designs import (
    alu_control_dominated,
    design1,
    design2,
    fir_datapath,
    paper_example,
    shared_bus_datapath,
)
from repro.netlist.builder import DesignBuilder
from repro.power.library import default_library
from repro.sim.stimulus import ControlStream, random_stimulus


@pytest.fixture
def fig1():
    """The paper's Figure 1 circuit."""
    return paper_example(width=8)


@pytest.fixture
def d1():
    return design1(width=12)


@pytest.fixture
def d2():
    return design2(width=16)


@pytest.fixture
def fir():
    return fir_datapath(width=12)


@pytest.fixture
def alu():
    return alu_control_dominated(width=16)


@pytest.fixture
def bus():
    return shared_bus_datapath(width=16)


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def tiny_design():
    """A minimal adder-mux-register design used across unit tests."""
    b = DesignBuilder("tiny")
    a = b.input("A", 8)
    c = b.input("C", 8)
    s = b.input("S", 1)
    g = b.input("G", 1)
    total = b.add(a, c, name="a0")
    picked = b.mux(s, total, c, name="m0")
    q = b.register(picked, enable=g, name="r0")
    b.output(q, "OUT")
    return b.build()


def make_stimulus(design, seed=0, p=0.5, rate=None, overrides=None):
    """Shortcut used across test modules."""
    return random_stimulus(
        design,
        seed=seed,
        control_probability=p,
        control_toggle_rate=rate,
        overrides=overrides,
    )
