"""Tests for windowed power profiling."""

import pytest

from repro.power.estimator import estimate_power
from repro.power.profile import PowerProfileMonitor
from repro.sim.engine import simulate
from repro.sim.stimulus import ControlStream, SequenceStimulus, random_stimulus


class TestPowerProfile:
    def test_window_count(self, tiny_design):
        monitor = PowerProfileMonitor(window=10)
        stim = random_stimulus(tiny_design, seed=0)
        simulate(tiny_design, stim, 100, monitors=[monitor])
        assert len(monitor.windows_mw) == 10

    def test_partial_final_window_flushed(self, tiny_design):
        monitor = PowerProfileMonitor(window=8)
        stim = random_stimulus(tiny_design, seed=0)
        simulate(tiny_design, stim, 20, monitors=[monitor])
        assert len(monitor.windows_mw) == 3  # 19 transitions: 8 + 8 + 3

    def test_mean_close_to_average_estimator(self, d1):
        """Windowed mean must agree with the standard estimator."""
        monitor = PowerProfileMonitor(window=25)
        stim = random_stimulus(d1, seed=3)
        simulate(d1, stim, 500, monitors=[monitor])
        average = estimate_power(
            d1, random_stimulus(d1, seed=3), 500, warmup=0
        ).total_power_mw
        assert monitor.mean_mw == pytest.approx(average, rel=0.05)

    def test_quiet_input_means_static_only(self, tiny_design):
        monitor = PowerProfileMonitor(window=5)
        stim = SequenceStimulus([{"A": 0, "C": 0, "S": 0, "G": 0}])
        simulate(tiny_design, stim, 20, monitors=[monitor])
        # After the first window, only static energy remains.
        assert monitor.windows_mw[-1] == pytest.approx(
            monitor.library.power_mw(monitor._static)
        )

    def test_profile_tracks_activity_bursts(self, d1):
        """Windows during idle EN stretches burn less in the isolated design."""
        from repro.core import IsolationConfig, isolate_design

        def stim():
            return random_stimulus(
                d1, seed=13, control_probability=0.4,
                overrides={"EN": ControlStream(0.4, 0.02)},
            )

        result = isolate_design(d1, stim, IsolationConfig(cycles=600))
        monitor = PowerProfileMonitor(window=16)
        simulate(result.design, stim(), 800, monitors=[monitor])
        spread = monitor.peak_mw - min(monitor.windows_mw)
        base_monitor = PowerProfileMonitor(window=16)
        simulate(d1, stim(), 800, monitors=[base_monitor])
        base_spread = base_monitor.peak_mw - min(base_monitor.windows_mw)
        assert spread > base_spread  # power now tracks the activation

    def test_sparkline_renders(self, tiny_design):
        monitor = PowerProfileMonitor(window=4)
        stim = random_stimulus(tiny_design, seed=0)
        simulate(tiny_design, stim, 64, monitors=[monitor])
        line = monitor.sparkline(width=10)
        assert len(line) == 10

    def test_empty_profile(self):
        monitor = PowerProfileMonitor(window=4)
        assert monitor.sparkline() == ""
        assert monitor.mean_mw == 0.0
        assert monitor.peak_mw == 0.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            PowerProfileMonitor(window=0)

class TestWarmupWindowing:
    """The seed cycle (first observed, nothing to diff against) must stay
    out of the window accounting — with or without a warmup run-in."""

    def _alternating(self):
        return SequenceStimulus(
            [
                {"A": 0, "C": 0, "S": 0, "G": 1},
                {"A": 3, "C": 0, "S": 0, "G": 1},
            ]
        )

    def test_warmup_does_not_change_window_count(self, tiny_design):
        for warmup in (0, 5, 16):
            monitor = PowerProfileMonitor(window=10)
            simulate(
                tiny_design,
                random_stimulus(tiny_design, seed=0),
                100,
                monitors=[monitor],
                warmup=warmup,
            )
            assert len(monitor.windows_mw) == 10, f"warmup={warmup}"

    def test_first_window_not_deflated_by_seed_cycle(self, tiny_design):
        # A period-2 stimulus toggles the same bits on every transition,
        # so every window (including the first and the final partial one)
        # must price identically. Counting the seed cycle used to drag
        # the first window down towards static-only power.
        monitor = PowerProfileMonitor(window=4)
        simulate(
            tiny_design, self._alternating(), 41, monitors=[monitor], warmup=4
        )
        assert len(monitor.windows_mw) == 10  # 40 transitions, 4 per window
        for index, value in enumerate(monitor.windows_mw):
            assert value == pytest.approx(monitor.windows_mw[0]), index

    def test_partial_flush_position_independent_of_warmup(self, tiny_design):
        # 20 observed cycles = 19 transitions: two full windows of 8 and
        # a partial flush of 3, wherever warmup placed the first cycle.
        for warmup in (0, 4, 7):
            monitor = PowerProfileMonitor(window=8)
            simulate(
                tiny_design,
                self._alternating(),
                20,
                monitors=[monitor],
                warmup=warmup,
            )
            assert len(monitor.windows_mw) == 3, f"warmup={warmup}"
            if warmup:  # steady state: partial window prices like a full one
                assert monitor.windows_mw[-1] == pytest.approx(
                    monitor.windows_mw[0]
                ), f"warmup={warmup}"

    def test_through_estimate_power_entry_point(self, tiny_design):
        from repro.runconfig import RunConfig

        monitor = PowerProfileMonitor(window=10)
        simulate(
            tiny_design,
            random_stimulus(tiny_design, seed=2),
            100,
            monitors=[monitor],
            warmup=16,
        )
        baseline = estimate_power(
            tiny_design,
            random_stimulus(tiny_design, seed=2),
            run=RunConfig(cycles=100, warmup=16),
        ).total_power_mw
        assert monitor.mean_mw == pytest.approx(baseline, rel=0.05)
