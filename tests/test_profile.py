"""Tests for windowed power profiling."""

import pytest

from repro.power.estimator import estimate_power
from repro.power.profile import PowerProfileMonitor
from repro.sim.engine import simulate
from repro.sim.stimulus import ControlStream, SequenceStimulus, random_stimulus


class TestPowerProfile:
    def test_window_count(self, tiny_design):
        monitor = PowerProfileMonitor(window=10)
        stim = random_stimulus(tiny_design, seed=0)
        simulate(tiny_design, stim, 100, monitors=[monitor])
        assert len(monitor.windows_mw) == 10

    def test_partial_final_window_flushed(self, tiny_design):
        monitor = PowerProfileMonitor(window=8)
        stim = random_stimulus(tiny_design, seed=0)
        simulate(tiny_design, stim, 20, monitors=[monitor])
        assert len(monitor.windows_mw) == 3  # 8 + 8 + 4

    def test_mean_close_to_average_estimator(self, d1):
        """Windowed mean must agree with the standard estimator."""
        monitor = PowerProfileMonitor(window=25)
        stim = random_stimulus(d1, seed=3)
        simulate(d1, stim, 500, monitors=[monitor])
        average = estimate_power(
            d1, random_stimulus(d1, seed=3), 500, warmup=0
        ).total_power_mw
        assert monitor.mean_mw == pytest.approx(average, rel=0.05)

    def test_quiet_input_means_static_only(self, tiny_design):
        monitor = PowerProfileMonitor(window=5)
        stim = SequenceStimulus([{"A": 0, "C": 0, "S": 0, "G": 0}])
        simulate(tiny_design, stim, 20, monitors=[monitor])
        # After the first window, only static energy remains.
        assert monitor.windows_mw[-1] == pytest.approx(
            monitor.library.power_mw(monitor._static)
        )

    def test_profile_tracks_activity_bursts(self, d1):
        """Windows during idle EN stretches burn less in the isolated design."""
        from repro.core import IsolationConfig, isolate_design

        def stim():
            return random_stimulus(
                d1, seed=13, control_probability=0.4,
                overrides={"EN": ControlStream(0.4, 0.02)},
            )

        result = isolate_design(d1, stim, IsolationConfig(cycles=600))
        monitor = PowerProfileMonitor(window=16)
        simulate(result.design, stim(), 800, monitors=[monitor])
        spread = monitor.peak_mw - min(monitor.windows_mw)
        base_monitor = PowerProfileMonitor(window=16)
        simulate(d1, stim(), 800, monitors=[base_monitor])
        base_spread = base_monitor.peak_mw - min(base_monitor.windows_mw)
        assert spread > base_spread  # power now tracks the activation

    def test_sparkline_renders(self, tiny_design):
        monitor = PowerProfileMonitor(window=4)
        stim = random_stimulus(tiny_design, seed=0)
        simulate(tiny_design, stim, 64, monitors=[monitor])
        line = monitor.sparkline(width=10)
        assert len(line) == 10

    def test_empty_profile(self):
        monitor = PowerProfileMonitor(window=4)
        assert monitor.sparkline() == ""
        assert monitor.mean_mw == 0.0
        assert monitor.peak_mw == 0.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            PowerProfileMonitor(window=0)
