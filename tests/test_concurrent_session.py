"""Concurrent Session use: threaded results == serial results, bytewise.

The job service runs Sessions on worker threads, so the whole pipeline
(program cache, BDD activation, estimation, the Algorithm-1 loop) must
be safe to drive from several threads at once — and not merely safe:
every thread's result must be byte-identical to the serial run. This
guards the compiled-program cache's locking and the contextvar-based
observability layer (a recorder on one thread must not leak spans or
metrics into another).
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from repro import api, obs
from repro.designs import (
    alu_control_dominated,
    design1,
    design2,
    fir_datapath,
    paper_example,
)
from repro.runconfig import RunConfig

RUN = RunConfig(cycles=150, warmup=8, engine="compiled", workers=1)

MAKERS = [
    paper_example,
    design1,
    design2,
    fir_datapath,
    alu_control_dominated,
]


def estimate_payload(maker) -> str:
    session = api.Session(maker(), run=RUN)
    breakdown = session.estimate()
    cells = sorted(session.design.cells, key=lambda c: c.name)
    return json.dumps(
        {
            "design": session.design.name,
            "total_power_mw": breakdown.total_power_mw,
            "cell_power_mw": {c.name: breakdown.cell_power_mw(c) for c in cells},
        },
        sort_keys=True,
    )


def isolate_payload(maker) -> str:
    session = api.Session(maker(), run=RUN)
    payload = session.isolate(style="and").to_dict()
    payload.pop("timings", None)  # wall clock is the one legitimate diff
    return json.dumps(payload, sort_keys=True)


class TestConcurrentSessions:
    def test_threaded_estimate_is_byte_identical_to_serial(self):
        serial = [estimate_payload(maker) for maker in MAKERS]
        with ThreadPoolExecutor(max_workers=len(MAKERS)) as pool:
            threaded = list(pool.map(estimate_payload, MAKERS))
        assert threaded == serial

    def test_threaded_isolate_is_byte_identical_to_serial(self):
        serial = [isolate_payload(maker) for maker in MAKERS]
        with ThreadPoolExecutor(max_workers=len(MAKERS)) as pool:
            threaded = list(pool.map(isolate_payload, MAKERS))
        assert threaded == serial

    def test_repeated_threaded_runs_agree_with_each_other(self):
        with ThreadPoolExecutor(max_workers=3) as pool:
            first = list(pool.map(estimate_payload, MAKERS))
            second = list(pool.map(estimate_payload, MAKERS))
        assert first == second

    def test_traced_sessions_do_not_cross_pollute(self):
        """Each thread's recorder sees only its own design's spans."""

        def traced(maker):
            recorder = obs.Recorder()
            with obs.use(recorder):
                api.Session(maker(), run=RUN).estimate()
            designs = {
                span.attrs.get("design")
                for root in recorder.tracer.roots
                for span in root.walk()
                if "design" in span.attrs
            }
            return maker().name, designs

        with ThreadPoolExecutor(max_workers=len(MAKERS)) as pool:
            for name, seen in pool.map(traced, MAKERS):
                assert seen == {name}
