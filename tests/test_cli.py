"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.netlist import textio


@pytest.fixture
def rtl_file(tmp_path, tiny_design):
    path = tmp_path / "tiny.rtl"
    textio.save(tiny_design, str(path))
    return str(path)


class TestIsolateCommand:
    def test_builtin_design1(self, capsys):
        code = main(
            [
                "isolate",
                "--builtin", "design1",
                "--cycles", "300",
                "--override", "EN=0.2:0.05",
                "--verify-cycles", "500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Operand isolation of 'design1'" in out
        assert "PASSED" in out

    def test_netlist_file_with_outputs(self, rtl_file, tmp_path, capsys):
        out_rtl = tmp_path / "iso.rtl"
        out_v = tmp_path / "iso.v"
        code = main(
            [
                "isolate", rtl_file,
                "--cycles", "200",
                "--override", "G=0.2:0.1",
                "--out", str(out_rtl),
                "--verilog", str(out_v),
                "--verify-cycles", "300",
            ]
        )
        assert code == 0
        reloaded = textio.load(str(out_rtl))
        assert reloaded.name.startswith("tiny_iso")
        assert "endmodule" in out_v.read_text()

    def test_latch_style_and_weights(self, capsys):
        code = main(
            [
                "isolate", "--builtin", "design2", "--style", "latch",
                "--cycles", "300", "--omega-a", "0.1", "--verify-cycles", "0",
            ]
        )
        assert code == 0

    def test_lookahead_flag(self, capsys):
        code = main(
            [
                "isolate", "--builtin", "pipeline", "--lookahead", "1",
                "--cycles", "300",
                "--override", "SEL_IN=0.3:0.2", "--override", "G_IN=0.3:0.2",
                "--verify-cycles", "500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pmul" in out


class TestOtherCommands:
    def test_report(self, capsys):
        assert main(["report", "--builtin", "fig1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "total power" in out
        assert "critical path" in out
        assert "Area report" in out

    def test_compare_json(self, capsys):
        import json

        assert main(
            ["compare", "--builtin", "fig1", "--cycles", "200", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["label"] == "non-isolated"
        assert len(rows) == 4

    def test_compare(self, capsys):
        assert main(["compare", "--builtin", "fig1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "non-isolated" in out
        assert "LAT-isolated" in out

    def test_activation(self, capsys):
        assert main(["activation", "--builtin", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "AS_a0 = G0" in out
        assert "AS_a1" in out

    def test_activation_lookahead(self, capsys):
        assert main(["activation", "--builtin", "pipeline", "--lookahead", "1"]) == 0
        out = capsys.readouterr().out
        assert "AS_pmul = SEL_IN*G_IN" in out


class TestErrors:
    def test_unknown_builtin(self, capsys):
        assert main(["report", "--builtin", "warpcore"]) == 2
        assert "unknown builtin" in capsys.readouterr().err

    def test_no_design_given(self, capsys):
        assert main(["report"]) == 2
        assert "provide a netlist" in capsys.readouterr().err

    def test_bad_override(self, capsys):
        assert (
            main(["report", "--builtin", "fig1", "--override", "G0=banana"]) == 2
        )
        assert "bad --override" in capsys.readouterr().err

    def test_infeasible_override_statistics(self, capsys):
        assert (
            main(["report", "--builtin", "fig1", "--override", "G0=0.1:0.9"]) == 2
        )

class TestJsonOutput:
    """With --json, stdout carries exactly one parseable JSON document;
    notices and diagnostics go to stderr."""

    def test_isolate_json(self, capsys):
        code = main(
            [
                "isolate", "--builtin", "design1", "--cycles", "150",
                "--verify-cycles", "100", "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["design"] == "design1"
        assert payload["equivalence"]["equivalent"] is True
        assert "equivalence check" in captured.err
        assert "equivalence check" not in captured.out

    def test_isolate_json_written_notices_on_stderr(self, tmp_path, capsys):
        out_rtl = tmp_path / "iso.rtl"
        code = main(
            [
                "isolate", "--builtin", "design1", "--cycles", "150",
                "--verify-cycles", "0", "--json", "--out", str(out_rtl),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        json.loads(captured.out)  # stdout is pure JSON
        assert "isolated netlist written" in captured.err
        assert out_rtl.exists()

    def test_report_json(self, capsys):
        code = main(["report", "--builtin", "fig1", "--cycles", "150", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "paper_fig1"
        assert payload["total_power_mw"] > 0
        assert payload["critical_path_ns"] > 0
        assert payload["area_um2"] > 0
        assert payload["cell_power_mw"]

    def test_rank_json(self, capsys):
        code = main(["rank", "--builtin", "design1", "--cycles", "150", "--json"])
        assert code == 0
        ranked = json.loads(capsys.readouterr().out)
        assert ranked and {"name", "h", "worth_isolating"} <= set(ranked[0])

    def test_activation_json(self, capsys):
        code = main(["activation", "--builtin", "fig1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["activation"]["a0"] == "G0"

    def test_validate_json(self, capsys):
        code = main(["validate", "--builtin", "design1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_profile_json(self, capsys):
        code = main(
            ["profile", "--builtin", "design1", "--cycles", "150", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        span_names = {row["name"] for row in payload["spans"]}
        assert {"isolate", "power.estimate", "score.candidate"} <= span_names
        assert payload["metrics"]

    def test_error_leaves_stdout_empty(self, capsys):
        code = main(["report", "--builtin", "warpcore", "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        assert "unknown builtin" in captured.err


class TestObservabilityFlags:
    def test_trace_flag_writes_perfetto_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(
            [
                "report", "--builtin", "design1", "--cycles", "150",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        document = json.loads(trace.read_text())
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert {"power.estimate", "sim.run"} <= names
        assert "trace written to" in capsys.readouterr().out

    def test_trace_with_json_keeps_stdout_clean(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(
            [
                "rank", "--builtin", "design1", "--cycles", "150",
                "--json", "--trace", str(trace),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        json.loads(captured.out)
        assert "trace written to" in captured.err

    def test_metrics_prometheus_file(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "report", "--builtin", "design1", "--cycles", "150",
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE" in text
        assert "module_power_mw" in text

    def test_metrics_json_file(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "report", "--builtin", "design1", "--cycles", "150",
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert any(key.startswith("module.power_mw") for key in payload)

    def test_unwritable_trace_path_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "report", "--builtin", "design1", "--cycles", "150",
                "--trace", str(tmp_path / "no" / "such" / "dir" / "t.json"),
            ]
        )
        assert code == 2
        assert "cannot write observability output" in capsys.readouterr().err

    def test_profile_trace_covers_the_pipeline(self, tmp_path, capsys):
        rtl = os.path.join(
            os.path.dirname(__file__), "..", "examples", "design1.rtl"
        )
        trace = tmp_path / "profile.json"
        code = main(
            [
                "profile", rtl, "--cycles", "150", "--workers", "2",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {
            "netlist.parse", "activation", "score.candidate",
            "bank.insert", "pool.task",
        } <= names
        tracks = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "main" in tracks
        assert any(track.startswith("task-") for track in tracks)
        assert "repro_metrics" in document["otherData"]
