"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.netlist import textio


@pytest.fixture
def rtl_file(tmp_path, tiny_design):
    path = tmp_path / "tiny.rtl"
    textio.save(tiny_design, str(path))
    return str(path)


class TestIsolateCommand:
    def test_builtin_design1(self, capsys):
        code = main(
            [
                "isolate",
                "--builtin", "design1",
                "--cycles", "300",
                "--override", "EN=0.2:0.05",
                "--verify-cycles", "500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Operand isolation of 'design1'" in out
        assert "PASSED" in out

    def test_netlist_file_with_outputs(self, rtl_file, tmp_path, capsys):
        out_rtl = tmp_path / "iso.rtl"
        out_v = tmp_path / "iso.v"
        code = main(
            [
                "isolate", rtl_file,
                "--cycles", "200",
                "--override", "G=0.2:0.1",
                "--out", str(out_rtl),
                "--verilog", str(out_v),
                "--verify-cycles", "300",
            ]
        )
        assert code == 0
        reloaded = textio.load(str(out_rtl))
        assert reloaded.name.startswith("tiny_iso")
        assert "endmodule" in out_v.read_text()

    def test_latch_style_and_weights(self, capsys):
        code = main(
            [
                "isolate", "--builtin", "design2", "--style", "latch",
                "--cycles", "300", "--omega-a", "0.1", "--verify-cycles", "0",
            ]
        )
        assert code == 0

    def test_lookahead_flag(self, capsys):
        code = main(
            [
                "isolate", "--builtin", "pipeline", "--lookahead", "1",
                "--cycles", "300",
                "--override", "SEL_IN=0.3:0.2", "--override", "G_IN=0.3:0.2",
                "--verify-cycles", "500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pmul" in out


class TestOtherCommands:
    def test_report(self, capsys):
        assert main(["report", "--builtin", "fig1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "total power" in out
        assert "critical path" in out
        assert "Area report" in out

    def test_compare_json(self, capsys):
        import json

        assert main(
            ["compare", "--builtin", "fig1", "--cycles", "200", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["label"] == "non-isolated"
        assert len(rows) == 4

    def test_compare(self, capsys):
        assert main(["compare", "--builtin", "fig1", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "non-isolated" in out
        assert "LAT-isolated" in out

    def test_activation(self, capsys):
        assert main(["activation", "--builtin", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "AS_a0 = G0" in out
        assert "AS_a1" in out

    def test_activation_lookahead(self, capsys):
        assert main(["activation", "--builtin", "pipeline", "--lookahead", "1"]) == 0
        out = capsys.readouterr().out
        assert "AS_pmul = SEL_IN*G_IN" in out


class TestErrors:
    def test_unknown_builtin(self, capsys):
        assert main(["report", "--builtin", "warpcore"]) == 2
        assert "unknown builtin" in capsys.readouterr().err

    def test_no_design_given(self, capsys):
        assert main(["report"]) == 2
        assert "provide a netlist" in capsys.readouterr().err

    def test_bad_override(self, capsys):
        assert (
            main(["report", "--builtin", "fig1", "--override", "G0=banana"]) == 2
        )
        assert "bad --override" in capsys.readouterr().err

    def test_infeasible_override_statistics(self, capsys):
        assert (
            main(["report", "--builtin", "fig1", "--override", "G0=0.1:0.9"]) == 2
        )
