"""Unit and property tests for Boolean expression trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    and_,
    not_,
    or_,
    var,
)

VARS = ["a", "b", "c", "d"]


@st.composite
def exprs(draw, depth=3):
    """Random expression trees over a small variable set."""
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return TRUE if draw(st.booleans()) else FALSE
        return var(draw(st.sampled_from(VARS)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return var(draw(st.sampled_from(VARS)))
    if kind == 1:
        return not_(draw(exprs(depth=depth - 1)))
    args = draw(st.lists(exprs(depth=depth - 1), min_size=1, max_size=3))
    return and_(*args) if kind == 2 else or_(*args)


def envs():
    return st.fixed_dictionaries({name: st.booleans() for name in VARS})


class TestConstructors:
    def test_constant_folding(self):
        assert and_(TRUE, TRUE) == TRUE
        assert and_(TRUE, FALSE) == FALSE
        assert or_(FALSE, FALSE) == FALSE
        assert or_(TRUE, FALSE) == TRUE

    def test_identity_elements(self):
        x = var("x")
        assert and_(x, TRUE) == x
        assert or_(x, FALSE) == x
        assert and_() == TRUE
        assert or_() == FALSE

    def test_idempotence(self):
        x = var("x")
        assert and_(x, x) == x
        assert or_(x, x) == x

    def test_complement_annihilates(self):
        x = var("x")
        assert and_(x, not_(x)) == FALSE
        assert or_(x, not_(x)) == TRUE

    def test_double_negation(self):
        x = var("x")
        assert not_(not_(x)) == x

    def test_flattening(self):
        a, b, c = var("a"), var("b"), var("c")
        nested = and_(a, and_(b, c))
        assert isinstance(nested, And)
        assert len(nested.args) == 3

    def test_structural_equality_and_hash(self):
        e1 = and_(var("a"), var("b"))
        e2 = and_(var("a"), var("b"))
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_operator_sugar(self):
        a, b = var("a"), var("b")
        assert (a & b) == and_(a, b)
        assert (a | b) == or_(a, b)
        assert (~a) == not_(a)


class TestQueries:
    def test_support(self):
        e = or_(and_(var("a"), var("b")), not_(var("c")))
        assert e.support() == frozenset({"a", "b", "c"})

    def test_literal_count(self):
        e = or_(and_(var("S2"), var("G1")), and_(not_(var("S0")), var("S1"), var("G0")))
        assert e.literal_count() == 5

    def test_evaluate(self):
        e = or_(and_(var("a"), var("b")), var("c"))
        assert e.evaluate({"a": 1, "b": 1, "c": 0})
        assert not e.evaluate({"a": 1, "b": 0, "c": 0})
        assert e.evaluate({"a": 0, "b": 0, "c": 1})

    def test_evaluate_missing_var_raises(self):
        with pytest.raises(KeyError):
            var("ghost").evaluate({})

    def test_is_true_false(self):
        assert TRUE.is_true and not TRUE.is_false
        assert FALSE.is_false and not FALSE.is_true
        assert not var("x").is_true


class TestTransforms:
    def test_substitute(self):
        e = and_(var("a"), var("b"))
        result = e.substitute({"a": TRUE})
        assert result == var("b")

    def test_substitution_is_simultaneous(self):
        e = and_(var("a"), var("b"))
        swapped = e.substitute({"a": var("b"), "b": var("a")})
        assert swapped == and_(var("b"), var("a")) or swapped == and_(var("a"), var("b"))
        assert swapped.support() == frozenset({"a", "b"})

    def test_cofactor(self):
        e = or_(and_(var("a"), var("b")), var("c"))
        assert e.cofactor("c", True) == TRUE
        assert e.cofactor("c", False) == and_(var("a"), var("b"))


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(e=exprs(), env=envs())
    def test_not_inverts(self, e, env):
        assert not_(e).evaluate(env) == (not e.evaluate(env))

    @settings(max_examples=200, deadline=None)
    @given(e1=exprs(), e2=exprs(), env=envs())
    def test_and_or_semantics(self, e1, e2, env):
        assert and_(e1, e2).evaluate(env) == (e1.evaluate(env) and e2.evaluate(env))
        assert or_(e1, e2).evaluate(env) == (e1.evaluate(env) or e2.evaluate(env))

    @settings(max_examples=200, deadline=None)
    @given(e=exprs(), env=envs())
    def test_double_negation_preserves_semantics(self, e, env):
        assert not_(not_(e)).evaluate(env) == e.evaluate(env)

    @settings(max_examples=100, deadline=None)
    @given(e=exprs())
    def test_support_covers_evaluation_needs(self, e):
        env = {name: False for name in e.support()}
        e.evaluate(env)  # must not raise
