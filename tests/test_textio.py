"""Unit and property tests for the textual netlist format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import random_datapath
from repro.errors import NetlistError
from repro.netlist import textio


class TestRoundTrip:
    def test_all_benchmark_designs_round_trip(self, fig1, d1, d2, fir, alu, bus):
        for design in (fig1, d1, d2, fir, alu, bus):
            text = textio.dumps(design)
            reloaded = textio.loads(text)
            assert textio.dumps(reloaded) == text
            assert reloaded.stats() == design.stats()

    def test_save_load_file(self, tiny_design, tmp_path):
        path = tmp_path / "tiny.rtl"
        textio.save(tiny_design, str(path))
        reloaded = textio.load(str(path))
        assert reloaded.name == "tiny"
        assert reloaded.stats() == tiny_design.stats()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_designs_round_trip(self, seed):
        design = random_datapath(seed=seed, layers=2, modules_per_layer=2)
        text = textio.dumps(design)
        assert textio.dumps(textio.loads(text)) == text


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = (
            "# a comment\n"
            "design t\n"
            "\n"
            "net A 8  # trailing comment\n"
            "net Y 8\n"
            "cell pi A Y=A\n"
            "cell po OUT A=Y\n"
            "cell buf b0 A=A Y=Y\n"
        )
        design = textio.loads(text)
        assert design.net("A").width == 8

    def test_parameterised_kinds(self):
        text = (
            "design t\n"
            "net s 2\nnet a 4\nnet b 4\nnet c 4\nnet d 4\nnet y 4\nnet q 4\nnet en 1\n"
            "cell pi S Y=s\ncell pi A Y=a\ncell pi B Y=b\ncell pi C Y=c\n"
            "cell pi D Y=d\ncell pi EN Y=en\n"
            "cell mux:4 m S=s D0=a D1=b D2=c D3=d Y=y\n"
            "cell reg:en,rv=3 r D=y EN=en Q=q\n"
            "cell po OUT A=q\n"
        )
        design = textio.loads(text)
        assert design.cell("m").n_inputs == 4
        reg = design.cell("r")
        assert reg.has_enable and reg.reset_value == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(NetlistError):
            textio.loads("design t\ncell warp w A=x\n")

    def test_missing_design_line_rejected(self):
        with pytest.raises(NetlistError):
            textio.loads("net A 8\n")

    def test_malformed_line_reports_line_number(self):
        with pytest.raises(NetlistError) as exc:
            textio.loads("design t\nnet A\n")
        assert "line 2" in str(exc.value)

    def test_const_requires_value(self):
        with pytest.raises(NetlistError):
            textio.loads("design t\nnet y 4\ncell const k Y=y\n")
