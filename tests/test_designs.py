"""Tests for the benchmark design generators."""

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import and_, not_, var
from repro.core import derive_activation_functions
from repro.designs import random_datapath
from repro.netlist.validate import validate_design
from repro.sim.engine import Simulator
from repro.sim.stimulus import SequenceStimulus, random_stimulus


class TestPaperExample:
    def test_structure(self, fig1):
        stats = fig1.stats()
        assert stats["modules"] == 2
        assert stats["registers"] == 2

    def test_width_parameter(self):
        from repro.designs import paper_example

        wide = paper_example(width=16)
        assert wide.net("A").width == 16


class TestDesign1:
    def test_en_is_the_stage1_activation(self, d1):
        analysis = derive_activation_functions(d1)
        manager = BddManager()
        for name in ("mul0", "mul1"):
            assert manager.equivalent(analysis.of_module(d1.cell(name)), var("EN"))

    def test_stage2_activations(self, d1):
        analysis = derive_activation_functions(d1)
        manager = BddManager()
        assert manager.equivalent(
            analysis.of_module(d1.cell("add0")), and_(not_(var("S0")), var("GA"))
        )
        assert manager.equivalent(
            analysis.of_module(d1.cell("sub0")), and_(var("S0"), var("GA"))
        )

    def test_utility_path_always_active(self, d1):
        """The XOR tag path has no enables: it is a power floor."""
        sim = Simulator(d1)
        vec = {pi.name: 0 for pi in d1.primary_inputs}
        vec.update({"X0": 3, "X2": 5})
        settled = sim.step(vec)
        assert settled[d1.net("tag_xor")] == 6


class TestDesign2:
    def test_phase_counter_cycles(self, d2):
        sim = Simulator(d2)
        phases = []
        for cycle in range(8):
            settled = sim.step({"X": 0, "Y": 0, "Z": 0, "SH": 0})
            phases.append(settled[d2.net("cnt_q")])
            sim.commit()
        assert phases == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_each_module_active_one_phase(self, d2):
        analysis = derive_activation_functions(d2)
        manager = BddManager()
        for module, phase in (("mul0", "ph0"), ("add0", "ph1"),
                              ("shl0", "ph2"), ("sub0", "ph3")):
            assert manager.equivalent(
                analysis.of_module(d2.cell(module)), var(phase)
            )

    def test_counter_increment_always_active(self, d2):
        analysis = derive_activation_functions(d2)
        assert analysis.of_module(d2.cell("cnt_inc")).is_true

    def test_pipeline_computes(self, d2):
        """After a full rotation the output reflects ((X*Y+Z)<<SH)-X."""
        sim = Simulator(d2)
        vec = {"X": 3, "Y": 4, "Z": 5, "SH": 1}
        for _ in range(9):
            sim.step(vec)
            sim.commit()
        width = d2.net("X").width
        expected = (((3 * 4 + 5) << 1) - 3) & ((1 << width) - 1)
        assert sim.state[d2.cell("r_out")] == expected


class TestFir:
    def test_bypass_activation(self, fir):
        analysis = derive_activation_functions(fir)
        manager = BddManager()
        for name in ("fmul0", "fmul3", "fadd2"):
            assert manager.equivalent(
                analysis.of_module(fir.cell(name)), not_(var("BYP"))
            )

    def test_filter_math(self, fir):
        sim = Simulator(fir)
        # Stream a unit impulse with BYP=0; output replays coefficients.
        outputs = []
        for cycle in range(6):
            sim.step({"X": 1 if cycle == 0 else 0, "BYP": 0})
            sim.commit()
            outputs.append(sim.state[fir.cell("r_y")])
        assert outputs[:5] == [3, 7, 7, 3, 0]

    def test_bypass_streams_input(self, fir):
        sim = Simulator(fir)
        sim.step({"X": 42, "BYP": 1})
        sim.commit()
        assert sim.state[fir.cell("r_y")] == 42

    def test_coefficient_validation(self):
        from repro.designs import fir_datapath

        with pytest.raises(ValueError):
            fir_datapath(coefficients=(1, 2, 3))


class TestAluCtrl:
    def test_fsm_holds_in_idle_without_go(self, alu):
        sim = Simulator(alu)
        for _ in range(5):
            sim.step({"A": 1, "B": 2, "OP": 0, "GO": 0})
            sim.commit()
        assert sim.state[alu.cell("state")] == 0

    def test_fsm_runs_cycle_on_go(self, alu):
        sim = Simulator(alu)
        states = []
        sim.step({"A": 1, "B": 2, "OP": 0, "GO": 1})
        sim.commit()
        for _ in range(4):
            states.append(sim.state[alu.cell("state")])
            sim.step({"A": 1, "B": 2, "OP": 0, "GO": 0})
            sim.commit()
        assert states[0] == 1  # LOAD after GO
        assert 0 in states[1:]  # returns to IDLE

    def test_alu_computes_selected_op(self, alu):
        sim = Simulator(alu)
        vec = {"A": 7, "B": 5, "OP": 1, "GO": 1}  # OP=1 -> subtract
        for _ in range(5):
            sim.step(vec)
            sim.commit()
            vec["GO"] = 1
        assert sim.state[alu.cell("r_out")] == 2

    def test_mul_active_fraction_is_small(self, alu):
        from repro.sim.probes import ProbeSet

        analysis = derive_activation_functions(alu)
        probes = ProbeSet({"mul": analysis.of_module(alu.cell("alu_mul"))})
        stim = random_stimulus(alu, seed=3, overrides=None)
        Simulator(alu).run(stim, 2000, monitors=[probes])
        assert probes.probability("mul") < 0.2


class TestSharedBus:
    def test_source_registers_multi_fanout(self, bus):
        ra = bus.cell("rA")
        assert len(ra.net("Q").readers) >= 2

    def test_consumer_activations(self, bus):
        analysis = derive_activation_functions(bus)
        manager = BddManager()
        assert manager.equivalent(
            analysis.of_module(bus.cell("bmul")), var("G0")
        )


class TestRandomDatapath:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_and_deterministic(self, seed):
        a = random_datapath(seed=seed)
        b = random_datapath(seed=seed)
        validate_design(a)
        assert a.stats() == b.stats()

    def test_different_seeds_differ(self):
        assert random_datapath(seed=0).stats() != random_datapath(seed=1).stats()

    def test_simulatable(self):
        design = random_datapath(seed=3)
        stim = random_stimulus(design, seed=0)
        sim = Simulator(design)
        for cycle in range(50):
            sim.step(stim.values(cycle))
            sim.commit()
