"""Unit and property tests for the ROBDD package."""

import itertools

from hypothesis import given, settings

from repro.boolean.bdd import BddManager
from repro.boolean.expr import FALSE, TRUE, and_, not_, or_, var
from tests.test_expr import VARS, envs, exprs


class TestBasics:
    def test_terminals(self):
        m = BddManager()
        assert m.from_expr(TRUE) == m.TRUE
        assert m.from_expr(FALSE) == m.FALSE

    def test_variable_node(self):
        m = BddManager()
        node = m.declare("x")
        assert node not in (m.TRUE, m.FALSE)
        assert m.declare("x") == node  # same var, same node

    def test_canonicity(self):
        m = BddManager()
        a, b = var("a"), var("b")
        left = m.from_expr(or_(and_(a, b), and_(a, not_(b))))
        right = m.from_expr(a)
        assert left == right

    def test_demorgan(self):
        m = BddManager()
        a, b = var("a"), var("b")
        assert m.equivalent(not_(and_(a, b)), or_(not_(a), not_(b)))

    def test_tautology_contradiction(self):
        m = BddManager()
        a = var("a")
        assert m.is_tautology(or_(a, not_(a)))
        assert m.is_contradiction(and_(a, not_(a)))
        assert not m.is_tautology(a)

    def test_implication(self):
        m = BddManager()
        a, b = var("a"), var("b")
        assert m.implies(and_(a, b), a)
        assert not m.implies(a, and_(a, b))

    def test_xor_apply(self):
        m = BddManager()
        na, nb = m.declare("a"), m.declare("b")
        x = m.apply_xor(na, nb)
        # a xor a == 0
        assert m.apply_xor(na, na) == m.FALSE
        assert x != m.FALSE

    def test_node_count(self):
        m = BddManager()
        e = and_(var("a"), var("b"), var("c"))
        node = m.from_expr(e)
        assert m.count_nodes(node) == 3


class TestProbability:
    def test_single_variable(self):
        m = BddManager()
        assert m.expr_probability(var("a"), {"a": 0.3}) == 0.3

    def test_independent_product(self):
        m = BddManager()
        e = and_(var("a"), var("b"))
        assert abs(m.expr_probability(e, {"a": 0.5, "b": 0.4}) - 0.2) < 1e-12

    def test_reconvergence_handled_exactly(self):
        # a * a has probability p, not p^2.
        m = BddManager()
        e = and_(var("a"), or_(var("a"), var("b")))
        assert abs(m.expr_probability(e, {"a": 0.3, "b": 0.9}) - 0.3) < 1e-12

    def test_default_half(self):
        m = BddManager()
        assert m.expr_probability(var("a"), {}) == 0.5

    def test_paper_example_probability(self):
        m = BddManager()
        e = or_(
            and_(var("S2"), var("G1")),
            and_(not_(var("S0")), var("S1"), var("G0")),
        )
        probs = {"S2": 0.5, "G1": 0.1, "S0": 0.5, "S1": 0.5, "G0": 0.1}
        # 0.05 + 0.025 - 0.05*0.025 (inclusion-exclusion; independent terms)
        assert abs(m.expr_probability(e, probs) - 0.07375) < 1e-9


class TestAgainstTruthTables:
    @settings(max_examples=150, deadline=None)
    @given(e=exprs())
    def test_bdd_matches_evaluation(self, e):
        m = BddManager()
        node = m.from_expr(e)
        for bits in itertools.product([False, True], repeat=len(VARS)):
            env = dict(zip(VARS, bits))
            expected = e.evaluate(env)
            # Evaluate the BDD by probability with 0/1 inputs.
            probs = {k: 1.0 if v else 0.0 for k, v in env.items()}
            assert m.probability(node, probs) == (1.0 if expected else 0.0)

    @settings(max_examples=150, deadline=None)
    @given(e1=exprs(), e2=exprs())
    def test_equivalence_matches_truth_tables(self, e1, e2):
        m = BddManager()
        tables_equal = all(
            e1.evaluate(dict(zip(VARS, bits))) == e2.evaluate(dict(zip(VARS, bits)))
            for bits in itertools.product([False, True], repeat=len(VARS))
        )
        assert m.equivalent(e1, e2) == tables_equal
