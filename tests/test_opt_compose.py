"""Composing passes beats either alone, without changing behaviour.

The headline claim of the ``repro.opt`` redesign: operand isolation and
register clock gating target disjoint power components (redundant
datapath computation vs standing clock energy), so selecting across
both families under one budget strictly improves on each family alone.
Pinned here on the two designs where both families fire — ``soc`` and
the lookahead ``pipeline`` — together with the safety nets: observable
equivalence and a fault campaign over the transformed netlists.
"""

from __future__ import annotations

import os

import pytest

from repro.core import IsolationConfig
from repro.designs import lookahead_pipeline, soc_datapath
from repro.opt import optimize
from repro.sim import ControlStream, random_stimulus
from repro.verify import check_observable_equivalence
from repro.verify.faults import run_campaign

ISO = ("isolation",)
CG = ("clock_gating",)
BOTH = ("isolation", "clock_gating")


def soc_recipe():
    design = soc_datapath()
    config = IsolationConfig(cycles=600, engine="compiled")

    def stimulus():
        return random_stimulus(
            design,
            seed=3,
            control_probability=0.3,
            overrides={"SYS_EN": ControlStream(0.25, 0.1)},
        )

    return design, stimulus, config


def pipeline_recipe():
    # Depth 0 finds no isolation candidates here; the pipeline's idle
    # windows only become visible to Algorithm 1 with one cycle of
    # control lookahead (see tests/test_lookahead.py).
    design = lookahead_pipeline()
    config = IsolationConfig(cycles=600, engine="compiled", lookahead_depth=1)

    def stimulus():
        return random_stimulus(
            design,
            seed=3,
            control_probability=0.25,
            overrides={
                "SEL_IN": ControlStream(0.3, 0.2),
                "G_IN": ControlStream(0.3, 0.2),
            },
        )

    return design, stimulus, config


RECIPES = {"soc": soc_recipe, "pipeline": pipeline_recipe}


def reductions(recipe):
    design, stimulus, config = recipe()
    results = {
        passes: optimize(design, stimulus, passes=passes, config=config)
        for passes in (ISO, CG, BOTH)
    }
    return results


@pytest.mark.parametrize("name", list(RECIPES))
def test_combined_beats_either_alone(name):
    results = reductions(RECIPES[name])
    iso = results[ISO].power_reduction
    cg = results[CG].power_reduction
    both = results[BOTH].power_reduction
    # Each family must contribute on its own...
    assert iso > 0
    assert cg > 0
    # ...and the joint run must strictly beat both.
    assert both > iso
    assert both > cg
    # The joint run applied transforms from both families.
    assert results[BOTH].isolated_names
    assert results[BOTH].gated_registers


@pytest.mark.parametrize("name", list(RECIPES))
def test_combined_design_is_observably_equivalent(name):
    design, stimulus, config = RECIPES[name]()
    result = optimize(design, stimulus, passes=BOTH, config=config)
    # Lookahead retimes activation, so register contents may legally
    # differ; outputs must not (same rule the CLI --verify-cycles uses).
    report = check_observable_equivalence(
        design,
        result.design,
        stimulus(),
        1000,
        compare_registers=config.lookahead_depth == 0,
    )
    assert report.equivalent, report.mismatches


def test_gated_netlist_fault_campaign_quick():
    """No silent faults on the fully transformed soc netlist."""
    design, stimulus, config = soc_recipe()
    result = optimize(design, stimulus, passes=BOTH, config=config)
    report = run_campaign(result.design, per_kind=1, cycles=150)
    assert report.silent == []
    assert report.detection_rate == 1.0


@pytest.mark.campaign
@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_CAMPAIGN"),
    reason="full campaign is CI-only; set REPRO_FULL_CAMPAIGN=1",
)
@pytest.mark.parametrize("name", list(RECIPES))
def test_transformed_netlist_fault_campaign_full(name):
    design, stimulus, config = RECIPES[name]()
    result = optimize(design, stimulus, passes=BOTH, config=config)
    report = run_campaign(result.design, per_kind=4, cycles=400)
    assert report.silent == []
    assert report.detection_rate == 1.0
