"""Unit tests for static timing analysis."""

import math

import pytest

from repro.netlist.builder import DesignBuilder
from repro.timing.sta import analyze_timing


def chain_design(n_adders=3, width=8):
    """A chain of adders between two registers."""
    b = DesignBuilder("chain")
    x = b.input("X", width)
    y = b.input("Y", width)
    current = x
    for i in range(n_adders):
        current = b.add(current, y, name=f"a{i}")
    b.output(b.register(current, name="r_out"), "OUT")
    return b.build()


class TestArrivalTimes:
    def test_arrival_accumulates_along_chain(self, library):
        d = chain_design(3)
        report = analyze_timing(d, library)
        a0 = d.cell("a0").net("Y")
        a2 = d.cell("a2").net("Y")
        assert report.arrival[a2] > report.arrival[a0] > 0

    def test_boundary_nets_arrive_at_zero(self, library):
        d = chain_design(1)
        report = analyze_timing(d, library)
        assert report.arrival[d.net("X")] == 0.0

    def test_default_period_gives_zero_worst_slack(self, library):
        d = chain_design(3)
        report = analyze_timing(d, library)
        assert report.worst_slack == pytest.approx(0.0, abs=1e-9)

    def test_longer_chain_longer_period(self, library):
        short = analyze_timing(chain_design(1), library)
        long = analyze_timing(chain_design(5), library)
        assert long.clock_period > short.clock_period


class TestSlack:
    def test_explicit_period_slack(self, library):
        d = chain_design(2)
        natural = analyze_timing(d, library).clock_period
        relaxed = analyze_timing(d, library, clock_period=natural + 1.0)
        assert relaxed.worst_slack == pytest.approx(1.0, abs=1e-9)
        assert relaxed.meets_timing

    def test_overconstrained_slack_negative(self, library):
        d = chain_design(2)
        natural = analyze_timing(d, library).clock_period
        tight = analyze_timing(d, library, clock_period=natural / 2)
        assert tight.worst_slack < 0
        assert not tight.meets_timing

    def test_off_critical_nets_have_more_slack(self, library):
        d = chain_design(3)
        report = analyze_timing(d, library)
        first = d.cell("a0").net("Y")
        last = d.cell("a2").net("Y")
        assert report.slack(last) <= report.slack(first) + 1e-9

    def test_slack_of_unconstrained_net_is_inf(self, library, tiny_design):
        report = analyze_timing(tiny_design, library)
        # Control input S drives only a mux select with required time.
        assert report.slack(tiny_design.net("S")) < math.inf


class TestCriticalPath:
    def test_critical_path_follows_chain(self, library):
        d = chain_design(3)
        report = analyze_timing(d, library)
        assert report.critical_path[-1] == "a2"
        assert "a0" in report.critical_path

    def test_multi_block_designs_analyze(self, d1, d2, alu, library):
        for design in (d1, d2, alu):
            report = analyze_timing(design, library)
            assert report.clock_period > 0
            assert report.worst_slack == pytest.approx(0.0, abs=1e-9)

    def test_isolation_reduces_slack(self, d1, library):
        from repro.core import IsolationConfig, isolate_design
        from repro.sim import random_stimulus

        baseline = analyze_timing(d1, library)
        period = baseline.clock_period * 1.3
        result = isolate_design(
            d1,
            lambda: random_stimulus(d1, seed=1, control_probability=0.2),
            IsolationConfig(cycles=300, clock_period=period),
        )
        before = analyze_timing(d1, library, clock_period=period)
        after = analyze_timing(result.design, library, clock_period=period)
        assert after.worst_slack <= before.worst_slack
