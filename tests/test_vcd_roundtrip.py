"""VCD import: parser unit tests and writer→reader round trips.

The contract under test is inversion: a waveform recorded by
:class:`VcdMonitor` during one run, read back with :func:`read_vcd` and
replayed through :class:`VcdStimulus`, must reproduce the original run
*bit-exactly* — every net, every cycle, on every engine. The round-trip
tests assert that by comparing the replayed run's own VCD dump against
the original text byte for byte.
"""

import pytest

from repro.designs import design1, fir_datapath, paper_example
from repro.errors import StimulusError
from repro.sim.engine import simulate
from repro.sim.stimulus import random_stimulus
from repro.sim.vcd import VcdMonitor, VcdStimulus, VcdTrace, read_vcd


def record_vcd(design, cycles=40, seed=3, engine="python"):
    monitor = VcdMonitor()
    simulate(
        design,
        random_stimulus(design, seed=seed),
        cycles,
        monitors=[monitor],
        engine=engine,
    )
    return monitor.dumps()


class TestReadVcd:
    def test_widths_and_cycles(self, tiny_design):
        trace = read_vcd(record_vcd(tiny_design, cycles=10))
        assert trace.cycles == 10
        assert trace.width("A") == 8
        # The synthesized 1-bit clk is bookkeeping, not a signal.
        assert "clk" not in trace.signals
        assert set(trace.signals) == {n.name for n in tiny_design.nets}

    def test_values_sample_and_hold(self):
        text = "\n".join(
            [
                "$timescale 1 ns $end",
                "$scope module t $end",
                "$var wire 4 ! D $end",
                "$upscope $end",
                "$enddefinitions $end",
                "$dumpvars",
                "b0 !",
                "$end",
                "#2",
                "b101 !",
                "#8",
            ]
        )
        trace = read_vcd(text)
        # No clk declared, no even spacing hint: 1 time unit per cycle.
        assert trace.cycles == 8
        assert trace.values("D") == [0, 0, 5, 5, 5, 5, 5, 5]

    def test_explicit_time_per_cycle(self):
        text = "\n".join(
            [
                "$var wire 2 ! D $end",
                "$enddefinitions $end",
                "#0",
                "b1 !",
                "#4",
                "b10 !",
                "#8",
            ]
        )
        trace = read_vcd(text, time_per_cycle=4)
        assert trace.cycles == 2
        assert trace.values("D") == [1, 2]

    def test_x_and_z_collapse_to_zero(self):
        text = "\n".join(
            [
                "$var wire 1 ! s $end",
                "$var wire 4 \" D $end",
                "$enddefinitions $end",
                "#0",
                "x!",
                'bxz10 "',
                "#1",
            ]
        )
        trace = read_vcd(text)
        assert trace.values("s") == [0]
        assert trace.values("D") == [0b0010]

    def test_scoped_names_qualified_on_collision(self):
        text = "\n".join(
            [
                "$scope module top $end",
                "$var wire 1 ! D $end",
                "$scope module sub $end",
                "$var wire 1 \" D $end",
                "$upscope $end",
                "$upscope $end",
                "$enddefinitions $end",
                "#0",
                "1!",
                "0\"",
                "#1",
            ]
        )
        trace = read_vcd(text)
        assert trace.values("D") == [1]
        assert trace.values("sub.D") == [0]

    def test_real_values_rejected(self):
        text = "\n".join(
            [
                "$var real 64 ! R $end",
                "$enddefinitions $end",
                "#0",
                "r1.25 !",
                "#1",
            ]
        )
        with pytest.raises(StimulusError):
            read_vcd(text)

    def test_unknown_id_code_rejected(self):
        text = "\n".join(
            [
                "$var wire 1 ! D $end",
                "$enddefinitions $end",
                "#0",
                "1?",
                "#1",
            ]
        )
        with pytest.raises(StimulusError):
            read_vcd(text)

    def test_empty_vcd_rejected(self):
        with pytest.raises(StimulusError):
            read_vcd("$enddefinitions $end\n")

    def test_vectors_merge_per_cycle(self, tiny_design):
        trace = read_vcd(record_vcd(tiny_design, cycles=6))
        vectors = trace.vectors(names=["A", "C"])
        assert len(vectors) == 6
        assert all(set(v) == {"A", "C"} for v in vectors)
        assert vectors[0]["A"] == trace.values("A")[0]


class TestVcdStimulus:
    def test_missing_input_named_in_error(self, tiny_design):
        trace = VcdTrace(widths={"A": 8}, changes={"A": [(0, 1)]}, cycles=2)
        with pytest.raises(StimulusError, match="C"):
            VcdStimulus(trace, tiny_design)

    def test_width_mismatch_rejected(self, tiny_design):
        widths = {"A": 4, "C": 8, "S": 1, "G": 1}
        trace = VcdTrace(
            widths=widths,
            changes={name: [(0, 0)] for name in widths},
            cycles=2,
        )
        with pytest.raises(StimulusError, match="wide"):
            VcdStimulus(trace, tiny_design)

    def test_rename_map(self, tiny_design):
        widths = {"a_in": 8, "c_in": 8, "sel": 1, "gate": 1}
        trace = VcdTrace(
            widths=widths,
            changes={name: [(0, 1)] for name in widths},
            cycles=3,
        )
        stim = VcdStimulus(
            trace,
            tiny_design,
            inputs={"A": "a_in", "C": "c_in", "S": "sel", "G": "gate"},
        )
        assert stim.values(0) == {"A": 1, "C": 1, "S": 1, "G": 1}

    def test_strict_run_past_end_raises(self, tiny_design):
        trace = read_vcd(record_vcd(tiny_design, cycles=4))
        stim = VcdStimulus(trace, tiny_design, strict=True)
        stim.values(3)
        with pytest.raises(StimulusError, match="cycle 4"):
            stim.values(4)

    def test_default_warns_and_holds_past_end(self, tiny_design):
        trace = read_vcd(record_vcd(tiny_design, cycles=4))
        stim = VcdStimulus(trace, tiny_design)
        with pytest.warns(RuntimeWarning, match="VCD trace"):
            held = stim.values(10)
        assert held == stim.values(3)

    def test_wrap_mode(self, tiny_design):
        trace = read_vcd(record_vcd(tiny_design, cycles=4))
        stim = VcdStimulus(trace, tiny_design, wrap=True)
        assert stim.values(5) == stim.values(1)


@pytest.mark.parametrize("engine", ["python", "compiled", "bitslice"])
@pytest.mark.parametrize(
    "maker", [paper_example, design1, fir_datapath], ids=["fig1", "design1", "fir"]
)
class TestRoundTrip:
    def test_replay_is_bit_exact(self, maker, engine):
        design = maker()
        original = record_vcd(design, cycles=32, engine=engine)
        trace = read_vcd(original)
        replay = VcdStimulus(trace, design)
        monitor = VcdMonitor()
        simulate(design, replay, trace.cycles, monitors=[monitor], engine=engine)
        assert monitor.dumps() == original

    def test_cross_engine_replay(self, maker, engine):
        # Record on the reference engine, replay on the parametrized one:
        # the trace is engine-neutral and engines are bit-exact peers.
        design = maker()
        original = record_vcd(design, cycles=24, engine="python")
        trace = read_vcd(original)
        monitor = VcdMonitor()
        simulate(
            design,
            VcdStimulus(trace, design),
            trace.cycles,
            monitors=[monitor],
            engine=engine,
        )
        assert monitor.dumps() == original
