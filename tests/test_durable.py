"""Durable job store: journal, disk cache, replay, crash recovery.

The crash-safety contract pinned here:

* the journal is append-only and tolerant of torn tails: truncating
  mid-record costs exactly the torn record, never an earlier one;
* the disk blob cache verifies every read against the embedded SHA-256
  digest — a corrupted blob is quarantined and reported as a miss
  (recompute), never served;
* a restarted :class:`JobService` replays the journal: terminal jobs
  come back with integrity-verified results, orphaned (acknowledged
  but unfinished) jobs are re-enqueued and run to completion, and the
  cache hit-rate survives the restart.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import StateStoreError
from repro.runconfig import RunConfig
from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    DiskResultCache,
    DurableStore,
    JobService,
    Journal,
    payload_digest,
    replay_journal,
)

RUN = {"cycles": 120, "engine": "compiled", "workers": 1}


def make_service(state_dir, **kwargs) -> JobService:
    kwargs.setdefault("queue_size", 8)
    kwargs.setdefault("job_workers", 2)
    kwargs.setdefault("fsync", False)  # tmpfs + tests: skip the fsync cost
    return JobService(state_dir=str(state_dir), **kwargs)


# ----------------------------------------------------------------------
class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path, fsync=False)
        journal.append("submit", "j1", method="estimate")
        journal.append("start", "j1", attempt=1)
        journal.append("finish", "j1", result_digest="abc")
        journal.close()
        records, corrupt = Journal.read(path)
        assert corrupt == 0
        assert [r["type"] for r in records] == ["submit", "start", "finish"]
        assert records[0]["job"] == "j1" and records[0]["method"] == "estimate"

    def test_unknown_record_type_rejected(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"), fsync=False)
        with pytest.raises(StateStoreError):
            journal.append("explode", "j1")
        journal.close()

    def test_torn_tail_costs_only_the_torn_record(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path, fsync=False)
        journal.append("submit", "j1")
        journal.append("submit", "j2")
        journal.append("finish", "j2", result_digest="d")
        journal.close()
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:  # tear the last line in half
            fh.write(raw[: len(raw) - 10])
        records, corrupt = Journal.read(path)
        assert corrupt == 1
        assert [r["job"] for r in records] == ["j1", "j2"]

    def test_garbage_lines_counted_not_fatal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "submit", "job": "j1", "t": 0}\n')
            fh.write("not json at all\n")
            fh.write('{"type": "nope", "job": "j1"}\n')
            fh.write('["not", "an", "object"]\n')
        records, corrupt = Journal.read(path)
        assert len(records) == 1 and corrupt == 3

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal.read(str(tmp_path / "absent.jsonl")) == ([], 0)


class TestReplay:
    def test_lifecycle_folding(self):
        records = [
            {"type": "submit", "job": "a", "t": 1.0, "method": "estimate"},
            {"type": "start", "job": "a", "t": 2.0, "attempt": 1},
            {"type": "finish", "job": "a", "t": 3.0, "result_digest": "dd"},
            {"type": "submit", "job": "b", "t": 1.0},
            {"type": "start", "job": "b", "t": 2.0, "attempt": 1},
            {"type": "retry", "job": "b", "t": 3.0, "reason": "crash"},
            {"type": "submit", "job": "c", "t": 1.0},
            {"type": "fail", "job": "c", "t": 2.0, "error": {"type": "X"}},
            {"type": "submit", "job": "d", "t": 1.0},
            {"type": "cancel", "job": "d", "t": 2.0},
        ]
        state = replay_journal(records)
        assert state["a"]["state"] == "done"
        assert state["a"]["result_digest"] == "dd"
        assert state["b"]["state"] == "queued"  # retried: back in line
        assert state["b"]["attempts"] == 1
        assert state["c"]["state"] == "failed"
        assert state["c"]["error"] == {"type": "X"}
        assert state["d"]["state"] == "cancelled"

    def test_records_without_submit_are_dropped(self):
        # A start/finish whose submit was lost to truncation refers to
        # work that was never durably acknowledged.
        state = replay_journal(
            [
                {"type": "start", "job": "ghost", "t": 1.0, "attempt": 1},
                {"type": "finish", "job": "ghost", "t": 2.0},
            ]
        )
        assert state == {}


# ----------------------------------------------------------------------
class TestDiskResultCache:
    def test_blob_survives_a_fresh_instance(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = DiskResultCache(root, capacity=4)
        cache.put("k" * 16, {"value": 42})
        reborn = DiskResultCache(root, capacity=4)  # cold memory tier
        hit, payload = reborn.get("k" * 16)
        assert hit and payload == {"value": 42}
        assert reborn._metrics.value("serve.cache.disk_hits") == 1

    def test_corrupt_blob_quarantined_and_missed(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = DiskResultCache(root, capacity=4)
        key = "deadbeef" * 8
        cache.put(key, {"value": 1})
        blob = os.path.join(root, "blobs", key[:2], f"{key}.json")
        raw = bytearray(open(blob, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(blob, "wb").write(bytes(raw))
        reborn = DiskResultCache(root, capacity=4)
        hit, payload = reborn.get(key)
        assert not hit and payload is None
        assert not os.path.exists(blob)  # moved out of the blob tree
        assert len(os.listdir(os.path.join(root, "quarantine"))) == 1
        stats = reborn.stats()
        assert stats["quarantined"] == 1 and stats["corrupt"] == 1

    def test_key_mismatch_is_corruption(self, tmp_path):
        # A blob renamed to another key must not satisfy that key.
        root = str(tmp_path / "cache")
        cache = DiskResultCache(root, capacity=4)
        cache.put("aa11", {"value": 1})
        src = os.path.join(root, "blobs", "aa", "aa11.json")
        dst = os.path.join(root, "blobs", "bb")
        os.makedirs(dst, exist_ok=True)
        os.rename(src, os.path.join(dst, "bb22.json"))
        hit, _ = DiskResultCache(root, capacity=4).get("bb22")
        assert not hit

    def test_verify_scans_every_blob(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = DiskResultCache(root, capacity=4)
        cache.put("aaaa", {"v": 1})
        cache.put("bbbb", {"v": 2})
        blob = os.path.join(root, "blobs", "aa", "aaaa.json")
        open(blob, "w").write("garbage")
        assert cache.verify() == {"verified": 1, "quarantined": 1}

    def test_payload_digest_is_canonical(self):
        assert payload_digest({"b": 1, "a": 2}) == payload_digest({"a": 2, "b": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


# ----------------------------------------------------------------------
class TestRecovery:
    def test_done_job_survives_restart_with_verified_result(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=120)
            assert job.state == DONE
            result, job_id = job.result, job.id
        finally:
            service.shutdown()

        reborn = make_service(tmp_path)
        try:
            report = reborn.last_recovery
            assert report is not None
            assert report.completed == 1 and report.results_recovered == 1
            recovered = reborn.get(job_id)
            assert recovered.state == DONE and recovered.recovered
            assert json.dumps(recovered.result, sort_keys=True) == json.dumps(
                result, sort_keys=True
            )
            # Cache hit-rate is preserved across the restart.
            again = reborn.submit("estimate", builtin="design1", run=RUN)
            assert again.cached and again.state == DONE
        finally:
            reborn.shutdown()

    def test_orphaned_job_reenqueued_and_completed(self, tmp_path):
        service = make_service(tmp_path, start=False)  # ack but never run
        job = service.submit("estimate", builtin="design1", run=RUN)
        assert job.state == QUEUED
        service.store.close()  # simulate the crash: no drain, no finish

        reborn = make_service(tmp_path)
        try:
            report = reborn.last_recovery
            assert report.reenqueued == 1 and report.reenqueued_ids == [job.id]
            recovered = reborn.wait(job.id, timeout=120)
            assert recovered.state == DONE and recovered.recovered
        finally:
            reborn.shutdown()

    def test_corrupt_result_blob_recomputed_not_served(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=120)
            digest = payload_digest(job.result)
            key, job_id = job.cache_key, job.id
        finally:
            service.shutdown()
        blob = os.path.join(
            str(tmp_path), "cache", "blobs", key[:2], f"{key}.json"
        )
        raw = bytearray(open(blob, "rb").read())
        raw[len(raw) // 3] ^= 0xFF
        open(blob, "wb").write(bytes(raw))

        reborn = make_service(tmp_path)
        try:
            assert reborn.last_recovery.results_missing == 1
            recomputed = reborn.wait(job_id, timeout=120)
            assert recomputed.state == DONE
            assert payload_digest(recomputed.result) == digest
        finally:
            reborn.shutdown()

    def test_failed_job_replays_with_error_body(self, tmp_path, monkeypatch):
        from repro.serve.jobs import METHODS

        def boom(session, params):
            raise ValueError("deliberate test failure")

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), boom))
        service = make_service(tmp_path)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=60)
            assert job.state == FAILED
            job_id = job.id
        finally:
            service.shutdown()
        monkeypatch.undo()

        reborn = make_service(tmp_path)
        try:
            recovered = reborn.get(job_id)
            assert recovered.state == FAILED
            assert recovered.error["type"] == "ValueError"
            assert recovered.error["diagnostics"]
        finally:
            reborn.shutdown()

    def test_torn_journal_tail_is_counted_and_survivors_recover(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=120)
            job_id = job.id
        finally:
            service.shutdown()
        path = os.path.join(str(tmp_path), DurableStore.JOURNAL_NAME)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-5])  # tear the final record

        reborn = make_service(tmp_path)
        try:
            assert reborn.last_recovery.corrupt_lines == 1
            assert reborn.get(job_id) is not None
        finally:
            reborn.shutdown()

    def test_id_counter_resumes_past_recovered_jobs(self, tmp_path):
        service = make_service(tmp_path)
        try:
            first = service.submit("estimate", builtin="design1", run=RUN)
            service.wait(first.id, timeout=120)
        finally:
            service.shutdown()
        reborn = make_service(tmp_path)
        try:
            second = reborn.submit(
                "estimate", builtin="design1", run={**RUN, "cycles": 121}
            )
            assert second.id != first.id
            assert int(second.id.lstrip("j")) > int(first.id.lstrip("j"))
        finally:
            reborn.shutdown()

    def test_healthz_reports_durable_status(self, tmp_path):
        service = make_service(tmp_path)
        try:
            status = service.status()
            assert status["durable"]["state_dir"] == str(tmp_path)
            assert "journal" in status["durable"]
            assert status["durable"]["cache"]["root"].startswith(str(tmp_path))
        finally:
            service.shutdown()

    def test_default_run_still_works_without_state_dir(self):
        service = JobService(queue_size=4, job_workers=1)
        try:
            assert service.store is None and service.last_recovery is None
            job = service.submit("estimate", builtin="design1", run=RUN)
            assert service.wait(job.id, timeout=120).state == DONE
        finally:
            service.shutdown()
