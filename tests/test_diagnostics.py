"""Structured diagnostics and the Session.validate() facade."""

import pytest

from repro.api import Session
from repro.designs import design1
from repro.diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    errors_only,
    format_diagnostics,
    worst_severity,
)
from repro.netlist.design import Design
from repro.netlist.ports import PrimaryInput, PrimaryOutput
from repro.netlist.validate import validation_problems


def _diag(**kwargs):
    base = dict(code="no-driver", message="net 'X' has no driver", net="X")
    base.update(kwargs)
    return Diagnostic(**base)


def test_legacy_string_compatibility():
    diag = _diag()
    assert str(diag) == "net 'X' has no driver"
    assert "no driver" in diag  # substring membership, legacy contract
    assert "zebra" not in diag


def test_format_and_location():
    diag = _diag(cell="u1")
    assert diag.location == "cell u1, net X"
    line = diag.format()
    assert line.startswith("[error] no-driver")
    assert "cell u1" in line and "net X" in line
    anonymous = Diagnostic(code="comb-loop", message="cycle found")
    assert anonymous.location == "design"


def test_to_dict_round_trip():
    diag = _diag(severity="warning")
    data = diag.to_dict()
    assert data == {
        "code": "no-driver",
        "severity": "warning",
        "cell": None,
        "net": "X",
        "message": "net 'X' has no driver",
    }
    assert Diagnostic(**data) == diag


def test_helpers():
    err = _diag()
    warn = _diag(severity="warning")
    assert worst_severity([warn, err]) == "error"
    assert worst_severity([warn]) == "warning"
    assert worst_severity([]) is None
    assert errors_only([warn, err]) == [err]
    rendered = format_diagnostics([err, warn])
    assert rendered.count("\n") == 1
    assert "[warning]" in rendered


def test_known_codes_registered():
    assert "silent-fault" in CODES
    assert set(SEVERITIES) == {"error", "warning"}


# ----------------------------------------------------------------------
# validation_problems now speaks Diagnostic
# ----------------------------------------------------------------------
def _broken_design():
    design = Design("broken")
    a = design.add_net("A", 8)
    dangling = design.add_net("D", 8)
    pi = design.add_cell(PrimaryInput("I"))
    design.connect(pi, "Y", a)
    po = design.add_cell(PrimaryOutput("O"))
    design.connect(po, "A", a)
    return design, dangling


def test_validation_problems_are_diagnostics():
    design, _ = _broken_design()
    problems = validation_problems(design)
    assert problems
    assert all(isinstance(p, Diagnostic) for p in problems)
    codes = {p.code for p in problems}
    assert "no-driver" in codes  # net D undriven
    by_code = {p.code: p for p in problems}
    assert by_code["no-driver"].net == "D"
    assert by_code["no-driver"].severity == "error"


def test_no_readers_is_a_warning_and_suppressable():
    design = Design("warn_only")
    a = design.add_net("A", 8)
    pi = design.add_cell(PrimaryInput("I"))
    design.connect(pi, "Y", a)
    problems = validation_problems(design)
    assert [p.code for p in problems] == ["no-readers"]
    assert problems[0].severity == "warning"
    assert validation_problems(design, allow_dangling=True) == []


# ----------------------------------------------------------------------
# Session.validate()
# ----------------------------------------------------------------------
def test_session_validate_healthy():
    assert Session(design1()).validate() == []


def test_session_validate_reports_diagnostics():
    design, _ = _broken_design()
    diagnostics = Session(design).validate()
    assert any(d.code == "no-driver" for d in diagnostics)
    # allow_dangling only silences the warning class, not errors
    still = Session(design).validate(allow_dangling=True)
    assert any(d.code == "no-driver" for d in still)
    assert all(d.code != "no-readers" for d in still)
