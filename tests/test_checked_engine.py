"""The checked engine: lockstep cross-checking and graceful degradation."""

import warnings

import pytest

from repro.designs import design1, paper_example
from repro.errors import CompilationError, EquivalenceError, SimulationError
from repro.sim import (
    CheckedSimulator,
    CompiledSimulator,
    EngineDivergence,
    Simulator,
    ToggleMonitor,
    compile_design,
    make_simulator,
    random_stimulus,
)
from repro.sim import compile as compile_mod
from repro.sim import engine as engine_mod
from repro.sim.checked import DEFAULT_CHECK_INTERVAL


def test_make_simulator_checked():
    sim = make_simulator(design1(), "checked")
    assert isinstance(sim, CheckedSimulator)
    assert sim.fallback_reason is None


def test_checked_matches_python_engine():
    design = design1()
    cycles, warmup = 300, 16

    mon_ref = ToggleMonitor()
    Simulator(design).run(
        random_stimulus(design, seed=5), cycles, monitors=[mon_ref], warmup=warmup
    )
    mon_chk = ToggleMonitor()
    checked = CheckedSimulator(design, check_interval=50)
    checked.run(
        random_stimulus(design, seed=5), cycles, monitors=[mon_chk], warmup=warmup
    )
    assert checked.checks_performed >= (cycles + warmup) // 50
    for net in design.nets:
        assert mon_chk.toggles[net] == mon_ref.toggles[net], net.name


def test_checked_catches_seeded_compiled_bug():
    """The acceptance regression: a deliberately corrupted compiled
    program must be caught at the first cross-check, not averaged into
    the results."""
    design = design1()
    program = compile_design(design)
    compiled = CompiledSimulator(design, program=program)

    # Seed the bug: after the first block settles, flip a bit of one
    # intermediate net — a model of a miscompiled expression.
    block = program.blocks[0]
    original_fn = block.fn

    def corrupted(v, st, ctx):
        original_fn(v, st, ctx)
        v[5] ^= 1

    block.fn = corrupted
    try:
        checked = CheckedSimulator(design, compiled=compiled)
        with pytest.raises(EquivalenceError) as excinfo:
            checked.run(random_stimulus(design, seed=0), 300)
        message = str(excinfo.value)
        assert "diverged" in message
        assert f"cycle {DEFAULT_CHECK_INTERVAL}" in message
        assert "check #1" in message
        assert program.design_hash[:12] in message
    finally:
        block.fn = original_fn  # the program is globally cached


def test_divergences_lists_nets_and_state():
    design = paper_example()
    checked = CheckedSimulator(design)
    stim = random_stimulus(design, seed=2)
    for cycle in range(10):
        checked.step(stim.values(checked.cycle))
        checked.commit()
    assert checked.divergences() == []
    # Corrupt one compiled net value in place and expect it reported.
    checked.compiled._values[3] ^= 1
    found = checked.divergences()
    assert found and isinstance(found[0], EngineDivergence)
    assert found[0].kind in ("net", "state")
    assert "reference=" in str(found[0])


def test_check_interval_validation():
    with pytest.raises(EquivalenceError):
        CheckedSimulator(design1(), check_interval=0)


def test_final_check_covers_short_runs():
    design = paper_example()
    checked = CheckedSimulator(design, check_interval=1000)
    checked.run(random_stimulus(design, seed=0), 10)
    assert checked.checks_performed == 1  # the final tail check


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class _AlwaysFails:
    def __init__(self, design, *args, **kwargs):
        raise CompilationError("synthetic lowering failure", unit="settle_0")


@pytest.mark.parametrize("engine", ["compiled", "checked"])
def test_compilation_failure_degrades_to_python(monkeypatch, engine):
    monkeypatch.setattr(compile_mod, "CompiledSimulator", _AlwaysFails)
    if engine == "checked":
        import repro.sim.checked as checked_mod

        monkeypatch.setattr(checked_mod, "CompiledSimulator", _AlwaysFails)

    design = design1()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sim = make_simulator(design, engine)
    assert isinstance(sim, Simulator)
    assert sim.fallback_reason is not None
    assert "synthetic lowering failure" in sim.fallback_reason
    degradations = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(degradations) == 1
    assert "falling back" in str(degradations[0].message)

    # The degraded simulator still works.
    result = sim.run(random_stimulus(design, seed=0), 20)
    assert result.cycles == 20


def test_fallback_reason_lands_in_stage_timings(monkeypatch):
    from repro.core.algorithm import IsolationConfig, isolate_design

    monkeypatch.setattr(compile_mod, "CompiledSimulator", _AlwaysFails)
    design = design1()
    config = IsolationConfig(cycles=120, engine="compiled")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = isolate_design(
            design, lambda: random_stimulus(design, seed=0), config
        )
    assert result.timings.fallback_reason is not None
    assert "synthetic lowering failure" in result.timings.fallback_reason
    assert result.timings.to_dict()["fallback_reason"] == (
        result.timings.fallback_reason
    )
    assert "degraded" in result.summary()


def test_no_fallback_reason_on_healthy_run():
    from repro.core.algorithm import IsolationConfig, isolate_design

    design = paper_example()
    config = IsolationConfig(cycles=120, engine="checked")
    result = isolate_design(design, lambda: random_stimulus(design, seed=0), config)
    assert result.timings.fallback_reason is None
    assert "degraded" not in result.summary()


def test_typed_errors_still_propagate(monkeypatch):
    """Only CompilationError triggers degradation; design-level typed
    errors would fail on any backend and must surface unchanged."""

    class Explodes:
        def __init__(self, design, *args, **kwargs):
            raise SimulationError("design-level problem")

    monkeypatch.setattr(compile_mod, "CompiledSimulator", Explodes)
    with pytest.raises(SimulationError):
        make_simulator(design1(), "compiled")
