"""Content-addressed identity: design and RunConfig fingerprints.

Pins the two halves of the serve cache key:

* :func:`design_fingerprint` — semantically identical rebuilds collide
  (same generator, a ``copy()``, a textio round trip); every structural
  edit (cell/net add, rewire, width or parameter change) changes the
  digest;
* :meth:`RunConfig.fingerprint` — canonical over the result-determining
  fields only (``workers``/``trace`` excluded by the bit-exactness
  contract).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.designs import (
    alu_control_dominated,
    correlated_chain,
    design1,
    design2,
    fir_datapath,
    lookahead_pipeline,
    paper_example,
    random_datapath,
    shared_bus_datapath,
    soc_datapath,
)
from repro.netlist import textio
from repro.netlist.builder import DesignBuilder
from repro.runconfig import RunConfig
from repro.sim.compile import design_fingerprint

GENERATORS = [
    paper_example,
    design1,
    design2,
    fir_datapath,
    alu_control_dominated,
    shared_bus_datapath,
    lookahead_pipeline,
    correlated_chain,
    soc_datapath,
]


def build(width=8, mux_width=1):
    """A small parametric design for edit-sensitivity checks."""
    b = DesignBuilder("probe")
    a = b.input("A", width)
    c = b.input("C", width)
    s = b.input("S", mux_width)
    g = b.input("G", 1)
    total = b.add(a, c, name="a0")
    picked = b.mux(s, total, c, name="m0")
    q = b.register(picked, enable=g, name="r0")
    b.output(q, "OUT")
    return b.build()


class TestDesignFingerprint:
    @pytest.mark.parametrize("maker", GENERATORS, ids=lambda m: m.__name__)
    def test_rebuilds_collide(self, maker):
        assert design_fingerprint(maker()) == design_fingerprint(maker())

    def test_copy_and_textio_roundtrip_collide(self, d1):
        fp = design_fingerprint(d1)
        assert design_fingerprint(d1.copy()) == fp
        assert design_fingerprint(textio.loads(textio.dumps(d1))) == fp

    def test_name_does_not_enter_the_digest(self, d1):
        assert design_fingerprint(d1.copy(name="other")) == design_fingerprint(d1)

    def test_structural_edits_change_the_digest(self):
        base = design_fingerprint(build())
        assert design_fingerprint(build(width=9)) != base  # net width
        bigger = build()
        extra_b = DesignBuilder("probe2")
        # A genuinely different structure: one more adder stage.
        a = extra_b.input("A", 8)
        c = extra_b.input("C", 8)
        s = extra_b.input("S", 1)
        g = extra_b.input("G", 1)
        total = extra_b.add(a, c, name="a0")
        total2 = extra_b.add(total, c, name="a1")
        picked = extra_b.mux(s, total2, c, name="m0")
        q = extra_b.register(picked, enable=g, name="r0")
        extra_b.output(q, "OUT")
        assert design_fingerprint(extra_b.build()) != base

    def test_isolation_transform_changes_the_digest(self, fig1):
        session = api.Session(
            fig1, run=RunConfig(cycles=100, warmup=8, engine="compiled")
        )
        before = session.fingerprint()
        result = session.isolate(style="and")
        assert design_fingerprint(result.design) != before
        # ... and the original was untouched.
        assert session.fingerprint() == before

    def test_distinct_generators_have_distinct_digests(self):
        digests = [design_fingerprint(maker()) for maker in GENERATORS]
        assert len(set(digests)) == len(digests)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_designs_are_self_consistent(self, seed):
        first = random_datapath(seed=seed)
        second = random_datapath(seed=seed)
        assert design_fingerprint(first) == design_fingerprint(second)

    def test_session_fingerprint_is_the_design_fingerprint(self, d1):
        assert api.Session(d1).fingerprint() == design_fingerprint(d1)


class TestRunConfigFingerprint:
    def test_equal_configs_collide(self):
        assert (
            RunConfig(cycles=100, seed=3).fingerprint()
            == RunConfig(cycles=100, seed=3).fingerprint()
        )

    @pytest.mark.parametrize(
        "override",
        [{"cycles": 2001}, {"warmup": 17}, {"seed": 1}, {"engine": "compiled"}],
        ids=lambda o: next(iter(o)),
    )
    def test_each_semantic_field_enters_the_digest(self, override):
        assert (
            RunConfig().fingerprint() != RunConfig(**override).fingerprint()
        )

    def test_workers_and_trace_are_excluded(self):
        base = RunConfig().fingerprint()
        assert RunConfig(workers=4).fingerprint() == base
        assert RunConfig(trace=True).fingerprint() == base

    def test_roundtrip_through_dict(self):
        config = RunConfig(cycles=123, warmup=4, seed=9, engine="compiled")
        clone = RunConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.fingerprint() == config.fingerprint()
