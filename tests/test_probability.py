"""Unit tests for the signal-probability helper."""

from repro.boolean.bdd import BddManager
from repro.boolean.expr import and_, not_, or_, var
from repro.boolean.probability import signal_probability


class TestSignalProbability:
    def test_simple(self):
        assert signal_probability(var("a"), {"a": 0.25}) == 0.25

    def test_negation(self):
        assert abs(signal_probability(not_(var("a")), {"a": 0.25}) - 0.75) < 1e-12

    def test_manager_reuse(self):
        manager = BddManager()
        e1 = and_(var("a"), var("b"))
        e2 = or_(var("a"), var("b"))
        p1 = signal_probability(e1, {"a": 0.5, "b": 0.5}, manager=manager)
        p2 = signal_probability(e2, {"a": 0.5, "b": 0.5}, manager=manager)
        assert abs(p1 - 0.25) < 1e-12
        assert abs(p2 - 0.75) < 1e-12

    def test_defaults_to_half(self):
        assert signal_probability(var("x")) == 0.5

    def test_matches_simulation_for_independent_controls(self, tiny_design):
        """Analytical probability ≈ measured probability for independent PIs."""
        from repro.sim import ProbeSet, Simulator, random_stimulus

        expr = and_(var("G"), not_(var("S")))
        probes = ProbeSet({"e": expr})
        stim = random_stimulus(tiny_design, seed=3, control_probability=0.3)
        Simulator(tiny_design).run(stim, 4000, monitors=[probes])
        analytical = signal_probability(expr, {"G": 0.3, "S": 0.3})
        assert abs(probes.probability("e") - analytical) < 0.05
