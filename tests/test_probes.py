"""Unit tests for expression probes."""

import pytest

from repro.boolean.expr import and_, not_, var
from repro.errors import SimulationError
from repro.netlist.builder import DesignBuilder
from repro.sim.engine import simulate
from repro.sim.probes import ExpressionProbe, ProbeSet
from repro.sim.stimulus import SequenceStimulus


class TestExpressionProbe:
    def test_probability_counts_true_cycles(self):
        probe = ExpressionProbe("p", var("g"))
        for value in (1, 1, 0, 1):
            probe.sample({"g": value})
        assert probe.probability == 0.75

    def test_toggle_rate_counts_transitions(self):
        probe = ExpressionProbe("p", var("g"))
        for value in (0, 1, 1, 0):
            probe.sample({"g": value})
        assert probe.transitions == 2
        assert probe.toggle_rate == 2 / 3

    def test_reset(self):
        probe = ExpressionProbe("p", var("g"))
        probe.sample({"g": 1})
        probe.reset()
        assert probe.cycles == 0 and probe.probability == 0.0


class TestProbeSet:
    def test_measures_joint_probability(self, tiny_design):
        vectors = [
            {"A": 0, "C": 0, "S": 0, "G": 1},
            {"A": 0, "C": 0, "S": 1, "G": 1},
            {"A": 0, "C": 0, "S": 0, "G": 0},
            {"A": 0, "C": 0, "S": 0, "G": 1},
        ]
        probes = ProbeSet({"joint": and_(not_(var("S")), var("G"))})
        simulate(tiny_design, SequenceStimulus(vectors), 4, monitors=[probes])
        assert probes.probability("joint") == 0.5

    def test_duplicate_name_rejected(self):
        probes = ProbeSet({"p": var("x")})
        with pytest.raises(SimulationError):
            probes.add("p", var("y"))

    def test_bitref_variables(self):
        b = DesignBuilder("t")
        sel = b.input("SEL", 2)
        x = b.input("X", 4)
        y = b.input("Y", 4)
        out = b.mux(sel, x, y, x, y)
        b.output(b.register(out), "O")
        d = b.build()
        probes = ProbeSet({"hi": var("SEL[1]")})
        vectors = [{"SEL": 2, "X": 0, "Y": 0}, {"SEL": 1, "X": 0, "Y": 0}]
        simulate(d, SequenceStimulus(vectors), 2, monitors=[probes])
        assert probes.probability("hi") == 0.5

    def test_probabilities_bulk_access(self, tiny_design):
        probes = ProbeSet({"g": var("G"), "s": var("S")})
        simulate(
            tiny_design,
            SequenceStimulus([{"A": 0, "C": 0, "S": 1, "G": 0}]),
            4,
            monitors=[probes],
        )
        assert probes.probabilities() == {"g": 0.0, "s": 1.0}
        assert "g" in probes
        assert probes["g"].cycles == 4
