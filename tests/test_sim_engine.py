"""Unit tests for the cycle-based simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.netlist.builder import DesignBuilder
from repro.sim.engine import SimulationResult, Simulator, simulate
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import SequenceStimulus


def pipeline_design():
    """X -> +1 -> reg -> +1 -> reg -> OUT (no enables)."""
    b = DesignBuilder("pipe")
    x = b.input("X", 8)
    one = b.const(1, 8)
    s1 = b.add(x, one, name="inc1")
    q1 = b.register(s1, name="p1")
    s2 = b.add(q1, one, name="inc2")
    q2 = b.register(s2, name="p2")
    b.output(q2, "OUT")
    return b.build()


class TestStepSemantics:
    def test_combinational_settling(self, tiny_design):
        sim = Simulator(tiny_design)
        settled = sim.step({"A": 10, "C": 5, "S": 0, "G": 1})
        assert settled[tiny_design.net("a0")] == 15
        assert settled[tiny_design.net("m0")] == 15

    def test_mux_steering(self, tiny_design):
        sim = Simulator(tiny_design)
        settled = sim.step({"A": 10, "C": 5, "S": 1, "G": 1})
        assert settled[tiny_design.net("m0")] == 5

    def test_register_updates_on_commit_only(self, tiny_design):
        sim = Simulator(tiny_design)
        sim.step({"A": 10, "C": 5, "S": 0, "G": 1})
        reg = tiny_design.cell("r0")
        assert sim.state[reg] == 0  # not yet committed
        sim.commit()
        assert sim.state[reg] == 15

    def test_register_enable_low_holds(self, tiny_design):
        sim = Simulator(tiny_design)
        sim.step({"A": 10, "C": 5, "S": 0, "G": 0})
        sim.commit()
        assert sim.state[tiny_design.cell("r0")] == 0

    def test_two_stage_pipeline_latency(self):
        d = pipeline_design()
        sim = Simulator(d)
        out = d.output_net("OUT")
        values = []
        for cycle in range(4):
            settled = sim.step({"X": 10})
            values.append(settled[out])
            sim.commit()
        # Cycle 0: out=0; cycle 1: second stage sees q1=11 -> q2 commits 12
        assert values[0] == 0
        assert values[2] == 12

    def test_missing_input_raises(self, tiny_design):
        sim = Simulator(tiny_design)
        with pytest.raises(SimulationError):
            sim.step({"A": 1})

    def test_inputs_clipped_to_width(self, tiny_design):
        sim = Simulator(tiny_design)
        settled = sim.step({"A": 0x1FF, "C": 0, "S": 0, "G": 0})
        assert settled[tiny_design.net("A")] == 0xFF


class TestLatchSemantics:
    def make(self):
        b = DesignBuilder("lat")
        x = b.input("X", 8)
        g = b.input("G", 1)
        held = b.latch(x, g, name="l0")
        b.output(b.register(held, name="r0"), "OUT")
        return b.build()

    def test_transparent_follows_input(self):
        d = self.make()
        sim = Simulator(d)
        settled = sim.step({"X": 42, "G": 1})
        assert settled[d.cell("l0").net("Q")] == 42

    def test_opaque_holds_last_transparent_value(self):
        d = self.make()
        sim = Simulator(d)
        sim.step({"X": 42, "G": 1})
        sim.commit()
        settled = sim.step({"X": 99, "G": 0})
        assert settled[d.cell("l0").net("Q")] == 42


class TestRunAndReset:
    def test_run_returns_result_with_monitors(self, tiny_design):
        stim = SequenceStimulus([{"A": 1, "C": 2, "S": 0, "G": 1}])
        mon = ToggleMonitor()
        result = simulate(tiny_design, stim, 10, monitors=[mon])
        assert isinstance(result, SimulationResult)
        assert result.monitor(ToggleMonitor) is mon
        assert mon.cycles == 10

    def test_warmup_excluded_from_observation(self, tiny_design):
        stim = SequenceStimulus([{"A": 1, "C": 2, "S": 0, "G": 1}])
        mon = ToggleMonitor()
        simulate(tiny_design, stim, 10, monitors=[mon], warmup=5)
        assert mon.cycles == 10

    def test_reset_restores_power_on_state(self, tiny_design):
        sim = Simulator(tiny_design)
        sim.step({"A": 10, "C": 5, "S": 0, "G": 1})
        sim.commit()
        sim.reset()
        assert sim.cycle == 0
        assert sim.state[tiny_design.cell("r0")] == 0

    def test_register_reset_value_applied(self):
        b = DesignBuilder("rv")
        x = b.input("X", 8)
        q = b.register(x, reset_value=7, name="r0")
        b.output(q, "OUT")
        d = b.build()
        sim = Simulator(d)
        assert sim.values[d.cell("r0").net("Q")] == 7

    def test_deterministic_across_simulators(self, d1):
        from repro.sim.stimulus import random_stimulus

        def run():
            stim = random_stimulus(d1, seed=5)
            mon = ToggleMonitor()
            Simulator(d1).run(stim, 200, monitors=[mon])
            return {n.name: t for n, t in mon.toggles.items()}

        assert run() == run()

    def test_missing_monitor_type_raises(self, tiny_design):
        stim = SequenceStimulus([{"A": 1, "C": 2, "S": 0, "G": 1}])
        result = simulate(tiny_design, stim, 3)
        with pytest.raises(SimulationError):
            result.monitor(ToggleMonitor)
