"""Unit tests for combinational-block partitioning."""

from repro.netlist.builder import DesignBuilder
from repro.netlist.partition import block_of_cell, partition_blocks


class TestPartition:
    def test_fig1_is_single_block(self, fig1):
        blocks = partition_blocks(fig1)
        assert len(blocks) == 1
        assert {c.name for c in blocks[0].modules} == {"a0", "a1"}

    def test_register_splits_blocks(self):
        b = DesignBuilder("split")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        s1 = b.add(x, y, name="add_front")
        q = b.register(s1, name="pipe")
        s2 = b.add(q, y, name="add_back")
        b.output(b.register(s2, name="out_reg"), "OUT")
        blocks = partition_blocks(b.build())
        assert len(blocks) == 2
        front = block_of_cell(blocks, blocks[0].cells and next(iter(blocks[0].cells)))
        assert front is blocks[0]

    def test_latch_does_not_split(self):
        b = DesignBuilder("lat")
        x = b.input("X", 8)
        g = b.input("G", 1)
        held = b.latch(x, g, name="l0")
        s = b.add(held, x, name="a0")
        b.output(b.register(s, name="r0"), "OUT")
        blocks = partition_blocks(b.build())
        assert len(blocks) == 1
        names = {c.name for c in blocks[0].cells}
        assert {"l0", "a0"} <= names

    def test_boundary_nets(self, tiny_design):
        blocks = partition_blocks(tiny_design)
        block = blocks[0]
        input_names = {n.name for n in block.boundary_inputs}
        output_names = {n.name for n in block.boundary_outputs}
        assert "A" in input_names and "C" in input_names
        assert "m0" in output_names  # feeds the register

    def test_design1_has_multiple_blocks(self, d1):
        blocks = partition_blocks(d1)
        assert len(blocks) >= 4
        all_modules = {c.name for blk in blocks for c in blk.modules}
        assert {"mul0", "mul1", "add0", "sub0", "add1"} <= all_modules

    def test_deterministic_indexing(self, d1):
        first = [sorted(c.name for c in blk.cells) for blk in partition_blocks(d1)]
        second = [sorted(c.name for c in blk.cells) for blk in partition_blocks(d1)]
        assert first == second

    def test_contains(self, tiny_design):
        block = partition_blocks(tiny_design)[0]
        assert tiny_design.cell("a0") in block
        assert tiny_design.cell("r0") not in block
