"""Unit tests for graph traversals: topological order, cones."""

import pytest

from repro.errors import ValidationError
from repro.netlist.builder import DesignBuilder
from repro.netlist.design import Design
from repro.netlist.logic import NotGate
from repro.netlist.traversal import (
    combinational_order,
    net_fanin_cone_nets,
    transitive_fanin_cells,
    transitive_fanout_cells,
)


class TestCombinationalOrder:
    def test_respects_dependencies(self, tiny_design):
        order = combinational_order(tiny_design)
        names = [c.name for c in order]
        assert names.index("a0") < names.index("m0")

    def test_covers_all_combinational_cells(self, fig1):
        order = combinational_order(fig1)
        assert {c.name for c in order} == {
            c.name for c in fig1.combinational_cells
        }

    def test_deterministic(self, d1):
        first = [c.name for c in combinational_order(d1)]
        second = [c.name for c in combinational_order(d1)]
        assert first == second

    def test_loop_detected(self):
        d = Design("loop")
        g1 = d.add_cell(NotGate("g1"))
        g2 = d.add_cell(NotGate("g2"))
        n1 = d.add_net("n1", 1)
        n2 = d.add_net("n2", 1)
        d.connect(g1, "A", n2)
        d.connect(g1, "Y", n1)
        d.connect(g2, "A", n1)
        d.connect(g2, "Y", n2)
        with pytest.raises(ValidationError):
            combinational_order(d)

    def test_subset_restriction(self, fig1):
        subset = {fig1.cell("a0")}
        order = combinational_order(fig1, cells=subset)
        assert [c.name for c in order] == ["a0"]


class TestCones:
    def test_fanout_stops_at_register(self, fig1):
        cone = transitive_fanout_cells(fig1.cell("a0"), stop_at_sequential=True)
        names = {c.name for c in cone}
        assert "r0" in names  # reaches the register
        assert "OUT0" not in names  # but does not pass it

    def test_fanout_through_registers(self, fig1):
        cone = transitive_fanout_cells(fig1.cell("a0"), stop_at_sequential=False)
        names = {c.name for c in cone}
        assert "OUT0" in names

    def test_a1_reaches_a0(self, fig1):
        cone = transitive_fanout_cells(fig1.cell("a1"))
        assert fig1.cell("a0") in cone

    def test_fanin_cone(self, fig1):
        cone = transitive_fanin_cells(fig1.cell("a0"))
        names = {c.name for c in cone}
        assert "m1" in names and "m0" in names and "a1" in names

    def test_net_fanin_cone(self, fig1):
        nets = net_fanin_cone_nets(fig1.cell("a0").net("Y"))
        names = {n.name for n in nets}
        assert "a0" in names and "m1" in names and "A" in names
