"""Tests for the vectorized batch simulation engine."""

import numpy as np
import pytest

from repro.boolean.expr import var
from repro.designs import design1, design2, paper_example
from repro.errors import SimulationError
from repro.sim.batch import (
    BatchControlStream,
    BatchProbe,
    BatchRandomStimulus,
    BatchSimulator,
    BatchToggleMonitor,
    BroadcastStimulus,
    popcount_u64,
)
from repro.sim.engine import Simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import ControlStream, random_stimulus


class TestPopcount:
    def test_matches_python(self):
        values = np.array([0, 1, 0xFF, 0xDEADBEEF, 2**63], dtype=np.uint64)
        expected = [bin(int(v)).count("1") for v in values]
        assert list(popcount_u64(values)) == expected


class TestCrossValidation:
    """Every lane of a broadcast batch must equal the scalar engine."""

    @pytest.mark.parametrize("maker", [paper_example, design1, design2])
    def test_broadcast_matches_scalar(self, maker):
        design = maker()
        scalar_stim = random_stimulus(design, seed=9)
        batch_stim = BroadcastStimulus(random_stimulus(design, seed=9), 4)

        scalar = Simulator(design)
        batch = BatchSimulator(design, batch_size=4)
        for cycle in range(60):
            values = scalar_stim.values(cycle)
            scalar_settled = scalar.step(values)
            batch_settled = batch.step(batch_stim.values(cycle))
            for net, value in scalar_settled.items():
                lanes = batch_settled[net]
                assert int(lanes[0]) == value, f"{net.name} cycle {cycle}"
                assert (lanes == lanes[0]).all()
            scalar.commit()
            batch.commit()

    def test_broadcast_matches_scalar_on_isolated_design(self):
        """Banks/latches/activation logic also agree lane-for-lane."""
        from repro.core import IsolationConfig, isolate_design

        design = design1()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=1, control_probability=0.2),
            IsolationConfig(style="latch", cycles=300),
        )
        working = result.design
        scalar_stim = random_stimulus(working, seed=3)
        batch_stim = BroadcastStimulus(random_stimulus(working, seed=3), 3)
        scalar = Simulator(working)
        batch = BatchSimulator(working, batch_size=3)
        for cycle in range(50):
            scalar_settled = scalar.step(scalar_stim.values(cycle))
            batch_settled = batch.step(batch_stim.values(cycle))
            for net, value in scalar_settled.items():
                assert int(batch_settled[net][0]) == value
            scalar.commit()
            batch.commit()

    def test_divider_lanes_handle_zero_divisor(self):
        from repro.netlist.builder import DesignBuilder

        b = DesignBuilder("div")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        q, r = b.divmod_(x, y, name="d0")
        b.output(b.register(q), "Q")
        b.output(b.register(r), "R")
        design = b.build()
        batch = BatchSimulator(design, batch_size=3)
        settled = batch.step(
            {
                "X": np.array([23, 23, 50], dtype=np.uint64),
                "Y": np.array([5, 0, 7], dtype=np.uint64),
            }
        )
        assert list(settled[design.net("d0_q")]) == [4, 0xFF, 7]
        assert list(settled[design.net("d0_r")]) == [3, 23, 1]


class TestStatistics:
    def test_toggle_rate_matches_scalar_average(self, d1):
        monitor = ToggleMonitor()
        Simulator(d1).run(
            random_stimulus(d1, seed=0), 2000, monitors=[monitor]
        )
        batch_monitor = BatchToggleMonitor()
        stim = BatchRandomStimulus(d1, batch_size=16, seed=0)
        BatchSimulator(d1, batch_size=16).run(stim, 500, monitors=[batch_monitor])
        net = d1.net("X0")
        mean, half = batch_monitor.toggle_rate_ci(net)
        assert abs(mean - monitor.toggle_rate(net)) < max(3 * half, 0.15)

    def test_ci_shrinks_with_batch(self, d1):
        def half_width(batch_size):
            monitor = BatchToggleMonitor()
            stim = BatchRandomStimulus(d1, batch_size=batch_size, seed=0)
            BatchSimulator(d1, batch_size=batch_size).run(
                stim, 200, monitors=[monitor]
            )
            return monitor.toggle_rate_ci(d1.cell("mul0").net("Y"))[1]

        assert half_width(32) < half_width(4) * 1.1

    def test_batch_probe_probability(self, d1):
        probe = BatchProbe("en", var("EN"))
        stim = BatchRandomStimulus(
            d1, batch_size=16, seed=1,
            overrides={"EN": BatchControlStream(0.2, 0.1)},
        )
        BatchSimulator(d1, batch_size=16).run(stim, 600, monitors=[probe])
        mean, half = probe.probability_ci()
        assert abs(mean - 0.2) < max(3 * half, 0.05)

    def test_control_stream_statistics(self):
        stream = BatchControlStream(0.3, 0.1)
        rng = np.random.default_rng(5)
        stream.begin(64, rng)
        ones = 0
        toggles = 0
        prev = stream.state.copy()
        cycles = 3000
        for _ in range(cycles):
            value = stream.next_values(rng)
            ones += int(value.sum())
            toggles += int((value != prev).sum())
            prev = value.copy()
        assert abs(ones / (cycles * 64) - 0.3) < 0.03
        assert abs(toggles / (cycles * 64) - 0.1) < 0.02


class TestGuards:
    def test_wide_nets_rejected(self):
        from repro.netlist.builder import DesignBuilder

        b = DesignBuilder("wide")
        x = b.input("X", 40)
        b.output(b.register(x), "O")
        with pytest.raises(SimulationError):
            BatchSimulator(b.build(), batch_size=2)

    def test_missing_input_rejected(self, d1):
        batch = BatchSimulator(d1, batch_size=2)
        with pytest.raises(SimulationError):
            batch.step({"X0": np.zeros(2, dtype=np.uint64)})

    def test_unknown_override_rejected(self, d1):
        with pytest.raises(Exception):
            BatchRandomStimulus(
                d1, batch_size=2, overrides={"GHOST": BatchControlStream(0.5)}
            )
