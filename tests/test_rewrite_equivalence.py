"""Pinned rewrite→isolate suite over every shipped design.

The rewriting pass restructures arithmetic before isolation sees it, so
its contract is stronger than "each rewrite checked at apply time": the
*composed* ``("rewrite", "isolation")`` flow must leave every shipped
design observably equivalent to the original — serial and with a worker
pool — with no silent faults on the transformed netlist, and it must
strictly beat isolation alone where rewrites fire (the headline claim,
benchmarked in ``benchmarks/test_perf_rewrite.py``).
"""

from __future__ import annotations

import functools
import os

import pytest

import repro.designs as designs
from repro.core import IsolationConfig
from repro.opt import optimize
from repro.sim.compile import design_fingerprint
from repro.sim.stimulus import random_stimulus
from repro.verify import check_observable_equivalence
from repro.verify.faults import run_campaign

#: Every shipped design generator (mirrors tests/test_opt_equivalence.py).
MAKERS = [
    "paper_example",
    "design1",
    "design2",
    "fir_datapath",
    "alu_control_dominated",
    "shared_bus_datapath",
    "lookahead_pipeline",
    "correlated_chain",
    "cordic_pipeline",
    "soc_datapath",
    "random_datapath",
]

#: Designs where the rewriter provably fires (constant-coefficient
#: multipliers with sparse popcounts plus reassociable adder chains).
REWRITING_MAKERS = ["fir_datapath", "soc_datapath"]

CYCLES = 200
VERIFY_CYCLES = 400


def recipe(maker: str, workers: int):
    design = getattr(designs, maker)()
    config = IsolationConfig(cycles=CYCLES, engine="compiled", workers=workers)

    def stimulus():
        return random_stimulus(design, seed=1)

    return design, stimulus, config


@functools.lru_cache(maxsize=None)
def optimized(maker: str, workers: int, passes: tuple):
    """One optimize run per (design, workers, pass list), shared by tests."""
    design, stimulus, config = recipe(maker, workers)
    return design, stimulus, optimize(
        design, stimulus, passes=passes, config=config
    )


@pytest.mark.parametrize("maker", MAKERS)
def test_rewrite_isolate_is_observably_equivalent(maker):
    """Serial composed flow: outputs and register state are preserved,
    checked through the lockstep python/compiled rig."""
    design, stimulus, result = optimized(maker, 1, ("rewrite", "isolation"))
    report = check_observable_equivalence(
        design, result.design, stimulus(), VERIFY_CYCLES, engine="checked"
    )
    assert report.equivalent, report.mismatches[:3]


@pytest.mark.parametrize("maker", MAKERS)
def test_rewrite_isolate_is_observably_equivalent_pooled(maker):
    """The workers=2 scoring path transforms identically to serial."""
    _, _, serial = optimized(maker, 1, ("rewrite", "isolation"))
    design, stimulus, pooled = optimized(maker, 2, ("rewrite", "isolation"))
    assert design_fingerprint(pooled.design) == design_fingerprint(
        serial.design
    )
    report = check_observable_equivalence(
        design, pooled.design, stimulus(), VERIFY_CYCLES
    )
    assert report.equivalent, report.mismatches[:3]


@pytest.mark.parametrize("maker", REWRITING_MAKERS)
def test_rewrites_fire_and_beat_isolation_alone(maker):
    """Where constant multipliers exist, rewrite→isolate strictly beats
    isolation alone in final estimated power."""
    _, _, iso_only = optimized(maker, 1, ("isolation",))
    _, _, composed = optimized(maker, 1, ("rewrite", "isolation"))
    assert composed.targets_of("rewrite"), "expected rewrites to apply"
    assert composed.final.power_mw < iso_only.final.power_mw
    # Rewriting must not crowd isolation out entirely.
    assert composed.isolated_names


@pytest.mark.parametrize("maker", REWRITING_MAKERS)
def test_rewritten_netlist_fault_campaign_quick(maker):
    """No silent faults on the rewritten-then-isolated netlist."""
    _, _, result = optimized(maker, 1, ("rewrite", "isolation"))
    report = run_campaign(result.design, per_kind=1, cycles=150)
    assert report.outcomes, "campaign must evaluate at least one fault"
    assert report.silent == []
    assert report.detection_rate == 1.0


@pytest.mark.campaign
@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_CAMPAIGN"),
    reason="full campaign is CI-only; set REPRO_FULL_CAMPAIGN=1",
)
@pytest.mark.parametrize("maker", MAKERS)
def test_rewritten_netlist_fault_campaign_full(maker):
    _, _, result = optimized(maker, 1, ("rewrite", "isolation"))
    report = run_campaign(result.design, per_kind=4, cycles=400)
    assert report.silent == []
    assert report.detection_rate == 1.0
