"""Tests for the Section 2 baseline techniques."""

import pytest

from repro.baselines.enable_gating import enable_gating
from repro.baselines.guarded import control_function, guarded_evaluation
from repro.baselines.manual import manual_mux_isolation
from repro.boolean.bdd import BddManager
from repro.boolean.expr import and_, not_, or_, var
from repro.power.estimator import estimate_power
from repro.sim.stimulus import ControlStream, random_stimulus
from repro.verify import check_observable_equivalence


def equivalent_under(design, variant, seed=3, cycles=800, overrides=None):
    stim = random_stimulus(
        design, seed=seed, control_probability=0.3, overrides=overrides
    )
    return check_observable_equivalence(design, variant, stim, cycles).equivalent


class TestManualMuxIsolation:
    def test_isolates_only_mux_fed_modules(self, fig1):
        result = manual_mux_isolation(fig1)
        # a1 feeds muxes m0 and m2 exclusively; a0 feeds a register.
        assert result.isolated_names == ["a1"]

    def test_activation_is_local_select_or(self, fig1):
        result = manual_mux_isolation(fig1)
        instance = result.instances[0]
        manager = BddManager()
        # Local rule: selected by m0 (S0=0) OR by m2 (S2=1) — no enables.
        expected = or_(not_(var("S0")), var("S2"))
        assert manager.equivalent(instance.activation, expected)

    def test_weaker_than_full_activation(self, fig1):
        """The local rule over-approximates the true activation."""
        from repro.core import derive_activation_functions

        result = manual_mux_isolation(fig1)
        full = derive_activation_functions(fig1).of_module(fig1.cell("a1"))
        manager = BddManager()
        assert manager.implies(full, result.instances[0].activation)
        assert not manager.equivalent(full, result.instances[0].activation)

    def test_observably_equivalent(self, fig1):
        result = manual_mux_isolation(fig1)
        assert equivalent_under(fig1, result.design)

    def test_nothing_on_register_fed_design(self, bus):
        result = manual_mux_isolation(bus)
        assert result.isolated_names == []


class TestGuardedEvaluation:
    def test_finds_phase_strobes_in_design2(self, d2):
        result = guarded_evaluation(d2)
        assert "mul0" in result.guards
        # The found guard must be the module's own phase strobe.
        assert result.guards["mul0"].startswith("ph")

    def test_unguardable_without_existing_signal(self, fir):
        """FIR activation is ¬BYP; no existing net equals it."""
        result = guarded_evaluation(fir)
        assert result.isolated_names == []
        assert "fmul0" in result.unguardable

    def test_guard_is_safe(self, d2):
        """Every chosen guard satisfies f_c → g."""
        from repro.core import derive_activation_functions

        result = guarded_evaluation(d2)
        analysis = derive_activation_functions(d2)
        manager = BddManager()
        for module_name, guard_name in result.guards.items():
            f = analysis.of_module(d2.cell(module_name))
            from repro.baselines.guarded import _ground

            grounded_f = _ground(d2, f)
            grounded_g = _ground(d2, control_function(d2.net(guard_name)))
            assert manager.implies(grounded_f, grounded_g)

    def test_observably_equivalent(self, d2, bus):
        for design in (d2, bus):
            result = guarded_evaluation(design)
            assert equivalent_under(design, result.design)

    def test_control_function_expansion(self, alu):
        """Structural expansion sees through the FSM's gate logic."""
        f = control_function(alu.net("advance"))
        assert "is_idle" in f.support() or "GO" in f.support()


class TestEnableGating:
    def test_skips_shared_registers(self, bus):
        result = enable_gating(bus)
        assert result.gated == []
        assert result.skipped_shared or result.skipped_pi_fed

    def test_skips_pi_fed_operands(self, d1):
        result = enable_gating(d1)
        gated_modules = {module for _reg, module in result.gated}
        assert "mul0" not in gated_modules  # fed straight from PIs
        assert result.skipped_pi_fed

    def test_gates_exclusive_registers_in_fir(self, fir):
        result = enable_gating(fir)
        assert ("dly3", "fmul3") in result.gated

    def test_observably_equivalent(self, fir, d2):
        for design in (fir, d2):
            result = enable_gating(design)
            assert equivalent_under(design, result.design)

    def test_saves_less_than_operand_isolation_on_fir(self, fir):
        from repro.core import IsolationConfig, isolate_design

        overrides = {"BYP": ControlStream(0.9, 0.05)}

        def stim():
            return random_stimulus(fir, seed=4, overrides=overrides)

        base = estimate_power(fir, stim(), 1000).total_power_mw
        gated = estimate_power(enable_gating(fir).design, stim(), 1000).total_power_mw
        ours = isolate_design(fir, stim, IsolationConfig(cycles=500)).final.power_mw
        assert ours < gated < base * 1.02
