"""Tests for the multi-output divider and its pipeline integration."""

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import and_, not_, or_, var
from repro.core import IsolationConfig, derive_activation_functions, isolate_design
from repro.core.candidates import find_candidates
from repro.netlist.arith import Divider
from repro.netlist.builder import DesignBuilder
from repro.netlist import textio
from repro.netlist.design import Design
from repro.netlist.verilog import to_verilog
from repro.sim import ControlStream, random_stimulus
from repro.sim.engine import Simulator
from repro.verify import check_observable_equivalence


def divider_design(width=8):
    """Quotient and remainder consumed under different conditions."""
    b = DesignBuilder("divtest")
    x = b.input("X", width)
    y = b.input("Y", width)
    gq = b.input("GQ", 1)
    gr = b.input("GR", 1)
    quotient, remainder = b.divmod_(x, y, name="div0")
    b.output(b.register(quotient, enable=gq, name="r_q"), "Q")
    b.output(b.register(remainder, enable=gr, name="r_r"), "R")
    return b.build()


class TestDividerCell:
    def wired(self, width=8):
        d = Design("t")
        cell = d.add_cell(Divider("div"))
        for port in ("A", "B"):
            d.connect(cell, port, d.add_net(port.lower(), width))
        for port in ("Y", "R"):
            d.connect(cell, port, d.add_net(port.lower() + "o", width))
        return cell

    def test_divmod(self):
        cell = self.wired()
        out = cell.evaluate({"A": 23, "B": 5})
        assert out == {"Y": 4, "R": 3}

    def test_division_by_zero_convention(self):
        cell = self.wired()
        out = cell.evaluate({"A": 23, "B": 0})
        assert out["Y"] == 0xFF
        assert out["R"] == 23

    def test_two_outputs_declared(self):
        cell = Divider("d")
        assert cell.output_ports == ["Y", "R"]
        assert cell.is_datapath_module


class TestMultiOutputActivation:
    def test_activation_is_or_of_output_conditions(self):
        design = divider_design()
        analysis = derive_activation_functions(design)
        f = analysis.of_module(design.cell("div0"))
        assert BddManager().equivalent(f, or_(var("GQ"), var("GR")))

    def test_fanout_links_carry_source_net(self):
        b = DesignBuilder("chain")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g = b.input("G", 1)
        quotient, remainder = b.divmod_(x, y, name="div0")
        total = b.add(quotient, remainder, name="a0")
        b.output(b.register(total, enable=g, name="r0"), "OUT")
        design = b.build()
        candidates = find_candidates(design)
        div0 = next(c for c in candidates if c.name == "div0")
        nets = {link.source_net.name for link in div0.fanout}
        assert nets == {"div0_q", "div0_r"}

    def test_isolation_preserves_behaviour(self):
        design = divider_design()

        def stim():
            return random_stimulus(
                design,
                seed=9,
                overrides={
                    "GQ": ControlStream(0.2, 0.1),
                    "GR": ControlStream(0.2, 0.1),
                },
            )

        result = isolate_design(design, stim, IsolationConfig(cycles=500))
        assert "div0" in result.isolated_names
        assert result.power_reduction > 0.2
        report = check_observable_equivalence(design, result.design, stim(), 1500)
        assert report.equivalent

    def test_partial_consumption_keeps_module_live(self):
        """GQ high, GR low: the quotient path alone keeps div0 active."""
        design = divider_design()
        working = design.copy()
        analysis = derive_activation_functions(working)
        from repro.core.isolate import isolate_candidate

        isolate_candidate(
            working, working.cell("div0"),
            analysis.of_module(working.cell("div0")), "and",
        )
        sim = Simulator(working)
        settled = sim.step({"X": 23, "Y": 5, "GQ": 1, "GR": 0})
        assert settled[working.net("div0_q")] == 4
        assert settled[working.net("div0_r")] == 3  # computed together


class TestSerialisation:
    def test_textio_round_trip(self):
        design = divider_design()
        assert textio.loads(textio.dumps(design)).stats() == design.stats()

    def test_verilog_emits_both_outputs(self):
        text = to_verilog(divider_design())
        assert "/" in text and "%" in text
        assert "div0_q" in text and "div0_r" in text
