"""Tests for candidate identification and multiplexing functions (Section 4.1)."""

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import TRUE, and_, not_, var
from repro.core.candidates import find_candidates
from repro.core.isolate import isolate_candidate


def by_name(candidates, name):
    for c in candidates:
        if c.name == name:
            return c
    raise KeyError(name)


class TestFaninLinks:
    def test_paper_multiplexing_function(self, fig1):
        """g_{a0,B}^{a1} = S̄0·S1 — the paper's Section 4.1 example."""
        candidates = find_candidates(fig1)
        a0 = by_name(candidates, "a0")
        links = a0.fanin["B"]  # a0's B operand comes through m1/m0
        assert [l.source.name for l in links] == ["a1"]
        manager = BddManager()
        assert manager.equivalent(
            links[0].condition, and_(not_(var("S0")), var("S1"))
        )

    def test_environment_sources_tracked(self, fig1):
        candidates = find_candidates(fig1)
        a0 = by_name(candidates, "a0")
        env_nets = {e.net.name for e in a0.environment["B"]}
        assert "B" in env_nets and "C" in env_nets  # the mux alternatives
        direct = a0.environment["A"]
        assert [e.net.name for e in direct] == ["A"]
        assert direct[0].condition == TRUE

    def test_fanout_is_inverse_of_fanin(self, fig1):
        candidates = find_candidates(fig1)
        a1 = by_name(candidates, "a1")
        assert [l.sink.name for l in a1.fanout] == ["a0"]
        assert a1.fanout[0].port == "B"

    def test_duplicate_paths_merge_conditions(self):
        from repro.netlist.builder import DesignBuilder

        b = DesignBuilder("dup")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        s0 = b.input("S0", 1)
        s1 = b.input("S1", 1)
        g = b.input("G", 1)
        src = b.add(x, y, name="src")
        m0 = b.mux(s0, src, x, name="m0")
        m1 = b.mux(s1, m0, src, name="m1")  # src reachable two ways
        sink = b.add(m1, y, name="sink")
        b.output(b.register(sink, enable=g, name="r0"), "OUT")
        d = b.build()
        candidates = find_candidates(d)
        sink_cand = by_name(candidates, "sink")
        links = sink_cand.fanin["A"]
        assert len(links) == 1  # merged
        manager = BddManager()
        # src connected when (S1=0 and S0=0) or S1=1.
        expected = (and_(not_(var("S1")), not_(var("S0")))) | var("S1")
        assert manager.equivalent(links[0].condition, expected)


class TestCandidateFlags:
    def test_always_active_flag(self, fir):
        candidates = find_candidates(fir)
        # All FIR modules share activation !BYP: not always active.
        assert not by_name(candidates, "fmul0").always_active

    def test_isolable_bits(self, fig1):
        candidates = find_candidates(fig1)
        assert by_name(candidates, "a0").isolable_bits == 16  # two 8-bit operands

    def test_isolated_detection(self, fig1):
        working = fig1.copy()
        candidates = find_candidates(working)
        a1 = by_name(candidates, "a1")
        assert not a1.isolated
        isolate_candidate(working, working.cell("a1"), a1.activation, "and")
        again = find_candidates(working)
        assert by_name(again, "a1").isolated
        assert not by_name(again, "a0").isolated

    def test_block_assignment(self, d1):
        candidates = find_candidates(d1)
        mul0 = by_name(candidates, "mul0")
        mul1 = by_name(candidates, "mul1")
        add0 = by_name(candidates, "add0")
        sub0 = by_name(candidates, "sub0")
        # The two multipliers are in different blocks; add0/sub0 share one.
        assert mul0.block.index != mul1.block.index
        assert add0.block.index == sub0.block.index

    def test_candidates_deterministic_order(self, d2):
        first = [c.name for c in find_candidates(d2)]
        second = [c.name for c in find_candidates(d2)]
        assert first == second == sorted(first)

    def test_helper_accessors(self, fig1):
        candidates = find_candidates(fig1)
        a0 = by_name(candidates, "a0")
        assert a0.fanin_candidates("B") == [fig1.cell("a1")]
        a1 = by_name(candidates, "a1")
        assert a1.fanout_candidates() == [fig1.cell("a0")]
