"""Unit tests for the fluent DesignBuilder."""

import pytest

from repro.errors import NetlistError, ValidationError
from repro.netlist.builder import DesignBuilder


class TestBuilder:
    def test_quickstart_shape(self, tiny_design):
        assert tiny_design.stats()["cells"] == 8

    def test_all_arith_helpers(self):
        b = DesignBuilder("ops")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        outs = [
            b.add(x, y),
            b.sub(x, y),
            b.mul(x, y, width=8),
            b.compare(x, y, op="lt"),
            b.shift(x, y, direction="right"),
            b.mac(x, y, b.input("ACC", 16)),
        ]
        for i, net in enumerate(outs):
            b.output(b.register(net), f"O{i}")
        d = b.build()
        kinds = sorted(c.kind for c in d.datapath_modules)
        assert kinds == ["add", "cmp", "mac", "mul", "shift", "sub"]

    def test_all_gate_helpers(self):
        b = DesignBuilder("gates")
        x = b.input("X", 4)
        y = b.input("Y", 4)
        nets = [
            b.and_(x, y),
            b.or_(x, y),
            b.nand(x, y),
            b.nor(x, y),
            b.xor(x, y),
            b.xnor(x, y),
            b.not_(x),
            b.buf(y),
        ]
        for i, net in enumerate(nets):
            b.output(net, f"O{i}")
        d = b.build()
        assert len(d.combinational_cells) == 8

    def test_mux_with_many_inputs(self):
        b = DesignBuilder("m")
        s = b.input("S", 2)
        ins = [b.input(f"X{i}", 8) for i in range(4)]
        out = b.mux(s, *ins)
        b.output(out, "Y")
        d = b.build()
        assert d.cell(out.driver.cell.name).n_inputs == 4

    def test_mux_needs_two_inputs(self):
        b = DesignBuilder("m")
        s = b.input("S", 1)
        x = b.input("X", 8)
        with pytest.raises(NetlistError):
            b.mux(s, x)

    def test_const_and_latch(self):
        b = DesignBuilder("cl")
        g = b.input("G", 1)
        k = b.const(42, 8)
        out = b.latch(k, g)
        b.output(out, "Y")
        d = b.build()
        assert d.constants[0].value == 42

    def test_mul_default_output_width_is_sum(self):
        b = DesignBuilder("m")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        p = b.mul(x, y)
        assert p.width == 16

    def test_build_validates(self):
        b = DesignBuilder("bad")
        b.input("X", 8)  # dangling net: no readers
        with pytest.raises(ValidationError):
            b.build()

    def test_build_can_skip_validation(self):
        b = DesignBuilder("bad")
        b.input("X", 8)
        d = b.build(validate=False)
        assert d.has_net("X")

    def test_register_reset_value(self):
        b = DesignBuilder("r")
        x = b.input("X", 8)
        q = b.register(x, reset_value=7, name="r0")
        b.output(q, "Y")
        d = b.build()
        assert d.cell("r0").reset_value == 7
