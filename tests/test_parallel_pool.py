"""WorkerPool semantics: degradation, error propagation, accounting.

The acceptance-critical behaviour: a pool crash mid-run degrades to
serial execution, the run still completes with correct results, and the
reason is recorded (``ParallelReport.fallback_reason`` /
``StageTimings.pool_fallback_reason``) — mirroring the compiled-engine
degradation story of PR 2.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os

import pytest

from repro.core.algorithm import IsolationConfig, isolate_design
from repro.designs import design1
from repro.errors import ReproError
from repro.parallel import WorkerPool, available_cpus, default_workers, resolve_workers
from repro.sim.stimulus import random_stimulus


# Module-level worker functions (pool workers must be picklable).
def _double(x):
    return 2 * x


def _crash_in_child(x):
    # Kill only the *worker* process; when the degraded pool reruns the
    # task inline (in the parent), it succeeds.
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    return 2 * x


def _raise_repro_error(x):
    raise ReproError(f"task {x} is broken")


class TestWorkersResolution:
    def test_one_means_serial(self):
        pool = WorkerPool(1)
        assert pool.workers == 1 and not pool.active

    def test_zero_means_auto(self):
        assert resolve_workers(0) == available_cpus() >= 1
        assert WorkerPool(0).workers == available_cpus()

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_workers(-1)

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert default_workers() == 0
        monkeypatch.setenv("REPRO_WORKERS", "nonsense")
        assert default_workers() == 1

    def test_configs_pick_up_env_default(self, monkeypatch):
        from repro.runconfig import RunConfig

        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert RunConfig().workers == 2
        assert IsolationConfig().workers == 2
        monkeypatch.delenv("REPRO_WORKERS")
        assert RunConfig().workers == 1


class TestPoolExecution:
    def test_map_preserves_payload_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(_double, list(range(8))) == [2 * i for i in range(8)]
        assert pool.fallback_reason is None

    def test_single_payload_runs_inline(self):
        pool = WorkerPool(4)
        assert pool.map(_double, [21]) == [42]
        assert pool._executor is None  # no pool spun up for one task

    def test_crash_degrades_to_serial_with_reason(self):
        with WorkerPool(2) as pool:
            values = pool.map(_crash_in_child, [1, 2, 3])
        # Results are still correct (rerun inline after the crash) and
        # the degradation is recorded, permanently.
        assert values == [2, 4, 6]
        assert pool.fallback_reason is not None
        assert "degraded to serial" in pool.fallback_reason
        assert not pool.active
        assert pool.map(_double, [5, 6]) == [10, 12]  # inline from now on
        assert pool.report().fallback_reason == pool.fallback_reason

    def test_repro_error_propagates(self):
        # A task-level error is not an infrastructure failure: no
        # degradation, the error reaches the caller as on any backend.
        with WorkerPool(2) as pool:
            with pytest.raises(ReproError, match="is broken"):
                pool.map(_raise_repro_error, [1, 2])

    def test_accounting(self):
        with WorkerPool(2) as pool:
            pool.map(_double, [1, 2, 3, 4])
        report = pool.report()
        assert report.workers == 2
        assert report.tasks == 4
        assert len(report.task_seconds) == 4
        assert report.wall_seconds > 0
        assert 0.0 <= report.utilization <= 1.0
        payload = report.to_dict()
        assert payload["tasks"] == 4 and "fallback_reason" not in payload


class TestIsolateDesignDegradation:
    def test_pool_failure_recorded_in_stage_timings(self, monkeypatch):
        """isolate_design under a broken pool == serial run + a recorded reason."""
        design = design1()
        stim = lambda: random_stimulus(design, seed=4)
        config = IsolationConfig(style="and", cycles=120, warmup=8)

        serial = isolate_design(design, stim, config)

        def broken_pool_map(self, fn, payloads):
            raise RuntimeError("injected pool fault")

        monkeypatch.setattr(WorkerPool, "_pool_map", broken_pool_map)
        import dataclasses

        degraded = isolate_design(
            design, stim, dataclasses.replace(config, workers=2)
        )

        assert degraded.isolated_names == serial.isolated_names
        assert degraded.power_reduction == serial.power_reduction
        assert degraded.timings.pool_fallback_reason is not None
        assert "injected pool fault" in degraded.timings.pool_fallback_reason
        assert "pool_fallback_reason" in degraded.timings.to_dict()
        assert "scoring pool degraded" in degraded.summary()

    def test_healthy_pool_reports_no_fallback(self):
        design = design1()
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=4),
            IsolationConfig(style="and", cycles=120, warmup=8, workers=2),
        )
        assert result.timings.pool_fallback_reason is None
        assert result.timings.workers == 2
        assert result.timings.parallel_tasks > 0
        payload = result.timings.to_dict()
        assert payload["workers"] == 2
        assert payload["parallel"]["tasks"] == result.timings.parallel_tasks
        assert 0.0 <= payload["parallel"]["utilization"] <= 1.0


class TestCliWorkersFlag:
    def test_parse_workers_values(self):
        from repro.cli import _parse_workers

        assert _parse_workers("auto") == 0
        assert _parse_workers("4") == 4
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_workers("-2")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_workers("two")

    def test_workers_flag_reaches_config(self):
        from repro.cli import _config_from, build_parser

        args = build_parser().parse_args(
            ["isolate", "--builtin", "design1", "--workers", "3"]
        )
        assert _config_from(args).workers == 3

    def test_workers_flag_defaults_to_env(self, monkeypatch):
        from repro.cli import _config_from, build_parser

        monkeypatch.setenv("REPRO_WORKERS", "2")
        args = build_parser().parse_args(["isolate", "--builtin", "design1"])
        assert _config_from(args).workers == 2


def test_invalid_workers_rejected_by_configs():
    from repro.errors import IsolationError
    from repro.runconfig import RunConfig

    with pytest.raises(ReproError):
        RunConfig(workers=-1)
    with pytest.raises(IsolationError):
        IsolationConfig(workers=-2)

class TestPoolRestartAndPids:
    """Supervisor hooks: heal a degraded pool, enumerate live workers."""

    def test_restart_clears_degradation_and_counts(self):
        from repro import obs

        recorder = obs.Recorder()
        pool = WorkerPool(2)
        pool.fallback_reason = "worker crashed earlier"
        with obs.use(recorder):
            pool.restart()
        assert pool.fallback_reason is None
        assert pool._executor is None
        assert recorder.metrics.counter("pool.restarts").value == 1.0
        # A healed pool goes back to real pool execution on the next map.
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert pool.fallback_reason is None
        pool.close()

    def test_restart_on_healthy_pool_is_not_counted(self):
        from repro import obs

        recorder = obs.Recorder()
        with WorkerPool(2) as pool:
            pool.map(_double, [1, 2])
            with obs.use(recorder):
                pool.restart()
        assert recorder.metrics.counter("pool.restarts").value == 0.0

    def test_pids_empty_when_lazy_or_inline(self):
        pool = WorkerPool(2)
        assert pool.pids() == []  # no executor yet
        pool.map(_double, [7])  # single payload stays inline
        assert pool.pids() == []

    def test_pids_reports_live_workers(self):
        with WorkerPool(2) as pool:
            pool.map(_double, [1, 2, 3, 4])
            pids = pool.pids()
            assert len(pids) >= 1
            assert all(isinstance(p, int) and p > 0 for p in pids)
            assert pids == sorted(pids)
            assert os.getpid() not in pids
        assert pool.pids() == []  # closed pool has no workers


class TestPoolTeardown:
    """close() must surface shutdown failures, not swallow them."""

    class _PoisonedExecutor:
        def shutdown(self, *args, **kwargs):
            raise OSError("wedged worker process")

    def test_poisoned_shutdown_recorded(self):
        from repro import obs

        recorder = obs.Recorder()
        pool = WorkerPool(2)
        pool._executor = self._PoisonedExecutor()
        with obs.use(recorder):
            pool.close()
        assert pool.fallback_reason is not None
        assert "wedged worker process" in pool.fallback_reason
        assert "OSError" in pool.fallback_reason
        assert pool.report().fallback_reason == pool.fallback_reason
        assert recorder.metrics.counter("pool.teardown_errors").value == 1.0

    def test_teardown_failure_does_not_mask_earlier_reason(self):
        pool = WorkerPool(2)
        pool.fallback_reason = "earlier degradation"
        pool._executor = self._PoisonedExecutor()
        pool.close()  # no recorder active: still must not raise or overwrite
        assert pool.fallback_reason == "earlier degradation"

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool._executor = self._PoisonedExecutor()
        pool.close()
        first = pool.fallback_reason
        pool.close()  # executor already detached: nothing to re-fail
        assert pool.fallback_reason == first

    def test_clean_close_records_nothing(self):
        with WorkerPool(2) as pool:
            pool.map(_double, [1, 2, 3])
        assert pool.fallback_reason is None
        assert pool._executor is None
