"""Tests for VCD export."""

from repro.sim.engine import simulate
from repro.sim.stimulus import SequenceStimulus
from repro.sim.vcd import VcdMonitor, _identifier


class TestIdentifiers:
    def test_unique_short_codes(self):
        codes = {_identifier(i) for i in range(500)}
        assert len(codes) == 500

    def test_first_codes_single_char(self):
        assert _identifier(0) == "!"
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestVcdMonitor:
    def run(self, tiny_design, vectors, nets=None):
        monitor = VcdMonitor(nets=nets)
        simulate(tiny_design, SequenceStimulus(vectors), len(vectors), monitors=[monitor])
        return monitor

    def test_header_structure(self, tiny_design):
        monitor = self.run(
            tiny_design, [{"A": 1, "C": 2, "S": 0, "G": 1}] * 2
        )
        text = monitor.dumps()
        assert "$timescale 1 ns $end" in text
        assert "$scope module tiny $end" in text
        assert "$enddefinitions $end" in text
        assert text.count("$var wire") == len(tiny_design.nets) + 1  # + clk

    def test_value_changes_recorded(self, tiny_design):
        vectors = [
            {"A": 0, "C": 0, "S": 0, "G": 0},
            {"A": 5, "C": 0, "S": 0, "G": 0},
            {"A": 5, "C": 0, "S": 0, "G": 0},
        ]
        monitor = self.run(tiny_design, vectors, nets=[tiny_design.net("A")])
        text = monitor.dumps()
        assert "b101 !" in text  # A changes to 5
        # No further change events after cycle 1 for A.
        assert text.count("b101 !") == 1

    def test_one_bit_signals_scalar_format(self, tiny_design):
        vectors = [
            {"A": 0, "C": 0, "S": 0, "G": 0},
            {"A": 0, "C": 0, "S": 1, "G": 0},
        ]
        monitor = self.run(tiny_design, vectors, nets=[tiny_design.net("S")])
        text = monitor.dumps()
        assert "1!" in text

    def test_clock_toggles_per_cycle(self, tiny_design):
        monitor = self.run(
            tiny_design,
            [
                {"A": 0, "C": 0, "S": 0, "G": 0},
                {"A": 1, "C": 0, "S": 0, "G": 0},
                {"A": 2, "C": 0, "S": 0, "G": 0},
            ],
        )
        text = monitor.dumps()
        assert "#0\n1clk" in text
        assert "0clk" in text

    def test_save(self, tiny_design, tmp_path):
        monitor = self.run(tiny_design, [{"A": 1, "C": 2, "S": 0, "G": 1}] * 2)
        path = tmp_path / "wave.vcd"
        monitor.save(str(path))
        assert path.read_text().startswith("$date")
