"""Chaos-harness primitives: state-dir attacks and report invariants.

The full subprocess campaign (``repro chaos``) runs in CI's chaos-smoke
job; these tests pin the harness's building blocks deterministically:
the journal-tearing and blob-flipping helpers must damage exactly what
they claim to, the offline scanner must see the damage, and
:class:`ChaosReport.ok` must refuse to pass a campaign that lost a job
or served a corrupted result.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ReproError
from repro.serve import DiskResultCache, Journal
from repro.verify.chaos import (
    ChaosReport,
    corrupt_blob,
    scan_state_dir,
    truncate_journal,
)


def _state_dir_with_journal(tmp_path, records):
    journal = Journal(str(tmp_path / "journal.jsonl"), fsync=False)
    for type_, job_id in records:
        journal.append(type_, job_id)
    journal.close()
    return str(tmp_path)


class TestTruncateJournal:
    def test_tears_only_the_last_record(self, tmp_path):
        state_dir = _state_dir_with_journal(
            tmp_path, [("submit", "j1"), ("start", "j1"), ("finish", "j1")]
        )
        torn = truncate_journal(state_dir)
        assert torn["torn_record"]["type"] == "finish"
        records, corrupt = Journal.read(os.path.join(state_dir, "journal.jsonl"))
        assert [r["type"] for r in records] == ["submit", "start"]
        assert corrupt <= 1  # the torn fragment, if any survived the cut

    def test_explicit_offset(self, tmp_path):
        state_dir = _state_dir_with_journal(tmp_path, [("submit", "j1")])
        torn = truncate_journal(state_dir, offset=0)
        assert torn["offset"] == 0
        assert os.path.getsize(os.path.join(state_dir, "journal.jsonl")) == 0

    def test_empty_journal_is_a_noop(self, tmp_path):
        (tmp_path / "journal.jsonl").write_text("")
        torn = truncate_journal(str(tmp_path))
        assert torn == {"offset": 0, "torn_record": None}


class TestCorruptBlob:
    def test_flips_one_byte_and_the_cache_detects_it(self, tmp_path):
        cache_root = str(tmp_path / "cache")
        cache = DiskResultCache(cache_root, capacity=4)
        cache.put("feedface" * 8, {"value": 7})
        before = open(cache._blob_path("feedface" * 8), "rb").read()
        hit = corrupt_blob(str(tmp_path))
        assert hit["key"] == "feedface" * 8
        after = open(hit["path"], "rb").read()
        assert len(before) == len(after)
        assert sum(a != b for a, b in zip(before, after)) == 1
        # A fresh cache must detect the damage and refuse to serve it.
        found, _ = DiskResultCache(cache_root, capacity=4).get("feedface" * 8)
        assert not found
        scan = scan_state_dir(str(tmp_path))
        assert scan["blobs"] == 0 and scan["quarantined"] == 1

    def test_no_blobs_raises(self, tmp_path):
        os.makedirs(tmp_path / "cache" / "blobs", exist_ok=True)
        with pytest.raises(ReproError):
            corrupt_blob(str(tmp_path))


class TestScan:
    def test_counts_records_blobs_and_damage(self, tmp_path):
        state_dir = _state_dir_with_journal(
            tmp_path, [("submit", "j1"), ("finish", "j1")]
        )
        DiskResultCache(os.path.join(state_dir, "cache"), capacity=4).put(
            "abcd", {"v": 1}
        )
        scan = scan_state_dir(state_dir)
        assert scan == {
            "journal_records": 2,
            "corrupt_lines": 0,
            "blobs": 1,
            "quarantined": 0,
        }


class TestChaosReport:
    def test_clean_campaign_is_ok(self):
        report = ChaosReport(
            acknowledged=5, completed=4, failed_with_diagnostic=1,
            blob_corruptions=1, corruptions_detected=2,
            cache_hit_preserved=True,
        )
        assert report.ok
        assert "OK" in report.summary()
        assert json.loads(json.dumps(report.to_dict()))["ok"] is True

    def test_lost_job_fails_the_campaign(self):
        assert not ChaosReport(lost_jobs=["j7"]).ok

    def test_silent_corruption_fails_the_campaign(self):
        assert not ChaosReport(silent_corruptions=["j3"]).ok

    def test_undiagnosed_failure_fails_the_campaign(self):
        assert not ChaosReport(undiagnosed_failures=["j9"]).ok

    def test_undetected_blob_corruption_fails_the_campaign(self):
        report = ChaosReport(blob_corruptions=2, corruptions_detected=1)
        assert not report.ok

    def test_lost_cache_hit_rate_fails_the_campaign(self):
        assert not ChaosReport(cache_hit_preserved=False).ok
        assert ChaosReport(cache_hit_preserved=None).ok  # nothing to probe
