"""Fault-injection campaign: every fault is caught or provably benign."""

import os

import pytest

from repro.designs import design1, design2, fir_datapath, paper_example
from repro.diagnostics import Diagnostic
from repro.errors import EquivalenceError, FaultInjectionError, IsolationError, ReproError
from repro.netlist.validate import validate_design, validation_problems
from repro.verify import faults as faults_mod
from repro.verify.faults import (
    DETECTORS,
    FAULT_KINDS,
    CampaignReport,
    FaultOutcome,
    FaultSpec,
    campaign_diagnostics,
    enumerate_faults,
    evaluate_fault,
    inject_fault,
    run_campaign,
)


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def test_enumeration_is_deterministic():
    a = enumerate_faults(design1())
    b = enumerate_faults(design1())
    assert a == b
    assert a, "expected at least one enumerated fault"


def test_enumeration_covers_all_kinds_on_design1():
    kinds = {spec.kind for spec in enumerate_faults(design1())}
    assert kinds == set(FAULT_KINDS)


def test_enumeration_respects_per_kind():
    specs = enumerate_faults(design1(), per_kind=1)
    per_kind = {}
    for spec in specs:
        per_kind[spec.kind] = per_kind.get(spec.kind, 0) + 1
    assert all(count == 1 for count in per_kind.values())


# ----------------------------------------------------------------------
# Injection
# ----------------------------------------------------------------------
def test_injection_never_touches_the_original():
    design = design1()
    before = design.stats()
    for spec in enumerate_faults(design):
        inject_fault(design, spec)
    assert design.stats() == before
    validate_design(design)  # still pristine


def test_unknown_kind_is_injector_misuse():
    with pytest.raises(FaultInjectionError):
        inject_fault(design1(), FaultSpec("teleport-net"))


def test_disconnect_pin_caught_by_validation():
    design = design1()
    spec = next(
        s for s in enumerate_faults(design) if s.kind == "disconnect-pin"
    )
    outcome = evaluate_fault(design, spec, cycles=50)
    assert outcome.detected_by == "validation"
    assert "unconnected" in outcome.detail or "no driver" in outcome.detail


def test_corrupt_width_caught_by_validation():
    design = design1()
    spec = next(s for s in enumerate_faults(design) if s.kind == "corrupt-width")
    faulted = inject_fault(design, spec)
    codes = {p.code for p in validation_problems(faulted, allow_dangling=True)}
    assert "width-mismatch" in codes


def test_comb_loop_caught_by_validation():
    design = design1()
    spec = next(s for s in enumerate_faults(design) if s.kind == "comb-loop")
    faulted = inject_fault(design, spec)
    codes = {p.code for p in validation_problems(faulted, allow_dangling=True)}
    assert "comb-loop" in codes


def test_stuck_at_caught_by_equivalence():
    design = design1()
    specs = [s for s in enumerate_faults(design) if s.kind.startswith("stuck-at")]
    assert specs
    outcomes = [evaluate_fault(design, s, cycles=200) for s in specs]
    assert all(not o.silent for o in outcomes)
    assert any(o.detected_by == "equivalence" for o in outcomes)


def test_activation_flip_is_never_silent():
    design = design2()
    specs = [s for s in enumerate_faults(design) if s.kind == "activation-flip"]
    assert specs
    for spec in specs:
        outcome = evaluate_fault(design, spec, cycles=200)
        assert not outcome.silent, str(outcome)


def test_constant_true_activation_rejected_typed():
    # Flipping can drive an activation to constant TRUE; the isolation
    # transform must reject that with a typed IsolationError.
    from repro.boolean.expr import TRUE
    from repro.core.isolate import isolate_candidate

    design = design1()
    module = design.datapath_modules[0]
    with pytest.raises(IsolationError):
        isolate_candidate(design, module, TRUE)


# ----------------------------------------------------------------------
# Outcome taxonomy
# ----------------------------------------------------------------------
def test_untyped_exception_is_classified_silent(monkeypatch):
    design = paper_example()

    def explode(*args, **kwargs):
        raise RuntimeError("synthetic untyped crash")

    monkeypatch.setattr(faults_mod, "check_observable_equivalence", explode)
    spec = next(
        s for s in enumerate_faults(design) if s.kind.startswith("stuck-at")
    )
    outcome = evaluate_fault(design, spec, cycles=20)
    assert outcome.silent
    assert "untyped RuntimeError" in outcome.detail
    assert "SILENT" in str(outcome)


def test_typed_error_during_cosim_is_detected(monkeypatch):
    design = paper_example()

    def typed(*args, **kwargs):
        raise EquivalenceError("synthetic typed failure")

    monkeypatch.setattr(faults_mod, "check_observable_equivalence", typed)
    spec = next(
        s for s in enumerate_faults(design) if s.kind.startswith("stuck-at")
    )
    outcome = evaluate_fault(design, spec, cycles=20)
    assert outcome.detected_by == "typed-error"


def test_outcome_properties():
    spec = FaultSpec("stuck-at-1", net="EN", value=1)
    assert "stuck-at-1" in spec.describe() and "EN" in spec.describe()
    detected = FaultOutcome(spec, detected_by="equivalence", detail="x")
    masked = FaultOutcome(spec, masked=True)
    silent = FaultOutcome(spec)
    assert not detected.silent and not masked.silent and silent.silent
    report = CampaignReport("d", [detected, masked, silent])
    assert report.detected == [detected]
    assert report.masked == [masked]
    assert report.silent == [silent]
    assert report.detection_rate == 0.5  # 1 detected of 2 non-masked
    assert "SILENT" in report.summary()


def test_campaign_diagnostics_render_silent_faults():
    spec = FaultSpec("stuck-at-0", net="EN", value=0)
    report = CampaignReport("d", [FaultOutcome(spec)])
    diags = campaign_diagnostics(report)
    assert len(diags) == 1
    assert isinstance(diags[0], Diagnostic)
    assert diags[0].code == "silent-fault"
    assert diags[0].severity == "error"
    clean = CampaignReport("d", [FaultOutcome(spec, detected_by="validation")])
    assert campaign_diagnostics(clean) == []


# ----------------------------------------------------------------------
# The acceptance bar: zero silent faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("maker", [paper_example, design1, fir_datapath])
def test_campaign_zero_silent_fast(maker):
    report = run_campaign(maker(), per_kind=1, cycles=150)
    assert report.outcomes, "campaign must exercise at least one fault"
    assert report.silent == [], report.summary()
    assert report.detection_rate == 1.0


@pytest.mark.campaign
@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_CAMPAIGN"),
    reason="full campaign is CI-only (set REPRO_FULL_CAMPAIGN=1)",
)
def test_campaign_zero_silent_all_designs():
    import repro.designs as designs

    makers = [
        designs.paper_example,
        designs.design1,
        designs.design2,
        designs.fir_datapath,
        designs.alu_control_dominated,
        designs.shared_bus_datapath,
        designs.lookahead_pipeline,
        designs.correlated_chain,
        designs.cordic_pipeline,
        designs.soc_datapath,
    ]
    for maker in makers:
        report = run_campaign(maker(), per_kind=2, cycles=300)
        assert report.outcomes, maker.__name__
        assert report.silent == [], report.summary()
        assert report.detection_rate == 1.0, report.summary()
