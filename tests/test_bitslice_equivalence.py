"""Cross-engine differential rig: reference vs compiled vs bitslice.

Every downstream number (candidate scoring, CI estimation, serve
throughput) flows through per-net toggle counts, so the bit-sliced
kernel is held to *byte-identical* results — toggle counts, ones
counts and final register state — against both the reference
interpreter and the compiled engine, over all shipped designs, over
hypothesis-generated random netlists/stimulus parameters, and at lane
widths {1, 7, 64, 200} in batch form.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import (
    alu_control_dominated,
    cordic_pipeline,
    correlated_chain,
    design1,
    design2,
    fir_datapath,
    lookahead_pipeline,
    paper_example,
    random_datapath,
    shared_bus_datapath,
    soc_datapath,
)
from repro.errors import SimulationError
from repro.netlist.builder import DesignBuilder
from repro.runconfig import ENGINES, RunConfig
from repro.sim import (
    BatchRandomStimulus,
    BatchSimulator,
    BatchToggleMonitor,
    BitsliceSimulator,
    CheckedSimulator,
    Simulator,
    ToggleMonitor,
    make_simulator,
    random_stimulus,
)
from repro.sim.bitslice import MAX_SLICE_WIDTH
from repro.verify.faults import run_campaign

SHIPPED_DESIGNS = [
    paper_example,
    design1,
    design2,
    fir_datapath,
    alu_control_dominated,
    shared_bus_datapath,
    lookahead_pipeline,
    correlated_chain,
    cordic_pipeline,
    soc_datapath,
    lambda: random_datapath(seed=0),
]
IDS = [getattr(m, "__name__", "random_dp") for m in SHIPPED_DESIGNS]

#: The lane widths the acceptance criteria pin down (1 = degenerate
#: scalar lanes, 7 = every word ragged, 64 = native, 200 = multi-lane
#: words wider than the machine word).
LANE_WIDTHS = (1, 7, 64, 200)

CYCLES = 60
WARMUP = 6


def _scalar_stats(design, engine, seed):
    monitor = ToggleMonitor()
    sim = make_simulator(design, engine)
    assert sim.fallback_reason is None
    sim.run(random_stimulus(design, seed=seed), CYCLES, monitors=[monitor],
            warmup=WARMUP)
    return (
        {net.name: count for net, count in monitor.toggles.items()},
        {net.name: count for net, count in monitor.ones.items()},
        dict(sim.state_items()),
    )


# ----------------------------------------------------------------------
# Scalar engine: all shipped designs, three engines, identical results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_design", SHIPPED_DESIGNS, ids=IDS)
def test_bitslice_matches_reference_and_compiled(make_design):
    design = make_design()
    ref_toggles, ref_ones, ref_state = _scalar_stats(design, "python", seed=11)
    for engine in ("compiled", "bitslice"):
        toggles, ones, state = _scalar_stats(design, engine, seed=11)
        assert toggles == ref_toggles, engine
        assert ones == ref_ones, engine
        assert state == ref_state, engine


@pytest.mark.parametrize("make_design", SHIPPED_DESIGNS, ids=IDS)
def test_checked_subject_bitslice_all_designs(make_design):
    """engine="checked" lockstep with the bitslice subject never trips."""
    design = make_design()
    checked = CheckedSimulator(design, check_interval=16, subject="bitslice")
    assert isinstance(checked.compiled, BitsliceSimulator)
    checked.run(random_stimulus(design, seed=3), CYCLES, warmup=WARMUP)
    assert checked.checks_performed >= (CYCLES + WARMUP) // 16


# ----------------------------------------------------------------------
# Batch engine: lane widths {1, 7, 64, 200}, bit-exact vs compiled
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_design", SHIPPED_DESIGNS, ids=IDS)
@pytest.mark.parametrize("lane_width", LANE_WIDTHS)
def test_batch_bitslice_lane_widths(make_design, lane_width):
    design = make_design()
    batch = 10  # ragged vs 7 and 64? no — ragged vs 7; sub-word vs 64/200
    ref = BatchSimulator(design, batch_size=batch, engine="compiled")
    mon_ref = BatchToggleMonitor()
    ref.run(BatchRandomStimulus(design, batch, seed=21), CYCLES,
            monitors=[mon_ref], warmup=WARMUP)

    sliced = BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    )
    assert sliced.fallback_reason is None
    assert sliced.lane_width == lane_width
    mon_bs = BatchToggleMonitor()
    sliced.run(BatchRandomStimulus(design, batch, seed=21), CYCLES,
               monitors=[mon_bs], warmup=WARMUP)

    assert mon_ref.cycles == mon_bs.cycles
    for net in mon_ref.toggles:
        np.testing.assert_array_equal(
            mon_ref.toggles[net], mon_bs.toggles[net], err_msg=net.name
        )
    # Final architectural state, materialised from the planes.
    ref_ck = ref.checkpoint()
    bs_ck = sliced.checkpoint()
    for cell, arr in ref_ck.state.items():
        np.testing.assert_array_equal(arr, bs_ck.state[cell], err_msg=cell.name)
    for net, arr in ref_ck.values.items():
        np.testing.assert_array_equal(arr, bs_ck.values[net], err_msg=net.name)


# ----------------------------------------------------------------------
# Hypothesis: random netlists (via random_datapath's generator space)
# and random stimulus parameters
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    design_seed=st.integers(min_value=0, max_value=2**16),
    stim_seed=st.integers(min_value=0, max_value=2**16),
    layers=st.integers(min_value=1, max_value=3),
    width=st.integers(min_value=2, max_value=12),
    registered=st.booleans(),
)
def test_random_netlists_scalar_equivalence(
    design_seed, stim_seed, layers, width, registered
):
    design = random_datapath(
        seed=design_seed,
        layers=layers,
        modules_per_layer=2,
        width=width,
        registered_controls=registered,
    )
    ref_toggles, ref_ones, ref_state = _scalar_stats(design, "python", stim_seed)
    bs_toggles, bs_ones, bs_state = _scalar_stats(design, "bitslice", stim_seed)
    assert bs_toggles == ref_toggles
    assert bs_ones == ref_ones
    assert bs_state == ref_state


@settings(max_examples=6, deadline=None)
@given(
    design_seed=st.integers(min_value=0, max_value=2**16),
    stim_seed=st.integers(min_value=0, max_value=2**16),
    batch=st.integers(min_value=1, max_value=30),
    lane_width=st.sampled_from(LANE_WIDTHS),
)
def test_random_netlists_batch_equivalence(
    design_seed, stim_seed, batch, lane_width
):
    design = random_datapath(seed=design_seed, layers=2, modules_per_layer=2)
    mon_ref = BatchToggleMonitor()
    BatchSimulator(design, batch_size=batch, engine="python").run(
        BatchRandomStimulus(design, batch, seed=stim_seed), 30,
        monitors=[mon_ref], warmup=3,
    )
    mon_bs = BatchToggleMonitor()
    BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    ).run(
        BatchRandomStimulus(design, batch, seed=stim_seed), 30,
        monitors=[mon_bs], warmup=3,
    )
    for net in mon_ref.toggles:
        np.testing.assert_array_equal(
            mon_ref.toggles[net], mon_bs.toggles[net], err_msg=net.name
        )


# ----------------------------------------------------------------------
# Fault campaign under engine="bitslice": zero silent faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "make_design", [paper_example, design1, fir_datapath],
    ids=["paper_example", "design1", "fir_datapath"],
)
def test_fault_campaign_bitslice_no_silent_faults(make_design):
    design = make_design()
    report = run_campaign(design, per_kind=1, cycles=80, engine="bitslice")
    assert report.outcomes, "campaign must evaluate at least one fault"
    assert report.silent == [], [str(o) for o in report.silent]


# ----------------------------------------------------------------------
# Degradation: unsupported constructs fall back with fallback_reason
# ----------------------------------------------------------------------
def _design_with_wide_net():
    builder = DesignBuilder("wide_net")
    a = builder.input("A", MAX_SLICE_WIDTH + 1)
    y = builder.buf(a, name="Y")
    builder.output(y, "OUT")
    return builder.build()


def test_scalar_degrades_to_compiled_with_reason():
    design = _design_with_wide_net()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sim = make_simulator(design, "bitslice")
    assert sim.fallback_reason is not None
    assert "bitslice" in str(caught[0].message)
    assert "compiled" in str(caught[0].message)
    # The stand-in still simulates correctly.
    ref = Simulator(design)
    stim = random_stimulus(design, seed=1)
    sim.run(stim, 10)
    ref.run(random_stimulus(design, seed=1), 10)
    for net in design.nets:
        assert sim.values[net] == ref.values[net]


def test_runconfig_accepts_bitslice():
    assert "bitslice" in ENGINES
    cfg = RunConfig(engine="bitslice")
    assert cfg.engine == "bitslice"
    # fingerprint covers the engine, so cached results can't cross over
    assert cfg.fingerprint() != RunConfig(engine="compiled").fingerprint()


def test_batch_rejects_lane_width_for_other_engines():
    with pytest.raises(SimulationError):
        BatchSimulator(design1(), batch_size=4, engine="python", lane_width=8)


def test_batch_rejects_checked_engine():
    with pytest.raises(SimulationError):
        BatchSimulator(design1(), batch_size=4, engine="checked")


def test_checked_rejects_unknown_subject():
    from repro.errors import EquivalenceError

    with pytest.raises(EquivalenceError):
        CheckedSimulator(design1(), subject="fpga")
