"""`optimize(passes=["isolation"])` is bit-identical to `isolate_design`.

The redesign moved Algorithm 1's greedy loop out of
``repro.core.algorithm`` into the pass-agnostic ``repro.opt.optimize``;
``isolate_design`` is now a thin wrapper. These tests pin the contract
that made the refactor safe: for every shipped design, running the
isolation pass alone through the new loop produces *exactly* the legacy
result — same scores, same iteration records, same transformed netlist
— with the serial path and with a worker pool.
"""

from __future__ import annotations

import json

import pytest

import repro.designs as designs
from repro.core import IsolationConfig
from repro.opt import optimize
from repro.sim.compile import design_fingerprint
from repro.sim.stimulus import random_stimulus

#: Every shipped design generator.
MAKERS = [
    "paper_example",
    "design1",
    "design2",
    "fir_datapath",
    "alu_control_dominated",
    "shared_bus_datapath",
    "lookahead_pipeline",
    "correlated_chain",
    "cordic_pipeline",
    "soc_datapath",
    "random_datapath",
]

#: Denser designs get the pooled-scoring path exercised too.
POOLED_MAKERS = ["design1", "fir_datapath", "soc_datapath"]


def run_both(maker: str, workers: int):
    """One legacy run and one pass-framework run on identical inputs."""
    design = getattr(designs, maker)()
    config = IsolationConfig(cycles=200, engine="compiled", workers=workers)

    def stimulus():
        return random_stimulus(design, seed=1)

    # Import here: the wrapper must stay importable from its legacy home.
    from repro.core.algorithm import isolate_design

    legacy = isolate_design(design, stimulus, config)
    modern = optimize(
        design,
        stimulus,
        passes=("isolation",),
        config=config,
        _working_name=f"{design.name}_iso_{config.style}",
        _root_span="isolate",
    ).to_isolation_result()
    return legacy, modern


def canonical(result) -> str:
    payload = result.to_dict()
    payload.pop("timings")  # wall-clock, legitimately differs
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("maker", MAKERS)
def test_isolation_pass_is_bit_identical(maker):
    legacy, modern = run_both(maker, workers=1)
    assert canonical(modern) == canonical(legacy)
    assert design_fingerprint(modern.design) == design_fingerprint(legacy.design)
    assert modern.design.name == legacy.design.name
    assert len(modern.instances) == len(legacy.instances)


@pytest.mark.parametrize("maker", POOLED_MAKERS)
def test_isolation_pass_is_bit_identical_pooled(maker):
    legacy, modern = run_both(maker, workers=2)
    assert canonical(modern) == canonical(legacy)
    assert design_fingerprint(modern.design) == design_fingerprint(legacy.design)


def test_wrapper_is_the_new_loop():
    """isolate_design carries no loop of its own anymore."""
    import inspect

    from repro.core import algorithm

    source = inspect.getsource(algorithm.isolate_design)
    assert "optimize(" in source
    assert not hasattr(algorithm, "_run_isolation")
