"""End-to-end integration tests across the full pipeline.

These run the complete flow (design → simulate → model → isolate →
re-measure → verify) on every benchmark design and check the paper-level
facts hold: meaningful savings on idle datapaths, equivalence, bounded
overheads, and sane iteration behaviour.
"""

import pytest

from repro.core import IsolationConfig, compare_styles, isolate_design
from repro.netlist import textio
from repro.netlist.validate import validate_design
from repro.netlist.verilog import to_verilog
from repro.power import estimate_power, format_power_report
from repro.sim import ControlStream, random_stimulus
from repro.verify import check_observable_equivalence


def stimulus_for(design, seed=13, idle=True):
    overrides = {}
    names = {pi.name for pi in design.primary_inputs}
    if "EN" in names:
        overrides["EN"] = ControlStream(0.2 if idle else 0.9, 0.05)
    if "BYP" in names:
        overrides["BYP"] = ControlStream(0.8 if idle else 0.1, 0.05)
    if "GO" in names:
        overrides["GO"] = ControlStream(0.3, 0.2)

    def make():
        return random_stimulus(
            design, seed=seed, control_probability=0.3, overrides=overrides or None
        )

    return make


@pytest.mark.parametrize(
    "fixture_name", ["fig1", "d1", "d2", "fir", "alu", "bus"]
)
def test_full_flow_on_every_benchmark(fixture_name, request):
    design = request.getfixturevalue(fixture_name)
    stim = stimulus_for(design)
    result = isolate_design(design, stim, IsolationConfig(cycles=600))

    validate_design(result.design)
    assert result.final.power_mw <= result.baseline.power_mw * 1.001
    assert result.final.worst_slack >= 0  # timing still met

    report = check_observable_equivalence(design, result.design, stim(), 1200)
    assert report.equivalent, report.mismatches[:3]

    # The transformed design survives serialisation round trips.
    assert textio.loads(textio.dumps(result.design)).stats() == result.design.stats()
    assert "endmodule" in to_verilog(result.design)


def test_savings_track_idleness_on_design1(d1):
    idle = isolate_design(
        d1, stimulus_for(d1, idle=True), IsolationConfig(cycles=600)
    )
    busy = isolate_design(
        d1, stimulus_for(d1, idle=False), IsolationConfig(cycles=600)
    )
    assert idle.power_reduction > busy.power_reduction


def test_style_comparison_consistency(d1):
    stim = stimulus_for(d1)
    comparison = compare_styles(d1, stim, IsolationConfig(cycles=500))
    base = comparison.row("non-isolated")
    for label in ("AND-isolated", "OR-isolated", "LAT-isolated"):
        row = comparison.row(label)
        assert row.power_mw < base.power_mw
        assert row.area > base.area
        # Recorded deltas agree with the absolute columns.
        assert row.power_reduction == pytest.approx(
            1 - row.power_mw / base.power_mw, abs=1e-9
        )


def test_power_report_of_isolated_design_shows_overhead(d1):
    stim = stimulus_for(d1)
    result = isolate_design(d1, stim, IsolationConfig(cycles=500))
    breakdown = estimate_power(result.design, stim(), 500)
    text = format_power_report(result.design, breakdown)
    assert "isolation banks" in text
    assert breakdown.overhead_power_mw > 0
    # Overhead stays a small fraction of the total.
    assert breakdown.overhead_power_mw < 0.25 * breakdown.total_power_mw


def test_iterative_behaviour_is_monotone(d1):
    """Measured total power never increases across iterations."""
    stim = stimulus_for(d1)
    result = isolate_design(d1, stim, IsolationConfig(cycles=600))
    measured = [r.total_power_mw for r in result.iterations if r.total_power_mw > 0]
    assert all(b <= a * 1.05 for a, b in zip(measured, measured[1:]))


def test_repeated_runs_are_deterministic(d2):
    stim = lambda: random_stimulus(d2, seed=11)
    first = isolate_design(d2, stim, IsolationConfig(cycles=400))
    second = isolate_design(d2, stim, IsolationConfig(cycles=400))
    assert first.isolated_names == second.isolated_names
    assert first.final.power_mw == pytest.approx(second.final.power_mw)
