"""``repro sweep``: inline runs, spec files, reports, and crash-resume.

The kill test is the CLI-level proof of the sweep contract: SIGKILL the
process mid-grid, re-invoke the identical command, and the second run
resumes from the experiment store — completed points are skipped, never
recomputed, and the sweep still converges to a complete grid.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.cli import main
from repro.designs import paper_example
from repro.netlist import textio

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BASE = ["sweep", "--design", "fig1", "--stimuli", "default,idle",
        "--pass-lists", "isolation", "--cycles", "120", "--name", "clitest"]


def run_json(argv, capsys):
    code = main(argv + ["--json"])
    return code, json.loads(capsys.readouterr().out)


class TestSweepCommand:
    def test_inline_run_emits_one_json_document(self, tmp_path, capsys):
        code, payload = run_json(
            BASE + ["--store", str(tmp_path / "store")], capsys
        )
        assert code == 0
        assert payload["computed"] == 2 and payload["complete"]
        assert payload["report"]["points"] == 2
        assert os.path.isdir(tmp_path / "store" / "points")

    def test_rerun_resumes_from_store(self, tmp_path, capsys):
        store = ["--store", str(tmp_path / "store")]
        assert run_json(BASE + store, capsys)[0] == 0
        code, payload = run_json(BASE + store, capsys)
        assert code == 0
        assert payload["computed"] == 0 and payload["skipped"] == 2

    def test_text_output_has_pareto_table(self, tmp_path, capsys):
        assert main(BASE + ["--store", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "Pareto report" in out and "resumed from store" in out

    def test_report_files_written(self, tmp_path, capsys):
        report = tmp_path / "report.txt"
        report_json = tmp_path / "report.json"
        code = main(
            BASE
            + ["--store", str(tmp_path / "s"), "--report", str(report),
               "--report-json", str(report_json)]
        )
        assert code == 0
        assert "Pareto report" in report.read_text()
        assert json.loads(report_json.read_text())["points"] == 2

    def test_spec_file_form(self, tmp_path, capsys):
        netlist = tmp_path / "fig1.rtl"
        netlist.write_text(textio.dumps(paper_example()))
        spec = {
            "name": "specfile",
            "designs": [str(netlist)],
            "stimuli": [None, "bursty"],
            "pass_lists": [["isolation"]],
            "run": {"cycles": 100},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        code, payload = run_json(
            ["sweep", str(spec_path), "--store", str(tmp_path / "s")], capsys
        )
        assert code == 0
        assert payload["spec"]["name"] == "specfile"
        assert payload["computed"] == 2

    def test_limit_then_resume(self, tmp_path, capsys):
        store = ["--store", str(tmp_path / "store")]
        code, first = run_json(BASE + store + ["--limit", "1"], capsys)
        assert code == 0 and first["computed"] == 1 and not first["complete"]
        code, second = run_json(BASE + store, capsys)
        assert second["skipped"] == 1 and second["complete"]

    def test_spec_file_and_axis_flags_conflict(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"designs": ["fig1"]}))
        assert main(["sweep", str(spec_path), "--design", "fig1"]) == 2

    def test_no_design_is_an_error(self):
        assert main(["sweep"]) == 2

    def test_unknown_profile_is_an_error(self):
        assert main(BASE[:-2] + ["--stimuli", "nope"]) == 2


class TestKillResume:
    def test_sigkill_mid_sweep_then_resume_skips_done_points(
        self, tmp_path, capsys
    ):
        """The acceptance scenario: kill -9 mid-run, re-invoke, resume."""
        store = str(tmp_path / "store")
        argv = [
            sys.executable, "-m", "repro", "sweep",
            "--design", "fig1", "--stimuli", "default,idle,bursty",
            "--pass-lists", "isolation,rewrite+isolation",
            "--cycles", "1200", "--store", store, "--name", "killtest",
        ]
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, cwd=REPO_ROOT, text=True,
        )
        try:
            header = proc.stdout.readline()
            assert "6 point(s)" in header
            # Wait for the first persisted point, then kill without grace.
            first = proc.stdout.readline()
            assert "[1/6]" in first and "computed" in first
            proc.kill()  # SIGKILL: no cleanup, no atexit, mid-grid
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup guard
                proc.kill()
                proc.wait(timeout=30)
        persisted = len(
            [
                name
                for shard in os.listdir(os.path.join(store, "points"))
                for name in os.listdir(os.path.join(store, "points", shard))
            ]
        )
        assert 1 <= persisted < 6
        # Same command, in-process this time: resumes, never recomputes.
        code = main(
            ["sweep", "--design", "fig1", "--stimuli", "default,idle,bursty",
             "--pass-lists", "isolation,rewrite+isolation",
             "--cycles", "1200", "--store", store, "--name", "killtest",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["skipped"] == persisted  # nothing recomputed
        assert payload["computed"] == 6 - persisted
        assert payload["complete"]
        from repro.sweep import ExperimentStore, SweepSpec

        spec = SweepSpec.from_dict(
            {
                "name": "killtest",
                "designs": ["fig1"],
                "stimuli": [None, "idle", "bursty"],
                "pass_lists": ["isolation", "rewrite+isolation"],
                "run": {"cycles": 1200, "seed": 0, "engine": "python"},
            }
        )
        final = ExperimentStore(store)
        assert len(final) == 6
        assert sorted(final.keys()) == sorted(p.key for p in spec.expand())
