"""Unit tests for the technology library."""

import pytest

from repro.errors import PowerModelError
from repro.netlist.arith import Adder, Multiplier
from repro.netlist.banks import AndBank, LatchBank
from repro.netlist.design import Design
from repro.netlist.logic import AndGate, Mux
from repro.netlist.seq import Register
from repro.power.library import CellParams, TechnologyLibrary, default_library


def wire_module(cell, width=8, out_width=None):
    d = Design("t")
    d.add_cell(cell)
    for port in cell.input_ports:
        w = 1 if cell.port_spec(port).is_control else width
        d.connect(cell, port, d.add_net(f"n_{port}", w))
    for port in cell.output_ports:
        d.connect(cell, port, d.add_net(f"n_{port}", out_width or width))
    return cell


class TestArea:
    def test_area_scales_with_width(self, library):
        small = wire_module(Adder("a"), width=8)
        large = wire_module(Adder("b"), width=16)
        assert library.area(large) == pytest.approx(2 * library.area(small))

    def test_multiplier_area_quadratic(self, library):
        m8 = wire_module(Multiplier("m"), width=8, out_width=16)
        m16 = wire_module(Multiplier("n"), width=16, out_width=32)
        assert library.area(m16) == pytest.approx(4 * library.area(m8))

    def test_mux_area_scales_with_inputs(self, library):
        d = Design("t")
        m2 = d.add_cell(Mux("m2", 2))
        m4 = d.add_cell(Mux("m4", 4))
        for m, n in ((m2, 2), (m4, 4)):
            for i in range(n):
                d.connect(m, f"D{i}", d.add_net(f"{m.name}_d{i}", 8))
            d.connect(m, "S", d.add_net(f"{m.name}_s", m.select_width))
            d.connect(m, "Y", d.add_net(f"{m.name}_y", 8))
        assert library.area(m4) == pytest.approx(3 * library.area(m2))

    def test_total_area_sums_cells(self, tiny_design, library):
        total = library.total_area(tiny_design)
        assert total == pytest.approx(
            sum(library.area(c) for c in tiny_design.cells)
        )

    def test_latch_bank_costs_more_area_than_and_bank(self, library):
        lat = wire_module(LatchBank("l"), width=8)
        gate = wire_module(AndBank("g"), width=8)
        assert library.area(lat) > library.area(gate)


class TestDelay:
    def test_adder_delay_grows_with_width(self, library):
        narrow = wire_module(Adder("a"), width=4)
        wide = wire_module(Adder("b"), width=32)
        assert library.delay(wide) > library.delay(narrow)

    def test_mux_delay_grows_with_inputs(self, library):
        d = Design("t")
        m2 = d.add_cell(Mux("m2", 2))
        m8 = d.add_cell(Mux("m8", 8))
        for m, n in ((m2, 2), (m8, 8)):
            for i in range(n):
                d.connect(m, f"D{i}", d.add_net(f"{m.name}_d{i}", 4))
            d.connect(m, "S", d.add_net(f"{m.name}_s", m.select_width))
            d.connect(m, "Y", d.add_net(f"{m.name}_y", 4))
        assert library.delay(m8) > library.delay(m2)

    def test_load_delay_grows_with_readers(self, tiny_design, library):
        # Net C feeds the adder and the mux; net A feeds only the adder.
        assert library.load_delay(tiny_design.net("C")) > library.load_delay(
            tiny_design.net("A")
        )


class TestEnergy:
    def test_multiplier_activity_exceeds_adder(self, library):
        add = wire_module(Adder("a"), width=16)
        mul = wire_module(Multiplier("m"), width=16, out_width=32)
        assert library.input_toggle_energy(mul) > 5 * library.input_toggle_energy(add)

    def test_bank_energy_below_module_energy(self, library):
        bank = wire_module(AndBank("b"), width=16)
        add = wire_module(Adder("a"), width=16)
        assert library.input_toggle_energy(bank) < library.input_toggle_energy(add)

    def test_enable_energy_scales_with_width(self, library):
        wide = wire_module(Register("r", has_enable=True), width=32)
        narrow = wire_module(Register("s", has_enable=True), width=4)
        assert library.control_toggle_energy(wide) == pytest.approx(
            8 * library.control_toggle_energy(narrow)
        )

    def test_latch_bank_has_static_energy(self, library):
        lat = wire_module(LatchBank("l"), width=8)
        gate = wire_module(AndBank("g"), width=8)
        assert library.static_energy(lat) > 0
        assert library.static_energy(gate) == 0

    def test_power_conversion(self, library):
        assert library.power_mw(10.0) == pytest.approx(10.0 * library.clock_ghz)


class TestCustomisation:
    def test_unknown_kind_raises(self, library):
        class Weird(AndGate):
            kind = "weird"

        with pytest.raises(PowerModelError):
            library.params(Weird("w"))

    def test_with_params_override(self, library):
        custom = library.with_params(
            and2=CellParams(area_per_bit=99.0, delay_fixed=1.0)
        )
        gate = wire_module(AndGate("g"), width=1)
        assert custom.area(gate) == 99.0
        assert library.area(gate) != 99.0

    def test_default_library_is_fresh(self):
        assert default_library() is not default_library()
