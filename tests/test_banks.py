"""Unit tests for isolation banks (AND / OR / LAT styles)."""

from repro.netlist.banks import AndBank, LatchBank, OrBank
from repro.netlist.design import Design


def wired(cls, width=8):
    d = Design("t")
    bank = d.add_cell(cls("b"))
    d.connect(bank, "D", d.add_net("d", width))
    d.connect(bank, "EN", d.add_net("en", 1))
    d.connect(bank, "Y", d.add_net("y", width))
    return bank


class TestAndBank:
    def test_passes_when_enabled(self):
        bank = wired(AndBank)
        assert bank.evaluate({"D": 0xAB, "EN": 1})["Y"] == 0xAB

    def test_forces_zero_when_idle(self):
        bank = wired(AndBank)
        assert bank.evaluate({"D": 0xAB, "EN": 0})["Y"] == 0


class TestOrBank:
    def test_passes_when_enabled(self):
        bank = wired(OrBank)
        assert bank.evaluate({"D": 0xAB, "EN": 1})["Y"] == 0xAB

    def test_forces_ones_when_idle(self):
        bank = wired(OrBank, width=8)
        assert bank.evaluate({"D": 0xAB, "EN": 0})["Y"] == 0xFF


class TestLatchBank:
    def test_transparent_when_enabled(self):
        bank = wired(LatchBank)
        assert bank.output_value(0x11, {"D": 0xAB, "EN": 1}) == 0xAB

    def test_freezes_when_idle(self):
        bank = wired(LatchBank)
        assert bank.output_value(0x11, {"D": 0xAB, "EN": 0}) == 0x11

    def test_state_update(self):
        bank = wired(LatchBank)
        assert bank.next_state(0x11, {"D": 0xAB, "EN": 1}) == 0xAB
        assert bank.next_state(0x11, {"D": 0xAB, "EN": 0}) == 0x11

    def test_latch_bank_holds_state_but_not_sequential(self):
        bank = LatchBank("b")
        assert bank.has_state
        assert not bank.is_sequential


def test_all_banks_marked_isolation_banks():
    for cls in (AndBank, OrBank, LatchBank):
        assert cls("b").is_isolation_bank


def test_enable_is_control_port():
    for cls in (AndBank, OrBank, LatchBank):
        assert cls("b").port_spec("EN").is_control
