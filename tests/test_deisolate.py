"""Tests for netlist removal APIs and the de-isolation (undo) transform."""

import pytest

from repro.core import derive_activation_functions
from repro.core.isolate import deisolate_candidate, is_isolated, isolate_candidate
from repro.errors import NetlistError
from repro.netlist import textio
from repro.netlist.builder import DesignBuilder
from repro.netlist.validate import validate_design
from repro.sim import random_stimulus
from repro.verify import check_observable_equivalence


class TestRemovalApis:
    def test_remove_cell_detaches_pins(self, tiny_design):
        mux = tiny_design.cell("m0")
        out_net = mux.net("Y")
        in_net = mux.net("D0")
        tiny_design.remove_cell(mux)
        assert out_net.driver is None
        assert all(pin.cell is not mux for pin in in_net.readers)
        assert not tiny_design.has_cell("m0")

    def test_remove_connected_net_rejected(self, tiny_design):
        with pytest.raises(NetlistError):
            tiny_design.remove_net(tiny_design.net("A"))

    def test_remove_foreign_cell_rejected(self, tiny_design):
        from repro.netlist.arith import Adder

        with pytest.raises(NetlistError):
            tiny_design.remove_cell(Adder("ghost"))

    def test_sweep_removes_dead_cones(self):
        b = DesignBuilder("dead")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        used = b.add(x, y, name="live")
        b.output(b.register(used, name="r0"), "OUT")
        dead1 = b.sub(x, y, name="dead1")
        dead2 = b.not_(dead1, name="dead2")  # chain: dead2 reads dead1
        d = b.build(validate=False)
        removed = d.sweep_dangling()
        assert removed == 2
        assert not d.has_cell("dead1") and not d.has_cell("dead2")
        validate_design(d)

    def test_sweep_keeps_sequential_and_boundary(self, tiny_design):
        assert tiny_design.sweep_dangling() == 0
        assert tiny_design.has_cell("r0")


class TestDeisolate:
    @pytest.mark.parametrize("style", ["and", "or", "latch"])
    def test_roundtrip_restores_structure(self, fig1, style):
        original_text = textio.dumps(fig1)
        working = fig1.copy()
        analysis = derive_activation_functions(working)
        instance = isolate_candidate(
            working, working.cell("a1"),
            analysis.of_module(working.cell("a1")), style,
        )
        assert is_isolated(working.cell("a1"))
        deisolate_candidate(working, instance)
        assert not is_isolated(working.cell("a1"))
        validate_design(working)
        # Exactly the original structure (isolation nets/cells all gone).
        assert textio.dumps(working) == original_text

    def test_roundtrip_preserves_behaviour(self, d1):
        working = d1.copy()
        analysis = derive_activation_functions(working)
        instance = isolate_candidate(
            working, working.cell("mul0"),
            analysis.of_module(working.cell("mul0")), "and",
        )
        deisolate_candidate(working, instance)
        stim = random_stimulus(d1, seed=4)
        report = check_observable_equivalence(d1, working, stim, 800)
        assert report.equivalent

    def test_partial_undo_keeps_other_instances(self, fig1):
        working = fig1.copy()
        analysis = derive_activation_functions(working)
        first = isolate_candidate(
            working, working.cell("a1"),
            analysis.of_module(working.cell("a1")), "and",
        )
        analysis = derive_activation_functions(working)
        second = isolate_candidate(
            working, working.cell("a0"),
            analysis.of_module(working.cell("a0")), "and",
        )
        deisolate_candidate(working, second)
        assert is_isolated(working.cell("a1"))
        assert not is_isolated(working.cell("a0"))
        validate_design(working)

    def test_reisolation_after_undo(self, fig1):
        working = fig1.copy()
        analysis = derive_activation_functions(working)
        instance = isolate_candidate(
            working, working.cell("a1"),
            analysis.of_module(working.cell("a1")), "and",
        )
        deisolate_candidate(working, instance)
        analysis = derive_activation_functions(working)
        again = isolate_candidate(
            working, working.cell("a1"),
            analysis.of_module(working.cell("a1")), "latch",
        )
        assert is_isolated(working.cell("a1"))
        validate_design(working)
