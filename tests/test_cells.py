"""Unit tests for the Cell base machinery (binding, specs, pins)."""

import pytest

from repro.errors import NetlistError, WidthMismatchError
from repro.netlist.arith import Adder
from repro.netlist.cells import PortDir
from repro.netlist.design import Design
from repro.netlist.logic import AndGate, Mux
from repro.netlist.ports import PrimaryInput
from repro.netlist.seq import Register


def wired_adder(width=8):
    d = Design("t")
    a = d.add_cell(Adder("a0"))
    na, nb, ny = d.add_net("na", width), d.add_net("nb", width), d.add_net("ny", width)
    d.connect(a, "A", na)
    d.connect(a, "B", nb)
    d.connect(a, "Y", ny)
    return d, a


class TestBinding:
    def test_connect_records_driver_and_readers(self):
        d, a = wired_adder()
        assert d.net("ny").driver.cell is a
        assert any(p.cell is a for p in d.net("na").readers)

    def test_double_connect_same_port_rejected(self):
        d, a = wired_adder()
        with pytest.raises(NetlistError):
            d.connect(a, "A", d.net("nb"))

    def test_two_drivers_on_one_net_rejected(self):
        d, _a = wired_adder()
        other = d.add_cell(Adder("a1"))
        d.connect(other, "A", d.net("na"))
        d.connect(other, "B", d.net("nb"))
        with pytest.raises(NetlistError):
            d.connect(other, "Y", d.net("ny"))

    def test_width_mismatch_rejected(self):
        d, a = wired_adder()
        d2 = Design("t2")
        a2 = d2.add_cell(Adder("a0"))
        d2.connect(a2, "A", d2.add_net("na", 8))
        with pytest.raises(WidthMismatchError):
            d2.connect(a2, "B", d2.add_net("nb", 4))

    def test_unknown_port_rejected(self):
        d, a = wired_adder()
        with pytest.raises(NetlistError):
            a.port_spec("Z")

    def test_unconnected_port_query_raises(self):
        a = Adder("a0")
        with pytest.raises(NetlistError):
            a.net("A")


class TestPinQueries:
    def test_input_and_output_pins(self):
        _d, a = wired_adder()
        assert {p.port for p in a.input_pins} == {"A", "B"}
        assert {p.port for p in a.output_pins} == {"Y"}

    def test_pin_direction(self):
        _d, a = wired_adder()
        pin = a.input_pins[0]
        assert pin.direction is PortDir.IN

    def test_data_input_ports_exclude_control(self):
        mux = Mux("m", n_inputs=2)
        assert mux.data_input_ports == ["D0", "D1"]

    def test_register_enable_is_control(self):
        reg = Register("r", has_enable=True)
        spec = reg.port_spec("EN")
        assert spec.is_control

    def test_mux_select_is_control(self):
        mux = Mux("m", n_inputs=4)
        assert mux.port_spec("S").is_control

    def test_classification_flags(self):
        assert Adder("a").is_datapath_module
        assert not AndGate("g").is_datapath_module
        assert Register("r").is_sequential
        assert not Adder("a").is_sequential

    def test_pi_has_no_evaluate(self):
        pi = PrimaryInput("X")
        with pytest.raises(NotImplementedError):
            pi.evaluate({})
