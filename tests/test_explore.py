"""Tests for the what-if candidate ranking API."""

import pytest

from repro.core.explore import format_ranking, rank_candidates
from repro.sim import ControlStream, random_stimulus


@pytest.fixture
def ranking(d1):
    stim = random_stimulus(
        d1, seed=6, control_probability=0.3,
        overrides={"EN": ControlStream(0.2, 0.1)},
    )
    return rank_candidates(d1, stim, cycles=800)


class TestRanking:
    def test_sorted_by_h(self, ranking):
        scored = [r for r in ranking if not r.always_active]
        hs = [r.h for r in scored]
        assert hs == sorted(hs, reverse=True)

    def test_multipliers_lead(self, ranking):
        top_two = {r.name for r in ranking[:2]}
        assert top_two == {"mul0", "mul1"}

    def test_design_not_modified(self, d1):
        before = d1.stats()
        rank_candidates(
            d1,
            random_stimulus(d1, seed=6, control_probability=0.3),
            cycles=300,
        )
        assert d1.stats() == before

    def test_every_candidate_listed(self, ranking, d1):
        assert {r.name for r in ranking} == {
            c.name for c in d1.datapath_modules
        }

    def test_fields_consistent(self, ranking):
        for r in ranking:
            if r.always_active:
                continue
            assert r.net_mw == pytest.approx(
                r.primary_mw + r.secondary_mw - r.overhead_mw
            )
            assert 0 <= r.idle_probability <= 1

    def test_worth_isolating_flag(self, ranking):
        by_name = {r.name: r for r in ranking}
        assert by_name["mul0"].worth_isolating

    def test_always_active_marked(self, fir):
        stim = random_stimulus(fir, seed=1)
        ranked = rank_candidates(fir, stim, cycles=300)
        assert all(not r.always_active for r in ranked)  # all gated by BYP

    def test_format_ranking(self, ranking):
        text = format_ranking(ranking)
        assert "mul0" in text
        assert "activation" in text

    def test_lookahead_option(self):
        from repro.designs import lookahead_pipeline

        design = lookahead_pipeline()
        stim = random_stimulus(
            design, seed=2, control_probability=0.3,
            overrides={"SEL_IN": ControlStream(0.3, 0.2),
                       "G_IN": ControlStream(0.3, 0.2)},
        )
        blind = rank_candidates(design, stim, cycles=400, lookahead_depth=0)
        assert all(r.always_active for r in blind if r.name == "pmul")
        stim2 = random_stimulus(
            design, seed=2, control_probability=0.3,
            overrides={"SEL_IN": ControlStream(0.3, 0.2),
                       "G_IN": ControlStream(0.3, 0.2)},
        )
        sighted = rank_candidates(design, stim2, cycles=400, lookahead_depth=1)
        pmul = next(r for r in sighted if r.name == "pmul")
        assert not pmul.always_active
        assert pmul.net_mw > 0


class TestCliRank:
    def test_rank_command(self, capsys):
        from repro.cli import main

        assert main(
            ["rank", "--builtin", "design1", "--cycles", "300",
             "--override", "EN=0.2:0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "mul0" in out and "mul1" in out

    def test_rank_json(self, capsys):
        import json

        from repro.cli import main

        assert main(
            ["rank", "--builtin", "design1", "--cycles", "300", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "mul0" for entry in data)
        for entry in data:
            assert set(entry) >= {"name", "h", "net_mw", "worth_isolating"}


class TestResultSerialisation:
    def test_isolation_result_to_dict(self, d1):
        import json

        from repro.core import IsolationConfig, isolate_design

        stim = random_stimulus(
            d1, seed=6, control_probability=0.3,
            overrides={"EN": ControlStream(0.2, 0.1)},
        )
        result = isolate_design(d1, stim, IsolationConfig(cycles=300))
        data = result.to_dict()
        json.dumps(data)  # must be serialisable
        assert data["design"] == "design1"
        assert data["power_mw"]["before"] > data["power_mw"]["after"]
        assert data["iterations"][0]["scores"]

    def test_isolate_cli_json(self, capsys):
        import json

        from repro.cli import main

        assert main(
            ["isolate", "--builtin", "design1", "--cycles", "300",
             "--override", "EN=0.2:0.1", "--verify-cycles", "0", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert "isolated" in data and data["power_mw"]["reduction"] > 0
