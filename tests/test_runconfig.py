"""The shared RunConfig and the deprecated per-call kwarg shims."""

from __future__ import annotations

import warnings

import pytest

import repro.designs as designs
from repro.core.algorithm import IsolationConfig, isolate_design
from repro.core.explore import rank_candidates
from repro.core.report import compare_styles
from repro.errors import ReproError
from repro.power import estimate_power
from repro.runconfig import ENGINES, RunConfig, resolve_run_config
from repro.sim.stimulus import random_stimulus


class TestRunConfig:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.cycles == 2000
        assert cfg.warmup == 16
        assert cfg.seed == 0
        assert cfg.engine == "python"

    def test_replace(self):
        cfg = RunConfig().replace(engine="compiled", cycles=10)
        assert (cfg.engine, cfg.cycles) == ("compiled", 10)

    @pytest.mark.parametrize("bad", [{"engine": "verilator"}, {"cycles": -1}, {"warmup": -2}])
    def test_validation(self, bad):
        with pytest.raises(ReproError):
            RunConfig(**bad)

    def test_engines_constant(self):
        assert ENGINES == ("python", "compiled", "bitslice", "checked")


class TestResolveRunConfig:
    def test_no_legacy_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = resolve_run_config(RunConfig(cycles=5))
        assert cfg.cycles == 5

    def test_legacy_kwargs_warn_and_override(self):
        with pytest.warns(DeprecationWarning, match="cycles, warmup"):
            cfg = resolve_run_config(None, cycles=7, warmup=3)
        assert (cfg.cycles, cfg.warmup) == (7, 3)

    def test_engine_is_first_class(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = resolve_run_config(None, engine="compiled")
        assert cfg.engine == "compiled"

    def test_defaults_fallback(self):
        cfg = resolve_run_config(None, defaults=RunConfig(warmup=99))
        assert cfg.warmup == 99


class TestEntryPointShims:
    def test_estimate_power_positional_cycles_warns(self, d1):
        with pytest.warns(DeprecationWarning):
            breakdown = estimate_power(d1, random_stimulus(d1, seed=1), 200)
        assert breakdown.total_power_mw > 0

    def test_estimate_power_run_config_is_silent(self, d1):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            estimate_power(
                d1, random_stimulus(d1, seed=1), run=RunConfig(cycles=200)
            )

    def test_estimate_power_shim_matches_run_config(self, d1):
        with pytest.warns(DeprecationWarning):
            legacy = estimate_power(
                d1, random_stimulus(d1, seed=1), 300, warmup=8
            )
        modern = estimate_power(
            d1,
            random_stimulus(d1, seed=1),
            run=RunConfig(cycles=300, warmup=8),
        )
        assert legacy.total_power_mw == modern.total_power_mw

    def test_rank_candidates_cycles_warns(self, d1):
        with pytest.warns(DeprecationWarning):
            ranked = rank_candidates(d1, random_stimulus(d1, seed=1), cycles=200)
        assert ranked

    def test_rank_candidates_run_matches_legacy(self, d1):
        with pytest.warns(DeprecationWarning):
            legacy = rank_candidates(d1, random_stimulus(d1, seed=1), cycles=200)
        modern = rank_candidates(
            d1, random_stimulus(d1, seed=1), run=RunConfig(cycles=200)
        )
        assert [(r.name, r.h) for r in legacy] == [(r.name, r.h) for r in modern]

    def test_isolate_design_cycles_warns(self, d1):
        def stim():
            return random_stimulus(d1, seed=1)

        with pytest.warns(DeprecationWarning):
            result = isolate_design(d1, stim, cycles=200, warmup=4)
        assert result.config.cycles == 200
        assert result.config.warmup == 4

    def test_isolate_design_run_overrides_config(self, d1):
        def stim():
            return random_stimulus(d1, seed=1)

        result = isolate_design(
            d1,
            stim,
            IsolationConfig(cycles=999),
            run=RunConfig(cycles=150, warmup=2, engine="compiled"),
        )
        assert result.config.cycles == 150
        assert result.config.engine == "compiled"
        assert result.timings.engine == "compiled"

    def test_compare_styles_cycles_warns(self, fig1):
        def stim():
            return random_stimulus(fig1, seed=1)

        with pytest.warns(DeprecationWarning):
            comparison = compare_styles(fig1, stim, styles=["and"], cycles=150)
        assert comparison.results["and"].config.cycles == 150

    def test_compare_styles_engine_kwarg(self, fig1):
        def stim():
            return random_stimulus(fig1, seed=1)

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            comparison = compare_styles(
                fig1, stim, styles=["and"], engine="compiled"
            )
        assert comparison.results["and"].config.engine == "compiled"


class TestStageTimings:
    def test_timings_populated(self, d1):
        def stim():
            return random_stimulus(d1, seed=1)

        result = isolate_design(d1, stim, IsolationConfig(cycles=200))
        timings = result.timings
        assert timings.simulations >= 2  # baseline + final at minimum
        assert timings.simulate_s > 0
        assert timings.score_s >= 0
        assert timings.transform_s >= 0
        assert timings.total_s == pytest.approx(
            timings.simulate_s + timings.score_s + timings.transform_s
        )

    def test_timings_in_summary_and_dict(self, d1):
        def stim():
            return random_stimulus(d1, seed=1)

        result = isolate_design(d1, stim, IsolationConfig(cycles=200))
        assert "stages" in result.summary()
        payload = result.to_dict()["timings"]
        expected = {
            "simulate_s", "score_s", "transform_s", "total_s",
            "simulations", "engine", "workers",
        }
        if payload["workers"] > 1:  # REPRO_WORKERS may pool the scoring
            expected |= {"parallel"}
        assert set(payload) - {"pool_fallback_reason"} == expected

class TestWarningAttribution:
    """Deprecation warnings must point at the *caller's* line, not at the
    shim machinery (or, worse, the interpreter's own frames)."""

    def test_direct_resolve_points_at_caller(self):
        with pytest.warns(DeprecationWarning) as record:
            resolve_run_config(None, cycles=7)
        assert record[0].filename == __file__

    def test_estimate_power_points_at_caller(self, d1):
        with pytest.warns(DeprecationWarning) as record:
            estimate_power(d1, random_stimulus(d1, seed=1), 150)
        assert record[0].filename == __file__

    def test_rank_candidates_points_at_caller(self, d1):
        with pytest.warns(DeprecationWarning) as record:
            rank_candidates(d1, random_stimulus(d1, seed=1), cycles=150)
        assert record[0].filename == __file__

    def test_isolate_design_points_at_caller(self, d1):
        with pytest.warns(DeprecationWarning) as record:
            isolate_design(
                d1, lambda: random_stimulus(d1, seed=1), cycles=150, warmup=4
            )
        assert record[0].filename == __file__

    def test_compare_styles_points_at_caller(self, fig1):
        with pytest.warns(DeprecationWarning) as record:
            compare_styles(
                fig1,
                lambda: random_stimulus(fig1, seed=1),
                styles=["and"],
                cycles=150,
            )
        assert record[0].filename == __file__
