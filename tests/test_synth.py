"""Unit tests for expression-to-gates synthesis."""

import itertools

import pytest
from hypothesis import given, settings

from repro.boolean.expr import FALSE, TRUE, and_, not_, or_, var
from repro.boolean.synth import ExpressionSynthesizer, synthesize_expression
from repro.errors import BooleanError
from repro.netlist.design import Design
from repro.netlist.ports import Constant, PrimaryInput, PrimaryOutput
from repro.netlist.traversal import combinational_order
from tests.test_expr import VARS, exprs


def fresh_design(var_names):
    d = Design("synth")
    nets = {}
    for name in var_names:
        pi = d.add_cell(PrimaryInput(name))
        net = d.add_net(f"n_{name}", 1)
        d.connect(pi, "Y", net)
        nets[name] = net
    return d, nets


def evaluate_net(design, target_net, env_by_var, nets):
    """Evaluate the synthesized cone by direct combinational evaluation."""
    values = {}
    for name, net in nets.items():
        values[net] = int(env_by_var[name])
    for cell in design.cells:
        if isinstance(cell, Constant):
            values[cell.net("Y")] = cell.value & 1
    for cell in combinational_order(design):
        inputs = {p.port: values[p.net] for p in cell.input_pins}
        for port, value in cell.evaluate(inputs).items():
            values[cell.net(port)] = value
    return values[target_net]


class TestSynthesis:
    def test_paper_activation_function(self):
        e = or_(and_(var("S2"), var("G1")), and_(not_(var("S0")), var("S1"), var("G0")))
        d, nets = fresh_design(e.support())
        result = synthesize_expression(d, e, nets)
        # 1 inverter + 1 AND + 2 ANDs (3-way tree) + 1 OR = 5 gates.
        assert result.gate_count == 5
        for bits in itertools.product([0, 1], repeat=5):
            env = dict(zip(sorted(e.support()), bits))
            assert evaluate_net(d, result.output, env, nets) == int(e.evaluate(env))

    def test_bare_variable_costs_nothing(self):
        d, nets = fresh_design(["g"])
        result = synthesize_expression(d, var("g"), nets)
        assert result.gate_count == 0
        assert result.output is nets["g"]

    def test_constant_expression(self):
        d, nets = fresh_design([])
        result = synthesize_expression(d, TRUE, nets)
        assert isinstance(result.output.driver.cell, Constant)

    def test_sharing_across_calls(self):
        d, nets = fresh_design(["a", "b", "c"])
        synth = ExpressionSynthesizer(d, nets)
        common = and_(var("a"), var("b"))
        first = synth.synthesize(or_(common, var("c")))
        cells_after_first = len(d.cells)
        second = synth.synthesize(and_(common, var("c")))
        # The a*b gate is reused, only one new AND is added.
        assert len(d.cells) == cells_after_first + 1

    def test_unbound_variable_rejected(self):
        d, nets = fresh_design(["a"])
        with pytest.raises(BooleanError):
            synthesize_expression(d, var("ghost"), nets)

    def test_wide_net_rejected(self):
        d, nets = fresh_design(["a"])
        wide = d.add_net("bus", 8)
        pi = d.add_cell(PrimaryInput("BUS"))
        d.connect(pi, "Y", wide)
        with pytest.raises(BooleanError):
            synthesize_expression(d, var("bus"), {"bus": wide})

    @settings(max_examples=60, deadline=None)
    @given(e=exprs())
    def test_synthesized_logic_matches_expression(self, e):
        d, nets = fresh_design(VARS)
        result = synthesize_expression(d, e, nets)
        for bits in itertools.product([0, 1], repeat=len(VARS)):
            env = dict(zip(VARS, bits))
            assert evaluate_net(d, result.output, env, nets) == int(e.evaluate(env))
