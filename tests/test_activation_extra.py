"""Additional activation-derivation scenarios: latches, buffers, taps,
deep mux trees, and post-isolation partitioning."""

from repro.boolean.bdd import BddManager
from repro.boolean.expr import TRUE, and_, not_, or_, var
from repro.core import derive_activation_functions
from repro.core.isolate import isolate_candidate
from repro.netlist.builder import DesignBuilder
from repro.netlist.partition import partition_blocks


class TestLatchTraversal:
    def test_latch_gates_observability(self):
        """module -> latch(G) -> enabled register: f = G_latch * EN."""
        b = DesignBuilder("lat")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g_lat = b.input("GL", 1)
        en = b.input("EN", 1)
        total = b.add(x, y, name="a0")
        held = b.latch(total, g_lat, name="hold")
        b.output(b.register(held, enable=en, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        manager = BddManager()
        assert manager.equivalent(
            analysis.of_module(d.cell("a0")), and_(var("GL"), var("EN"))
        )

    def test_buffer_chain_is_transparent(self):
        b = DesignBuilder("bufs")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g = b.input("G", 1)
        total = b.add(x, y, name="a0")
        buffered = b.buf(b.buf(total))
        b.output(b.register(buffered, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        assert BddManager().equivalent(analysis.of_module(d.cell("a0")), var("G"))

    def test_inverter_is_transparent(self):
        b = DesignBuilder("inv")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g = b.input("G", 1)
        total = b.add(x, y, name="a0")
        inverted = b.not_(total)
        b.output(b.register(inverted, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        assert BddManager().equivalent(analysis.of_module(d.cell("a0")), var("G"))


class TestDeepSteering:
    def test_mux_tree_conditions_multiply(self):
        """Two levels of 2-way muxes: conditions AND along the path."""
        b = DesignBuilder("tree")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        s0 = b.input("S0", 1)
        s1 = b.input("S1", 1)
        g = b.input("G", 1)
        total = b.add(x, y, name="a0")
        level1 = b.mux(s0, total, x, name="m0")  # selected when S0 = 0
        level2 = b.mux(s1, y, level1, name="m1")  # selected when S1 = 1
        b.output(b.register(level2, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        expected = and_(not_(var("S0")), var("S1"), var("G"))
        assert BddManager().equivalent(analysis.of_module(d.cell("a0")), expected)

    def test_multiple_paths_or_together(self):
        """Module observable through EITHER of two sinks."""
        b = DesignBuilder("fan")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g0 = b.input("G0", 1)
        g1 = b.input("G1", 1)
        total = b.add(x, y, name="a0")
        b.output(b.register(total, enable=g0, name="r0"), "OUT0")
        b.output(b.register(total, enable=g1, name="r1"), "OUT1")
        d = b.build()
        analysis = derive_activation_functions(d)
        assert BddManager().equivalent(
            analysis.of_module(d.cell("a0")), or_(var("G0"), var("G1"))
        )

    def test_eight_way_mux_bit_conditions(self):
        b = DesignBuilder("m8")
        sel = b.input("SEL", 3)
        g = b.input("G", 1)
        xs = [b.input(f"X{i}", 4) for i in range(7)]
        total = b.add(xs[0], xs[1], name="a0")
        routed = b.mux(sel, *( [total] + xs[:7] ), name="m0")
        b.output(b.register(routed, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        expected = and_(
            not_(var("SEL[0]")), not_(var("SEL[1]")), not_(var("SEL[2]")), var("G")
        )
        assert BddManager().equivalent(analysis.of_module(d.cell("a0")), expected)


class TestPostIsolationStructure:
    def test_isolation_does_not_split_blocks(self, fig1):
        blocks_before = len(partition_blocks(fig1))
        working = fig1.copy()
        analysis = derive_activation_functions(working)
        for name in ("a1", "a0"):
            isolate_candidate(
                working, working.cell(name),
                analysis.of_module(working.cell(name)), "latch",
            )
            analysis = derive_activation_functions(working)
        assert len(partition_blocks(working)) == blocks_before

    def test_activation_logic_lands_in_same_block(self, fig1):
        working = fig1.copy()
        analysis = derive_activation_functions(working)
        instance = isolate_candidate(
            working, working.cell("a1"),
            analysis.of_module(working.cell("a1")), "and",
        )
        blocks = partition_blocks(working)
        module_block = next(b for b in blocks if working.cell("a1") in b)
        for cell in instance.activation_cells + instance.banks:
            assert cell in module_block
