"""Unit tests of the bit-slicing primitives and kernel edge cases.

Covers the satellite checklist of the differential rig: lane
pack/unpack round-trips, XOR-delta popcounts vs the naive per-lane
count, masked-overflow behaviour at word boundaries, the seeded-bug
regression (a corrupted plane constant must trip ``engine="checked"``),
ragged final words, and checkpoint/resume across a mid-word boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.designs import design1, paper_example, soc_datapath
from repro.errors import EquivalenceError
from repro.sim import (
    BatchRandomStimulus,
    BatchSimulator,
    BatchToggleMonitor,
    BitsliceSimulator,
    CheckedSimulator,
    bitslice_cache,
    compile_bitslice,
    pack_lanes,
    unpack_lanes,
)
from repro.sim.bitslice import _ripple_increment, pack_scalar
from repro.sim.checked import DEFAULT_CHECK_INTERVAL


# ----------------------------------------------------------------------
# Packing primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 3, 7, 8, 9, 63, 64, 65, 200])
@pytest.mark.parametrize("width", [1, 5, 32, 64])
def test_pack_unpack_round_trip(n, width):
    rng = np.random.default_rng(n * 1000 + width)
    values = rng.integers(0, 1 << min(width, 63), size=n, dtype=np.uint64)
    planes = pack_lanes(values, width)
    assert len(planes) == width
    lane_mask = (1 << n) - 1
    for plane in planes:
        assert plane & ~lane_mask == 0, "phantom lanes must stay zero"
    np.testing.assert_array_equal(unpack_lanes(planes, n), values)


def test_pack_lanes_drops_bits_beyond_width():
    # Values wider than the net width are clipped by packing alone —
    # the masked-overflow contract at word boundaries.
    values = np.array([0b1111, 0b1010, 0b0111], dtype=np.uint64)
    planes = pack_lanes(values, 2)
    np.testing.assert_array_equal(unpack_lanes(planes, 3), values & 0b11)


def test_pack_scalar_matches_pack_lanes():
    value = 0b1011001
    width = 7
    assert pack_scalar(value, width) == pack_lanes(
        np.array([value], dtype=np.uint64), width
    )


def test_xor_delta_popcount_matches_naive():
    rng = np.random.default_rng(7)
    n, width = 50, 9
    a = rng.integers(0, 1 << width, size=n, dtype=np.uint64)
    b = rng.integers(0, 1 << width, size=n, dtype=np.uint64)
    pa, pb = pack_lanes(a, width), pack_lanes(b, width)
    # Bit-sliced toggle count: popcount of per-plane XOR deltas.
    sliced_total = sum((x ^ y).bit_count() for x, y in zip(pa, pb))
    naive_total = sum(int(x ^ y).bit_count() for x, y in zip(a, b))
    assert sliced_total == naive_total
    # Per-lane: unpacked single-bit deltas reassemble the naive counts.
    per_lane = np.zeros(n, dtype=np.uint64)
    for x, y in zip(pa, pb):
        per_lane += unpack_lanes([x ^ y], n)
    np.testing.assert_array_equal(
        per_lane, [int(x ^ y).bit_count() for x, y in zip(a, b)]
    )


def test_ripple_increment_counts_in_lane_binary():
    n = 11
    counters = []
    totals = np.zeros(n, dtype=np.uint64)
    rng = np.random.default_rng(3)
    for _ in range(100):
        delta = int(rng.integers(0, 1 << n))
        _ripple_increment(counters, delta)
        totals += unpack_lanes([delta], n)
    np.testing.assert_array_equal(unpack_lanes(counters, n), totals)


# ----------------------------------------------------------------------
# Seeded-bug regression: a flipped plane constant must be caught
# ----------------------------------------------------------------------
def test_checked_catches_seeded_bitslice_bug():
    design = design1()
    program = bitslice_cache().get(design)
    original_step = program.step

    def corrupted(v, s, pi, LM, hlp):
        original_step(v, s, pi, LM, hlp)
        v[5] ^= LM  # model of one flipped mask constant in the lowering

    program.step = corrupted
    try:
        subject = BitsliceSimulator(design, program=program)
        checked = CheckedSimulator(design, compiled=subject)
        from repro.sim import random_stimulus

        with pytest.raises(EquivalenceError) as excinfo:
            checked.run(random_stimulus(design, seed=0), 300)
        message = str(excinfo.value)
        assert "diverged" in message
        assert f"cycle {DEFAULT_CHECK_INTERVAL}" in message
        assert "check #1" in message
        assert "bitslice" in message
        assert program.design_hash[:12] in message
    finally:
        program.step = original_step  # the program is globally cached


# ----------------------------------------------------------------------
# Lane-count edge cases: ragged words and mid-word checkpoints
# ----------------------------------------------------------------------
def _toggles(design, batch, lane_width, seed, cycles=40, warmup=4):
    sim = BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    )
    monitor = BatchToggleMonitor()
    sim.run(BatchRandomStimulus(design, batch, seed=seed), cycles,
            monitors=[monitor], warmup=warmup)
    return monitor


@pytest.mark.parametrize("batch,lane_width", [(13, 5), (7, 64), (9, 4), (1, 64)])
def test_ragged_final_word_counts_no_phantom_toggles(batch, lane_width):
    """A batch that does not divide lane_width must match the plain
    numpy batch engine exactly — phantom lanes contribute nothing."""
    design = paper_example()
    ref_sim = BatchSimulator(design, batch_size=batch, engine="python")
    ref = BatchToggleMonitor()
    ref_sim.run(BatchRandomStimulus(design, batch, seed=17), 40,
                monitors=[ref], warmup=4)
    got = _toggles(design, batch, lane_width, seed=17)
    assert got.cycles == ref.cycles
    for net in ref.toggles:
        np.testing.assert_array_equal(
            ref.toggles[net], got.toggles[net], err_msg=net.name
        )


@pytest.mark.parametrize("checkpoint_every", [3, 7, 21])
def test_checkpoint_resume_across_mid_word_boundary(checkpoint_every):
    """Resume from a checkpoint taken mid-word (and mid-warmup for the
    small cadences) reproduces the uninterrupted counts exactly."""
    design = soc_datapath()
    batch, lane_width, cycles, warmup, seed = 13, 5, 50, 6, 9

    full = _toggles(design, batch, lane_width, seed, cycles, warmup)

    first = BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    )
    first.run(
        BatchRandomStimulus(design, batch, seed=seed), cycles,
        monitors=[BatchToggleMonitor()], warmup=warmup,
        checkpoint_every=checkpoint_every,
    )
    checkpoint = first.last_checkpoint
    assert checkpoint is not None

    # Replay the stimulus stream up to the checkpoint, then resume.
    replay = BatchRandomStimulus(design, batch, seed=seed)
    for cycle in range(checkpoint.cycle):
        replay.values(cycle)
    resumed_sim = BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    )
    resumed = resumed_sim.run(replay, cycles, warmup=warmup,
                              resume_from=checkpoint)
    monitor = resumed[0]
    assert monitor.cycles == full.cycles
    for net in full.toggles:
        np.testing.assert_array_equal(
            full.toggles[net], monitor.toggles[net], err_msg=net.name
        )


def test_checkpoint_is_engine_portable():
    """A checkpoint taken under bitslice resumes under the numpy engine
    (and vice versa) with identical counts."""
    design = paper_example()
    batch, cycles, warmup, seed = 13, 40, 4, 23

    full = _toggles(design, batch, 5, seed, cycles, warmup)

    donor = BatchSimulator(design, batch_size=batch, engine="bitslice",
                           lane_width=5)
    donor.run(BatchRandomStimulus(design, batch, seed=seed), cycles,
              monitors=[BatchToggleMonitor()], warmup=warmup,
              checkpoint_every=13)
    checkpoint = donor.last_checkpoint

    replay = BatchRandomStimulus(design, batch, seed=seed)
    for cycle in range(checkpoint.cycle):
        replay.values(cycle)
    other = BatchSimulator(design, batch_size=batch, engine="python")
    resumed = other.run(replay, cycles, warmup=warmup, resume_from=checkpoint)
    for net in full.toggles:
        np.testing.assert_array_equal(
            full.toggles[net], resumed[0].toggles[net], err_msg=net.name
        )


# ----------------------------------------------------------------------
# Monitor flavours: probes, wide words (> 64 lanes), generic monitors
# ----------------------------------------------------------------------
def test_batch_probe_matches_python_engine():
    from repro.boolean.expr import var
    from repro.sim.batch import BatchProbe

    design = design1()
    counts = {}
    for engine in ("python", "bitslice"):
        probe = BatchProbe("en", var("EN"))
        BatchSimulator(design, batch_size=11, engine=engine).run(
            BatchRandomStimulus(design, 11, seed=4), 80,
            monitors=[probe], warmup=5,
        )
        counts[engine] = (probe.true_counts.copy(), probe.cycles)
    np.testing.assert_array_equal(counts["python"][0], counts["bitslice"][0])
    assert counts["python"][1] == counts["bitslice"][1]


def test_wide_word_monitors_use_ripple_counters():
    """A word wider than a machine word (> 64 lanes) takes the
    bigint ripple-counter path and still matches the numpy engine."""
    design = paper_example()
    batch, lane_width = 100, 200
    ref = BatchToggleMonitor()
    BatchSimulator(design, batch_size=batch, engine="python").run(
        BatchRandomStimulus(design, batch, seed=31), 40,
        monitors=[ref], warmup=4,
    )
    got = _toggles(design, batch, lane_width, seed=31)
    for net in ref.toggles:
        np.testing.assert_array_equal(
            ref.toggles[net], got.toggles[net], err_msg=net.name
        )


def test_wide_word_checkpoint_resume():
    """Resume re-seeds the bigint ripple counters when lanes > 64."""
    design = paper_example()
    batch, lane_width, cycles, warmup, seed = 70, 100, 30, 3, 13

    full = _toggles(design, batch, lane_width, seed, cycles, warmup)

    first = BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    )
    first.run(
        BatchRandomStimulus(design, batch, seed=seed), cycles,
        monitors=[BatchToggleMonitor()], warmup=warmup, checkpoint_every=11,
    )
    checkpoint = first.last_checkpoint
    replay = BatchRandomStimulus(design, batch, seed=seed)
    for cycle in range(checkpoint.cycle):
        replay.values(cycle)
    resumed_sim = BatchSimulator(
        design, batch_size=batch, engine="bitslice", lane_width=lane_width
    )
    resumed = resumed_sim.run(replay, cycles, warmup=warmup,
                              resume_from=checkpoint)
    for net in full.toggles:
        np.testing.assert_array_equal(
            full.toggles[net], resumed[0].toggles[net], err_msg=net.name
        )


def test_generic_monitor_sees_lane_values():
    """Monitors that are neither BatchToggleMonitor nor BatchProbe get
    the classic observe(cycle, values) callback with lane arrays."""

    class RecordingMonitor:
        def __init__(self, net):
            self.net = net
            self.seen = []

        def begin(self, design, batch_size):
            pass

        def observe(self, cycle, values):
            self.seen.append(values[self.net].copy())

        def finish(self):
            pass

    design = design1()
    net = design.net("X0")
    recorders = {}
    for engine in ("python", "bitslice"):
        monitor = RecordingMonitor(net)
        BatchSimulator(design, batch_size=9, engine=engine).run(
            BatchRandomStimulus(design, 9, seed=2), 25,
            monitors=[monitor], warmup=2,
        )
        recorders[engine] = monitor.seen
    assert len(recorders["python"]) == len(recorders["bitslice"])
    for a, b in zip(recorders["python"], recorders["bitslice"]):
        np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Program cache
# ----------------------------------------------------------------------
def test_bitslice_cache_hits_on_identical_structure():
    cache = bitslice_cache()
    cache.clear()
    BitsliceSimulator(design1())
    misses_after_first = cache.misses
    BitsliceSimulator(design1())
    assert cache.misses == misses_after_first
    assert cache.hits >= 1
    assert len(cache) >= 1
    stats = cache.stats()
    assert stats["hits"] == cache.hits


def test_compile_bitslice_source_is_recorded():
    program = compile_bitslice(design1())
    assert "def _bs_step(v, s, pi, LM, hlp):" in program.step_source
    assert "def _bs_commit(v, s, LM):" in program.commit_source
    assert program.n_planes == sum(net.width for net in design1().nets)
