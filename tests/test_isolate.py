"""Tests for the isolation netlist transform (Section 5.2)."""

import pytest

from repro.boolean.expr import FALSE, TRUE, var
from repro.core.activation import derive_activation_functions
from repro.core.isolate import is_isolated, isolate_candidate
from repro.errors import IsolationError
from repro.netlist.banks import AndBank, LatchBank, OrBank
from repro.netlist.validate import validate_design


def isolate_a1(fig1, style):
    working = fig1.copy()
    analysis = derive_activation_functions(working)
    a1 = working.cell("a1")
    instance = isolate_candidate(working, a1, analysis.of_module(a1), style)
    return working, instance


class TestTransform:
    @pytest.mark.parametrize(
        "style,bank_cls", [("and", AndBank), ("or", OrBank), ("latch", LatchBank)]
    )
    def test_banks_inserted_per_operand(self, fig1, style, bank_cls):
        working, instance = isolate_a1(fig1, style)
        assert len(instance.banks) == 2  # two operands
        assert all(isinstance(b, bank_cls) for b in instance.banks)
        validate_design(working)

    def test_module_inputs_rewired_to_banks(self, fig1):
        working, instance = isolate_a1(fig1, "and")
        a1 = working.cell("a1")
        for port in ("A", "B"):
            driver = a1.net(port).driver
            assert driver is not None and driver.cell in instance.banks

    def test_activation_logic_tagged(self, fig1):
        working, instance = isolate_a1(fig1, "and")
        assert instance.activation_cells  # S2*G1 + !S0*S1*G0 needs gates
        for cell in instance.activation_cells:
            assert cell.isolation_role == "activation"
        for bank in instance.banks:
            assert bank.isolation_role == "bank"

    def test_shared_activation_net(self, fig1):
        working, instance = isolate_a1(fig1, "and")
        for bank in instance.banks:
            assert bank.net("EN") is instance.activation_net

    def test_gated_bits(self, fig1):
        _working, instance = isolate_a1(fig1, "and")
        assert instance.gated_bits == 16

    def test_is_isolated_detection(self, fig1):
        working, _ = isolate_a1(fig1, "and")
        assert is_isolated(working.cell("a1"))
        assert not is_isolated(working.cell("a0"))


class TestRejections:
    def test_double_isolation_rejected(self, fig1):
        working, _ = isolate_a1(fig1, "and")
        with pytest.raises(IsolationError):
            isolate_candidate(working, working.cell("a1"), var("G0"), "and")

    def test_constant_true_rejected(self, fig1):
        working = fig1.copy()
        with pytest.raises(IsolationError):
            isolate_candidate(working, working.cell("a1"), TRUE, "and")

    def test_constant_false_rejected(self, fig1):
        working = fig1.copy()
        with pytest.raises(IsolationError):
            isolate_candidate(working, working.cell("a1"), FALSE, "and")

    def test_unknown_style_rejected(self, fig1):
        working = fig1.copy()
        with pytest.raises(IsolationError):
            isolate_candidate(working, working.cell("a1"), var("G0"), "tri-state")

    def test_non_module_rejected(self, fig1):
        working = fig1.copy()
        with pytest.raises(IsolationError):
            isolate_candidate(working, working.cell("m0"), var("G0"), "and")


class TestFunctionalBehaviour:
    def test_and_isolation_forces_zero_when_idle(self, fig1):
        from repro.sim.engine import Simulator

        working, instance = isolate_a1(fig1, "and")
        sim = Simulator(working)
        # G0=G1=0, S2=0: a1 fully redundant -> AS=0, bank outputs 0.
        settled = sim.step(
            {"A": 5, "B": 9, "C": 3, "S0": 1, "S1": 0, "S2": 0, "G0": 0, "G1": 0}
        )
        a1 = working.cell("a1")
        assert settled[a1.net("A")] == 0
        assert settled[a1.net("B")] == 0
        assert settled[a1.net("Y")] == 0

    def test_pass_through_when_active(self, fig1):
        from repro.sim.engine import Simulator

        working, instance = isolate_a1(fig1, "and")
        sim = Simulator(working)
        # S2=1, G1=1: a1's result is stored -> AS=1.
        settled = sim.step(
            {"A": 5, "B": 9, "C": 3, "S0": 1, "S1": 0, "S2": 1, "G0": 0, "G1": 1}
        )
        a1 = working.cell("a1")
        assert settled[a1.net("Y")] == 12  # 9 + 3

    def test_or_isolation_forces_ones_when_idle(self, fig1):
        from repro.sim.engine import Simulator

        working, _ = isolate_a1(fig1, "or")
        sim = Simulator(working)
        settled = sim.step(
            {"A": 5, "B": 9, "C": 3, "S0": 1, "S1": 0, "S2": 0, "G0": 0, "G1": 0}
        )
        a1 = working.cell("a1")
        assert settled[a1.net("A")] == 0xFF

    def test_shared_operand_net_gets_two_banks(self):
        """A module squaring its input (A and B on the same net) gets one
        bank per port, both reading that net."""
        from repro.core.activation import derive_activation_functions
        from repro.netlist.builder import DesignBuilder

        b = DesignBuilder("square")
        x = b.input("X", 8)
        g = b.input("G", 1)
        squared = b.mul(x, x, name="sq", width=8)
        b.output(b.register(squared, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        instance = isolate_candidate(
            d, d.cell("sq"), analysis.of_module(d.cell("sq")), "and"
        )
        assert len(instance.banks) == 2
        assert all(bank.net("D") is d.net("X") for bank in instance.banks)
        from repro.netlist.validate import validate_design

        validate_design(d)
        from repro.sim.engine import Simulator

        sim = Simulator(d)
        settled = sim.step({"X": 7, "G": 1})
        assert settled[d.cell("sq").net("Y")] == 49

    def test_latch_isolation_freezes_operands(self, fig1):
        from repro.sim.engine import Simulator

        working, _ = isolate_a1(fig1, "latch")
        sim = Simulator(working)
        active = {"A": 5, "B": 9, "C": 3, "S0": 1, "S1": 0, "S2": 1, "G0": 0, "G1": 1}
        sim.step(active)
        sim.commit()
        idle = {"A": 5, "B": 40, "C": 7, "S0": 1, "S1": 0, "S2": 0, "G0": 0, "G1": 0}
        settled = sim.step(idle)
        a1 = working.cell("a1")
        assert settled[a1.net("A")] == 9  # frozen at last active operand
        assert settled[a1.net("B")] == 3
