"""Unit tests for arithmetic modules."""

import pytest

from repro.errors import NetlistError
from repro.netlist.arith import (
    Adder,
    Comparator,
    MacUnit,
    Multiplier,
    Shifter,
    Subtractor,
    arith_kinds,
)
from repro.netlist.design import Design


def wire(cell, widths):
    d = Design("t")
    d.add_cell(cell)
    for port, width in widths.items():
        d.connect(cell, port, d.add_net(f"n_{port}", width))
    return cell


class TestAdderSubtractor:
    def test_addition(self):
        a = wire(Adder("a"), {"A": 8, "B": 8, "Y": 8})
        assert a.evaluate({"A": 100, "B": 55})["Y"] == 155

    def test_addition_wraps_to_output_width(self):
        a = wire(Adder("a"), {"A": 8, "B": 8, "Y": 8})
        assert a.evaluate({"A": 200, "B": 100})["Y"] == (300 & 0xFF)

    def test_subtraction(self):
        s = wire(Subtractor("s"), {"A": 8, "B": 8, "Y": 8})
        assert s.evaluate({"A": 9, "B": 4})["Y"] == 5

    def test_subtraction_wraps_on_underflow(self):
        s = wire(Subtractor("s"), {"A": 8, "B": 8, "Y": 8})
        assert s.evaluate({"A": 0, "B": 1})["Y"] == 0xFF

    def test_operand_width_inference(self):
        d = Design("t")
        a = d.add_cell(Adder("a"))
        d.connect(a, "A", d.add_net("na", 12))
        assert a.port_width("B") == 12


class TestMultiplier:
    def test_product(self):
        m = wire(Multiplier("m"), {"A": 8, "B": 8, "Y": 16})
        assert m.evaluate({"A": 12, "B": 11})["Y"] == 132

    def test_product_truncated(self):
        m = wire(Multiplier("m"), {"A": 8, "B": 8, "Y": 8})
        assert m.evaluate({"A": 200, "B": 200})["Y"] == (200 * 200) & 0xFF

    def test_complexity_exceeds_adder(self):
        assert Multiplier("m").complexity > Adder("a").complexity


class TestComparator:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("eq", 5, 5, 1),
            ("eq", 5, 6, 0),
            ("ne", 5, 6, 1),
            ("lt", 3, 7, 1),
            ("lt", 7, 3, 0),
            ("le", 7, 7, 1),
            ("gt", 9, 2, 1),
            ("ge", 2, 2, 1),
        ],
    )
    def test_relations(self, op, a, b, expected):
        c = wire(Comparator("c", op=op), {"A": 8, "B": 8, "Y": 1})
        assert c.evaluate({"A": a, "B": b})["Y"] == expected

    def test_output_must_be_one_bit(self):
        c = Comparator("c", op="lt")
        assert c.port_width("Y") == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(NetlistError):
            Comparator("c", op="spaceship")


class TestShifter:
    def test_left_shift(self):
        s = wire(Shifter("s", direction="left"), {"A": 8, "B": 3, "Y": 8})
        assert s.evaluate({"A": 0b0011, "B": 2})["Y"] == 0b1100

    def test_right_shift(self):
        s = wire(Shifter("s", direction="right"), {"A": 8, "B": 3, "Y": 8})
        assert s.evaluate({"A": 0b1100, "B": 2})["Y"] == 0b0011

    def test_left_shift_drops_high_bits(self):
        s = wire(Shifter("s", direction="left"), {"A": 8, "B": 3, "Y": 8})
        assert s.evaluate({"A": 0xFF, "B": 4})["Y"] == 0xF0

    def test_bad_direction_rejected(self):
        with pytest.raises(NetlistError):
            Shifter("s", direction="sideways")


class TestMac:
    def test_multiply_accumulate(self):
        m = wire(MacUnit("m"), {"A": 8, "B": 8, "C": 16, "Y": 16})
        assert m.evaluate({"A": 10, "B": 20, "C": 5})["Y"] == 205

    def test_three_operands(self):
        assert MacUnit("m").data_input_ports == ["A", "B", "C"]


def test_arith_kinds_enumerates_all():
    kinds = arith_kinds()
    assert set(kinds) == {"add", "sub", "mul", "cmp", "shift", "mac", "divmod"}
