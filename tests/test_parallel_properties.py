"""Property tests of the sharding algebra (hypothesis).

Two algebraic facts make sharded execution order-independent:

* :func:`merge_shard_stats` is associative and commutative — any
  grouping/order of partial merges yields the same statistics, because
  the merge canonicalises by shard index;
* :func:`derive_shard_seed` is injective over practical ``(seed,
  shard_index)`` domains — no two shards ever share a stimulus stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.parallel import (
    MergedBatchStats,
    ShardStats,
    derive_shard_seed,
    merge_shard_stats,
    plan_shards,
)

NET_NAMES = ("a", "b", "y")
CYCLES = 40
PROBE_CYCLES = 39


def _shard(index: int, lanes: int, rng: np.random.Generator) -> ShardStats:
    return ShardStats(
        shard_index=index,
        lanes=lanes,
        cycles=CYCLES,
        toggle_counts={
            name: rng.integers(0, CYCLES, size=lanes, dtype=np.uint64)
            for name in NET_NAMES
        },
        probe_true={
            "en": rng.integers(0, PROBE_CYCLES, size=lanes, dtype=np.int64)
        },
        probe_cycles=PROBE_CYCLES,
    )


@st.composite
def shard_sets(draw):
    """A list of 2-5 shards with distinct indices and random counters."""
    n = draw(st.integers(min_value=2, max_value=5))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    lanes = draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n)
    )
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    return [_shard(i, l, rng) for i, l in zip(indices, lanes)]


def _equal(a: MergedBatchStats, b: MergedBatchStats) -> bool:
    if a.batch_size != b.batch_size or a.cycles != b.cycles:
        return False
    if set(a.toggles) != set(b.toggles) or set(a.probe_true) != set(b.probe_true):
        return False
    return all(
        np.array_equal(a.toggles[n], b.toggles[n]) for n in a.toggles
    ) and all(np.array_equal(a.probe_true[n], b.probe_true[n]) for n in a.probe_true)


@settings(max_examples=60, deadline=None)
@given(shards=shard_sets(), order_seed=st.integers(min_value=0, max_value=2**16))
def test_merge_commutative(shards, order_seed):
    shuffled = list(shards)
    np.random.default_rng(order_seed).shuffle(shuffled)
    assert _equal(merge_shard_stats(shards), merge_shard_stats(shuffled))


@settings(max_examples=60, deadline=None)
@given(shards=shard_sets(), split=st.integers(min_value=1, max_value=4))
def test_merge_associative(shards, split):
    split = min(split, len(shards) - 1)
    left, right = shards[:split], shards[split:]
    # (left ⊔ right) == merge of the partial merges, either nesting.
    flat = merge_shard_stats(shards)
    nested_lr = merge_shard_stats(merge_shard_stats(left), merge_shard_stats(right))
    nested_rl = merge_shard_stats(merge_shard_stats(right), merge_shard_stats(left))
    assert _equal(flat, nested_lr)
    assert _equal(flat, nested_rl)


@settings(max_examples=60, deadline=None)
@given(shards=shard_sets())
def test_merge_preserves_totals(shards):
    merged = merge_shard_stats(shards)
    assert merged.batch_size == sum(s.lanes for s in shards)
    for name in NET_NAMES:
        assert merged.toggles[name].sum() == sum(
            s.toggle_counts[name].sum() for s in shards
        )


def test_merge_rejects_duplicate_indices():
    rng = np.random.default_rng(0)
    with pytest.raises(SimulationError):
        merge_shard_stats([_shard(3, 2, rng), _shard(3, 2, rng)])


def test_merge_rejects_mismatched_cycles():
    rng = np.random.default_rng(0)
    a, b = _shard(0, 2, rng), _shard(1, 2, rng)
    b.cycles += 1
    with pytest.raises(SimulationError):
        merge_shard_stats([a, b])


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**63 - 1),
            st.integers(min_value=0, max_value=4095),
        ),
        min_size=2,
        max_size=32,
        unique=True,
    )
)
def test_derive_shard_seed_injective(pairs):
    derived = [derive_shard_seed(seed, shard) for seed, shard in pairs]
    assert len(set(derived)) == len(derived)
    assert all(0 <= s < 2**63 for s in derived)


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**63 - 1),
    shard=st.integers(min_value=0, max_value=4095),
)
def test_derive_shard_seed_stable(seed, shard):
    # Stable across calls (and, by construction, across processes).
    assert derive_shard_seed(seed, shard) == derive_shard_seed(seed, shard)


@settings(max_examples=60, deadline=None)
@given(
    batch_size=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    max_lanes=st.integers(min_value=1, max_value=16),
)
def test_plan_shards_covers_batch(batch_size, seed, max_lanes):
    plan = plan_shards(batch_size, seed=seed, max_lanes_per_shard=max_lanes)
    assert sum(s.lanes for s in plan) == batch_size
    assert max(s.lanes for s in plan) - min(s.lanes for s in plan) <= 1
    assert [s.index for s in plan] == list(range(len(plan)))
    assert len({s.seed for s in plan}) == len(plan)
