"""Smoke tests: the shipped examples must run end to end.

Each example is executed in-process (runpy) with its module-level
constants patched down where needed so the suite stays fast. The slower
scenario scripts (`reused_ip_fir`, `soc_system`,
`activation_statistics_sweep`, `control_dominated_alu`) are exercised by
their underlying APIs throughout the suite and verified manually /
in benchmarks; here we pin the three quick ones.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    return runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "AS_a0 = G0" in out
        assert "Observable equivalence verified" in out

    def test_power_profile(self, capsys):
        run_example("power_profile.py")
        out = capsys.readouterr().out
        assert "isolated power" in out
        assert "mean reduction" in out

    def test_what_if_analysis(self, capsys):
        run_example("what_if_analysis.py")
        out = capsys.readouterr().out
        assert "redundant computation" in out
        assert "achieved" in out

    def test_all_examples_importable(self):
        """Every example parses and has a main() entry point."""
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            compile(source, str(path), "exec")
            assert "def main()" in source, path.name
            assert '"""' in source.split("\n", 2)[2] or source.startswith(
                '#!'
            ), f"{path.name} lacks a docstring"
