"""Tests for structural control-logic expansion (control_function)."""

import itertools

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import FALSE, TRUE, and_, not_, or_, var
from repro.core.controlfn import control_function
from repro.netlist.builder import DesignBuilder
from repro.sim.engine import Simulator


def control_design():
    """One of everything the expansion sees through."""
    b = DesignBuilder("ctl")
    a = b.input("a", 1)
    c = b.input("c", 1)
    sel = b.input("sel", 1)
    outs = {
        "and": b.and_(a, c),
        "or": b.or_(a, c),
        "nand": b.nand(a, c),
        "nor": b.nor(a, c),
        "xor": b.xor(a, c),
        "xnor": b.xnor(a, c),
        "not": b.not_(a),
        "buf": b.buf(c),
        "mux": b.mux(sel, a, c),
        "const": b.const(1, 1),
    }
    for name, net in outs.items():
        b.output(net, f"O_{name}")
    return b.build(), outs


class TestExpansion:
    def test_gate_expansions_match_semantics(self):
        design, outs = control_design()
        manager = BddManager()
        expected = {
            "and": and_(var("a"), var("c")),
            "or": or_(var("a"), var("c")),
            "nand": not_(and_(var("a"), var("c"))),
            "nor": not_(or_(var("a"), var("c"))),
            "xor": or_(and_(var("a"), not_(var("c"))), and_(not_(var("a")), var("c"))),
            "xnor": not_(
                or_(and_(var("a"), not_(var("c"))), and_(not_(var("a")), var("c")))
            ),
            "not": not_(var("a")),
            "buf": var("c"),
            "mux": or_(and_(not_(var("sel")), var("a")), and_(var("sel"), var("c"))),
        }
        for name, expr in expected.items():
            assert manager.equivalent(control_function(outs[name]), expr), name

    def test_constant_folds(self):
        design, outs = control_design()
        assert control_function(outs["const"]) == TRUE

    def test_expansion_matches_simulation(self):
        """The expanded function agrees with the simulator on every input."""
        design, outs = control_design()
        sim = Simulator(design)
        for bits in itertools.product((0, 1), repeat=3):
            env = dict(zip(("a", "c", "sel"), bits))
            settled = sim.step(env)
            for name, net in outs.items():
                if name == "const":
                    continue
                expr = control_function(net)
                assert expr.evaluate(env) == bool(settled[net]), (name, env)

    def test_register_output_is_atomic(self, d2):
        # ph0 comparator output: a module output -> atomic variable.
        f = control_function(d2.net("ph0"))
        assert f == var("ph0")

    def test_wide_net_rejected(self, d1):
        with pytest.raises(ValueError):
            control_function(d1.net("X0"))

    def test_bitselect_names_bitref(self):
        b = DesignBuilder("bs")
        bus = b.input("BUS", 4)
        from repro.netlist.logic import BitSelect

        cell = b.design.add_cell(BitSelect("tap", 3))
        b.design.connect(cell, "A", bus)
        out = b.design.add_net("tapped", 1)
        b.design.connect(cell, "Y", out)
        b.output(out, "O")
        d = b.build()
        assert control_function(d.net("tapped")) == var("BUS[3]")
