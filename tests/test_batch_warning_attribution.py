"""Attribution of the bitslice->compiled batch degradation warning.

When ``BatchSimulator(engine="bitslice")`` cannot lower a design, it
degrades to the compiled engine with a ``RuntimeWarning``. That warning
must name the *user's* call site, not a line inside ``repro`` — the same
convention ``resolve_run_config`` follows for its deprecation warnings
(see ``tests/test_runconfig.py``). These tests pin ``filename`` on the
warning record for both the direct constructor path (``stacklevel=2``)
and the ``run_shard`` wrapper path (``stacklevel=3``).
"""

from __future__ import annotations

import pytest

import repro.sim.bitslice as bitslice_mod
from repro.errors import CompilationError
from repro.designs import design1
from repro.parallel.shard import ShardSpec, run_shard
from repro.sim.batch import BatchSimulator


class _AlwaysFails:
    """Stand-in kernel whose construction always fails to lower."""

    def __init__(self, design, *args, **kwargs):
        raise CompilationError("synthetic lowering failure", unit="settle_0")


@pytest.fixture
def broken_bitslice(monkeypatch):
    monkeypatch.setattr(bitslice_mod, "BitsliceBatchKernel", _AlwaysFails)


def test_direct_constructor_warning_names_this_file(broken_bitslice):
    with pytest.warns(RuntimeWarning, match="falling back") as record:
        sim = BatchSimulator(design1(), batch_size=4, engine="bitslice")
    assert sim.engine == "compiled"
    assert sim.fallback_reason is not None
    assert "synthetic lowering failure" in sim.fallback_reason
    assert len(record) == 1
    assert record[0].filename == __file__


def test_run_shard_warning_names_this_file(broken_bitslice):
    """run_shard builds the simulator on the caller's behalf; the warning
    must skip the wrapper frame and land here."""
    with pytest.warns(RuntimeWarning, match="falling back") as record:
        stats = run_shard(
            design1(),
            ShardSpec(index=0, lanes=4, seed=7),
            cycles=10,
            engine="bitslice",
        )
    assert stats.cycles == 10
    assert len(record) == 1
    assert record[0].filename == __file__
