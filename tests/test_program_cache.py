"""The structure-keyed compiled-program cache and incremental recompile."""

from __future__ import annotations

import pytest

import repro.designs as designs
from repro.core.candidates import find_candidates
from repro.core.isolate import deisolate_candidate, isolate_candidate
from repro.sim.compile import (
    CompiledSimulator,
    ProgramCache,
    compile_design,
    design_structure_hash,
)


@pytest.fixture
def cache():
    return ProgramCache()


class TestStructureHash:
    def test_stable_across_reconstruction(self):
        assert design_structure_hash(designs.design1()) == design_structure_hash(
            designs.design1()
        )

    def test_copy_hits_same_hash(self):
        design = designs.design1()
        assert design_structure_hash(design) == design_structure_hash(
            design.copy("renamed")
        )

    def test_transform_changes_hash(self):
        design = designs.design1()
        before = design_structure_hash(design)
        candidate = find_candidates(design)[0]
        isolate_candidate(design, candidate.cell, candidate.activation, "and")
        assert design_structure_hash(design) != before

    def test_different_designs_differ(self):
        assert design_structure_hash(designs.design1()) != design_structure_hash(
            designs.design2()
        )


class TestProgramCache:
    def test_hit_on_identical_structure(self, cache):
        first = cache.get(designs.design1())
        second = cache.get(designs.design1())
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_shared_across_design_copies(self, cache):
        design = designs.design1()
        program = cache.get(design)
        copy = design.copy("other")
        assert cache.get(copy) is program
        # The program binds per-simulator, so both copies simulate fine.
        CompiledSimulator(copy, program=program)

    def test_incremental_recompile_after_isolate(self, cache):
        design = designs.design1()
        cache.get(design)
        candidate = find_candidates(design)[0]
        isolate_candidate(design, candidate.cell, candidate.activation, "and")
        program = cache.get(design)
        # Only the transformed block (and the commit unit, if touched)
        # recompiles; untouched blocks keep their compiled functions.
        assert program.blocks_reused > 0
        assert program.blocks_compiled >= 1
        assert cache.stats()["units_reused"] >= program.blocks_reused

    def test_deisolate_is_a_cache_hit(self, cache):
        design = designs.design1()
        original_hash = design_structure_hash(design)
        original_program = cache.get(design)
        candidate = find_candidates(design)[0]
        instance = isolate_candidate(
            design, candidate.cell, candidate.activation, "and"
        )
        cache.get(design)
        deisolate_candidate(design, instance)
        assert design_structure_hash(design) == original_hash
        hits_before = cache.hits
        assert cache.get(design) is original_program
        assert cache.hits == hits_before + 1

    def test_lru_eviction(self):
        small = ProgramCache(maxsize=2)
        small.get(designs.design1())
        small.get(designs.design2())
        small.get(designs.paper_example())
        assert len(small) == 2

    def test_clear(self, cache):
        cache.get(designs.design1())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0


class TestIncrementalCompile:
    def test_stable_net_indices_across_lineage(self):
        design = designs.design1()
        before = compile_design(design)
        candidate = find_candidates(design)[0]
        isolate_candidate(design, candidate.cell, candidate.activation, "and")
        after = compile_design(design, previous=before)
        surviving = set(before.net_index) & set(after.net_index)
        assert surviving
        for name in surviving:
            assert before.net_index[name] == after.net_index[name]

    def test_fresh_compile_reuses_nothing(self):
        program = compile_design(designs.design1())
        assert program.blocks_reused == 0
        assert program.blocks_compiled >= 3  # drive + blocks + commit
