"""Tests for the phase-correlated chain design and iterative Eq.(2) use."""

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import or_, var
from repro.core import IsolationConfig, derive_activation_functions, isolate_design
from repro.core.candidates import find_candidates
from repro.core.isolate import isolate_candidate
from repro.designs import correlated_chain
from repro.sim import random_stimulus
from repro.verify import check_observable_equivalence


class TestCorrelatedChain:
    def test_activation_functions(self):
        design = correlated_chain()
        analysis = derive_activation_functions(design)
        manager = BddManager()
        assert manager.equivalent(
            analysis.of_module(design.cell("mul0")), or_(var("ph0"), var("ph1"))
        )
        assert manager.equivalent(
            analysis.of_module(design.cell("add0")), var("ph1")
        )

    def test_isolation_style_detected_on_rederive(self):
        design = correlated_chain()
        working = design.copy()
        analysis = derive_activation_functions(working)
        isolate_candidate(
            working, working.cell("mul0"),
            analysis.of_module(working.cell("mul0")), "or",
        )
        candidates = find_candidates(working)
        mul0 = next(c for c in candidates if c.name == "mul0")
        assert mul0.isolated
        assert mul0.isolation_style == "or"

    def test_full_algorithm_iterates_through_chain(self):
        design = correlated_chain()

        def stim():
            return random_stimulus(design, seed=5)

        result = isolate_design(design, stim, IsolationConfig(cycles=800))
        assert "mul0" in result.isolated_names
        # The chain is one combinational block: mul0 and add0 must be
        # isolated in different iterations (one per block per pass).
        if "add0" in result.isolated_names:
            iterations_of = {
                name: record.index
                for record in result.iterations
                for name in record.isolated
            }
            assert iterations_of["mul0"] != iterations_of["add0"]
        report = check_observable_equivalence(design, result.design, stim(), 1500)
        assert report.equivalent

    def test_power_reduction_positive(self):
        design = correlated_chain()

        def stim():
            return random_stimulus(design, seed=5)

        result = isolate_design(design, stim, IsolationConfig(cycles=800))
        assert result.power_reduction > 0.2
