"""Job-service layer: lifecycle, cache, backpressure, shutdown.

The load-bearing guarantees pinned here:

* a served result is byte-identical to the direct in-process
  ``Session`` call it proxies — and the *cached* copy is byte-identical
  to the cold one (``serve.cache.hits`` observably increments);
* the cache key is content-addressed: structurally identical designs
  share entries, any change to the design, the RunConfig's semantic
  fields or the method parameters misses;
* the queue is bounded — submissions beyond it raise
  :class:`QueueFullError` with a retry hint — and graceful shutdown
  drains everything already accepted;
* a failing job produces a structured Diagnostic-based error payload
  and never kills its worker thread.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.designs import design1, design2, paper_example
from repro.errors import (
    QueueFullError,
    ReproError,
    ServeError,
    ServiceStoppedError,
)
from repro.netlist import textio
from repro.runconfig import RunConfig
from repro.serve import DONE, FAILED, CANCELLED, QUEUED, JobService
from repro.serve.cache import ResultCache, job_cache_key
from repro.serve.jobs import METHODS, _result_estimate, _result_isolate

RUN = {"cycles": 150, "warmup": 8, "engine": "compiled", "workers": 1}


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def make_service(**kwargs) -> JobService:
    kwargs.setdefault("queue_size", 8)
    kwargs.setdefault("job_workers", 2)
    kwargs.setdefault("cache_capacity", 32)
    return JobService(**kwargs)


def direct_payload(method: str, design, params=None) -> dict:
    """What the service *should* return: the in-process Session result."""
    session = api.Session(design, run=RunConfig(**RUN))
    _, builder = METHODS[method]
    return builder(session, params or {})


class TestJobLifecycle:
    def test_estimate_matches_direct_session(self):
        service = make_service()
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=120)
            assert job.state == DONE and not job.cached
            assert canon(job.result) == canon(
                direct_payload("estimate", design1())
            )
        finally:
            service.shutdown()

    def test_isolate_on_netlist_text_matches_direct_session(self, fig1):
        service = make_service()
        try:
            job = service.submit(
                "isolate",
                design=textio.dumps(fig1),
                run=RUN,
                params={"style": "and"},
            )
            job = service.wait(job.id, timeout=120)
            assert job.state == DONE
            expected = direct_payload(
                "isolate", textio.loads(textio.dumps(fig1)), {"style": "and"}
            )
            assert canon(job.result) == canon(expected)
            assert "timings" not in job.result  # payloads carry no wall clock
        finally:
            service.shutdown()

    @pytest.mark.parametrize(
        "method,params",
        [
            ("validate", {}),
            ("activation", {}),
            ("rank", {"style": "and"}),
        ],
    )
    def test_other_methods_complete(self, method, params):
        service = make_service()
        try:
            job = service.submit(
                method, builtin="fig1", run=RUN, params=params
            )
            job = service.wait(job.id, timeout=120)
            assert job.state == DONE, job.error
            assert canon(job.result) == canon(
                direct_payload(method, paper_example(), params)
            )
        finally:
            service.shutdown()

    def test_job_metadata_and_listing(self):
        service = make_service()
        try:
            job = service.submit("estimate", builtin="fig1", run=RUN)
            service.wait(job.id, timeout=120)
            record = job.to_dict()
            assert record["state"] == DONE
            assert record["duration_s"] >= 0.0
            assert record["fingerprint"] == api.Session(paper_example()).fingerprint()
            summaries = [j.to_dict(include_result=False) for j in service.jobs()]
            assert summaries and "result" not in summaries[0]
        finally:
            service.shutdown()


class TestResultCache:
    def test_resubmission_is_served_from_cache(self):
        service = make_service()
        try:
            first = service.wait(
                service.submit("estimate", builtin="design1", run=RUN).id,
                timeout=120,
            )
            second = service.submit("estimate", builtin="design1", run=RUN)
            # Cache hits complete synchronously: no queue slot, no worker.
            assert second.state == DONE and second.cached
            assert canon(second.result) == canon(first.result)
            stats = service.cache.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            assert (
                service.recorder.metrics.value("serve.cache.hits") == 1
            )
        finally:
            service.shutdown()

    def test_structurally_identical_designs_share_an_entry(self, fig1):
        service = make_service()
        try:
            service.wait(
                service.submit("estimate", builtin="fig1", run=RUN).id,
                timeout=120,
            )
            # Same structure, different transport: builtin vs netlist text.
            job = service.submit("estimate", design=textio.dumps(fig1), run=RUN)
            assert job.cached
        finally:
            service.shutdown()

    def test_any_semantic_difference_misses(self):
        service = make_service()
        try:
            base = service.submit("estimate", builtin="fig1", run=RUN)
            service.wait(base.id, timeout=120)
            different = [
                service.submit(
                    "estimate", builtin="fig1", run=dict(RUN, seed=7)
                ),
                service.submit(
                    "estimate", builtin="fig1", run=dict(RUN, cycles=151)
                ),
                service.submit("validate", builtin="fig1", run=RUN),
                service.submit("estimate", builtin="design1", run=RUN),
            ]
            assert all(not job.cached for job in different)
            assert len({job.cache_key for job in different + [base]}) == 5
        finally:
            service.shutdown()

    def test_workers_and_trace_do_not_split_the_cache(self):
        service = make_service()
        try:
            service.wait(
                service.submit("estimate", builtin="fig1", run=RUN).id,
                timeout=120,
            )
            job = service.submit(
                "estimate", builtin="fig1", run=dict(RUN, workers=2)
            )
            assert job.cached  # bit-exact across worker counts by contract
        finally:
            service.shutdown()

    def test_lru_eviction_is_counted(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == (True, {"v": 1})  # refreshes 'a'
        cache.put("c", {"v": 3})  # evicts 'b' (LRU)
        assert cache.get("b") == (False, None)
        assert cache.get("a")[0] and cache.get("c")[0]
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_disables_caching(self):
        service = make_service(cache_capacity=0)
        try:
            service.wait(
                service.submit("estimate", builtin="fig1", run=RUN).id,
                timeout=120,
            )
            job = service.submit("estimate", builtin="fig1", run=RUN)
            assert not job.cached
        finally:
            service.shutdown()

    def test_cache_key_is_stable_and_canonical(self):
        key = job_cache_key("estimate", "d" * 64, "r" * 64, {"b": 1, "a": 2})
        same = job_cache_key("estimate", "d" * 64, "r" * 64, {"a": 2, "b": 1})
        assert key == same and len(key) == 64


class TestBackpressure:
    def test_queue_full_raises_with_retry_hint(self):
        service = make_service(queue_size=2, start=False)
        service.submit("estimate", builtin="fig1", run=RUN)
        service.submit("estimate", builtin="design1", run=RUN)
        with pytest.raises(QueueFullError) as excinfo:
            service.submit("estimate", builtin="design2", run=RUN)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s >= 1.0
        assert service.recorder.metrics.value("serve.jobs.rejected") == 1
        # The rejected job leaves no record behind.
        assert len(service.jobs()) == 2
        # Backlog still drains once workers start.
        service.start()
        for job in service.jobs():
            assert service.wait(job.id, timeout=120).state == DONE
        service.shutdown()

    def test_cache_hits_bypass_the_full_queue(self):
        service = make_service(queue_size=1, start=False)
        queued = service.submit("estimate", builtin="fig1", run=RUN)
        with pytest.raises(QueueFullError):
            service.submit("estimate", builtin="design1", run=RUN)
        # A cached answer needs no queue slot, so it sails past the
        # backpressure that just rejected a cold submission.
        payload = {"design": "fig1"}
        service.cache.put(queued.cache_key, payload)
        job = service.submit("estimate", builtin="fig1", run=RUN)
        assert job.cached and job.state == DONE and job.result == payload
        service.start()
        service.shutdown(drain=False)


class TestValidationAndFailure:
    def test_submit_time_validation(self):
        service = make_service(start=False)
        with pytest.raises(ServeError, match="unknown method"):
            service.submit("frobnicate", builtin="fig1")
        with pytest.raises(ServeError, match="unknown parameter"):
            service.submit("estimate", builtin="fig1", params={"style": "and"})
        with pytest.raises(ServeError, match="unknown style"):
            service.submit("isolate", builtin="fig1", params={"style": "nand"})
        with pytest.raises(ServeError, match="exactly one"):
            service.submit("estimate")
        with pytest.raises(ServeError, match="unknown builtin"):
            service.submit("estimate", builtin="nonesuch")
        with pytest.raises(ReproError, match="unknown RunConfig field"):
            service.submit("estimate", builtin="fig1", run={"cycels": 5})
        with pytest.raises(ReproError):
            service.submit("estimate", builtin="fig1", design="net A 1\n")
        assert service.jobs() == []  # nothing slipped into the log

    def test_failing_job_reports_diagnostics_and_worker_survives(self, monkeypatch):
        def boom(session, params):
            raise ReproError("injected failure")

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), boom))
        service = make_service(job_workers=1)
        try:
            job = service.wait(
                service.submit("estimate", builtin="fig1", run=RUN).id,
                timeout=60,
            )
            assert job.state == FAILED and job.result is None
            assert job.error["type"] == "ReproError"
            (diag,) = job.error["diagnostics"]
            assert diag["severity"] == "error"
            assert "injected failure" in diag["message"]
            # The (single) worker is still alive for the next job.
            ok = service.wait(
                service.submit("validate", builtin="fig1", run=RUN).id,
                timeout=60,
            )
            assert ok.state == DONE
        finally:
            service.shutdown()

    def test_cancel_queued_job(self):
        service = make_service(start=False)
        job = service.submit("estimate", builtin="fig1", run=RUN)
        assert service.cancel(job.id).state == CANCELLED
        service.start()
        assert service.wait(job.id, timeout=60).state == CANCELLED
        service.shutdown()


class TestShutdown:
    def test_drain_finishes_queued_jobs(self):
        service = make_service(start=False, queue_size=8)
        jobs = [
            service.submit("estimate", builtin=name, run=RUN)
            for name in ("fig1", "design1", "design2")
        ]
        service.start()
        service.shutdown(drain=True)
        assert all(service.get(job.id).state == DONE for job in jobs)

    def test_no_drain_cancels_queued_jobs(self):
        service = make_service(start=False, queue_size=8)
        job = service.submit("estimate", builtin="fig1", run=RUN)
        service.shutdown(drain=False)
        assert service.get(job.id).state == CANCELLED

    def test_submissions_after_shutdown_are_refused(self):
        service = make_service()
        service.shutdown()
        with pytest.raises(ServiceStoppedError) as excinfo:
            service.submit("estimate", builtin="fig1")
        assert excinfo.value.status == 503

    def test_shutdown_is_idempotent(self):
        service = make_service()
        service.shutdown()
        service.shutdown()


class TestConcurrentClients:
    def test_concurrent_submissions_match_serial_results(self):
        """N client threads, distinct designs — byte-identical to serial."""
        designs = {
            "fig1": paper_example(),
            "design1": design1(),
            "design2": design2(),
        }
        expected = {
            name: canon(direct_payload("estimate", d))
            for name, d in designs.items()
        }
        service = make_service(job_workers=3, queue_size=16)
        results = {}
        errors = []

        def client(name):
            try:
                job = service.submit("estimate", builtin=name, run=RUN)
                results[name] = service.wait(job.id, timeout=120)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=client, args=(name,))
                for name in designs
                for _ in range(2)  # two clients per design: one should hit
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not errors
            for name, job in results.items():
                assert job.state == DONE
                assert canon(job.result) == expected[name]
        finally:
            service.shutdown()
