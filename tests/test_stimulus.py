"""Unit tests for stimulus generators, including statistics convergence."""

import random

import pytest

from repro.errors import StimulusError
from repro.sim.stimulus import (
    CompositeStimulus,
    ConstantStream,
    ControlStream,
    DataStream,
    SequenceStimulus,
    random_stimulus,
)


def measure_stream(stream, cycles=20000, seed=1):
    rng = random.Random(seed)
    values = [stream.next_value(rng) for _ in range(cycles)]
    ones = sum(values) / cycles
    toggles = sum(1 for a, b in zip(values, values[1:]) if a != b) / (cycles - 1)
    return ones, toggles


class TestControlStream:
    @pytest.mark.parametrize("p,t", [(0.5, 0.5), (0.2, 0.1), (0.8, 0.2), (0.5, 0.05)])
    def test_statistics_converge(self, p, t):
        ones, toggles = measure_stream(ControlStream(p, t))
        assert abs(ones - p) < 0.05
        assert abs(toggles - t) < 0.04

    def test_default_toggle_rate_is_memoryless(self):
        ones, toggles = measure_stream(ControlStream(0.3))
        assert abs(ones - 0.3) < 0.05
        assert abs(toggles - 2 * 0.3 * 0.7) < 0.04

    def test_infeasible_rate_rejected(self):
        with pytest.raises(StimulusError):
            ControlStream(0.1, 0.5)  # max is 0.2

    def test_bad_probability_rejected(self):
        with pytest.raises(StimulusError):
            ControlStream(1.5)

    def test_constant_extremes(self):
        ones, toggles = measure_stream(ControlStream(1.0), cycles=100)
        assert ones == 1.0 and toggles == 0.0
        ones, toggles = measure_stream(ControlStream(0.0), cycles=100)
        assert ones == 0.0


class TestDataStream:
    def test_toggle_density_controls_bit_flips(self):
        rng = random.Random(0)
        stream = DataStream(width=16, toggle_density=0.25)
        prev = stream.next_value(rng)
        flips = 0
        cycles = 5000
        for _ in range(cycles):
            value = stream.next_value(rng)
            flips += bin(prev ^ value).count("1")
            prev = value
        per_bit = flips / cycles / 16
        assert abs(per_bit - 0.25) < 0.03

    def test_uniform_mode_spans_range(self):
        rng = random.Random(0)
        stream = DataStream(width=8, uniform=True)
        values = {stream.next_value(rng) for _ in range(2000)}
        assert len(values) > 200

    def test_bad_density_rejected(self):
        with pytest.raises(StimulusError):
            DataStream(8, toggle_density=1.5)


class TestCompositeAndSequence:
    def test_values_stable_within_cycle(self):
        stim = CompositeStimulus({"x": DataStream(8)}, seed=0)
        first = dict(stim.values(0))
        again = dict(stim.values(0))
        assert first == again

    def test_values_advance_across_cycles(self):
        stim = CompositeStimulus({"x": DataStream(8, uniform=True)}, seed=0)
        seen = {stim.values(c)["x"] for c in range(50)}
        assert len(seen) > 10

    def test_seed_reproducibility(self):
        a = CompositeStimulus({"x": DataStream(8, uniform=True)}, seed=9)
        b = CompositeStimulus({"x": DataStream(8, uniform=True)}, seed=9)
        assert [a.values(c)["x"] for c in range(20)] == [
            b.values(c)["x"] for c in range(20)
        ]

    def test_sequence_repeats_last(self):
        stim = SequenceStimulus([{"X": 1}, {"X": 2}])
        assert stim.values(0)["X"] == 1
        assert stim.values(5)["X"] == 2

    def test_sequence_wrap(self):
        stim = SequenceStimulus([{"X": 1}, {"X": 2}], wrap=True)
        assert stim.values(2)["X"] == 1
        assert stim.values(3)["X"] == 2

    def test_empty_sequence_rejected(self):
        with pytest.raises(StimulusError):
            SequenceStimulus([])

    def test_from_csv(self):
        stim = SequenceStimulus.from_csv("A,B\n1,0x10\n2,3\n")
        assert stim.values(0) == {"A": 1, "B": 16}
        assert stim.values(1) == {"A": 2, "B": 3}

    def test_from_csv_ignores_cycle_column(self):
        stim = SequenceStimulus.from_csv("cycle,A\n0,7\n1,8\n")
        assert stim.values(0) == {"A": 7}

    def test_from_csv_errors(self):
        with pytest.raises(StimulusError):
            SequenceStimulus.from_csv("A\n")  # no rows
        with pytest.raises(StimulusError):
            SequenceStimulus.from_csv("A,B\n1\n")  # wrong arity
        with pytest.raises(StimulusError):
            SequenceStimulus.from_csv("A\nbanana\n")  # non-numeric

    def test_from_csv_file_round_trips_nettrace(self, tiny_design, tmp_path):
        """A trace captured by NetTrace replays as a stimulus."""
        from repro.sim.engine import simulate
        from repro.sim.trace import NetTrace

        pi_nets = [pi.net("Y") for pi in tiny_design.primary_inputs]
        trace = NetTrace(pi_nets)
        original = SequenceStimulus(
            [
                {"A": 1, "C": 2, "S": 0, "G": 1},
                {"A": 9, "C": 4, "S": 1, "G": 0},
            ]
        )
        simulate(tiny_design, original, 2, monitors=[trace])
        path = tmp_path / "trace.csv"
        path.write_text(trace.to_csv())
        replay = SequenceStimulus.from_csv_file(str(path))
        assert replay.values(0) == original.values(0)
        assert replay.values(1) == original.values(1)

    def test_constant_stream(self):
        rng = random.Random(0)
        s = ConstantStream(7)
        assert [s.next_value(rng) for _ in range(3)] == [7, 7, 7]


class TestRandomStimulus:
    def test_covers_every_input(self, d1):
        stim = random_stimulus(d1, seed=0)
        values = stim.values(0)
        for pi in d1.primary_inputs:
            assert pi.name in values

    def test_override_replaces_stream(self, d1):
        stim = random_stimulus(d1, seed=0, overrides={"EN": ConstantStream(1)})
        assert all(stim.values(c)["EN"] == 1 for c in range(20))

    def test_unknown_override_rejected(self, d1):
        with pytest.raises(StimulusError):
            random_stimulus(d1, overrides={"GHOST": ConstantStream(0)})

    def test_control_statistics_applied(self, d1):
        stim = random_stimulus(d1, seed=1, control_probability=0.1)
        ones = sum(stim.values(c)["S0"] for c in range(5000)) / 5000
        assert abs(ones - 0.1) < 0.05
