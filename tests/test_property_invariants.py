"""Property-based invariants across the substrate layers.

Complements ``test_property_isolation.py`` (which owns the correctness
properties of the core transform) with structural invariants of the
simulator, power estimator, timing engine and serialisation, all over
seeded random designs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import random_datapath
from repro.errors import NetlistError
from repro.netlist import textio
from repro.netlist.compose import merge_designs
from repro.power.estimator import estimate_power
from repro.power.library import default_library
from repro.sim.engine import Simulator
from repro.sim.stimulus import random_stimulus
from repro.timing.sta import analyze_timing


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_simulated_values_respect_widths(seed):
    design = random_datapath(seed=seed, layers=2, modules_per_layer=2)
    stim = random_stimulus(design, seed=seed)
    sim = Simulator(design)
    for cycle in range(40):
        settled = sim.step(stim.values(cycle))
        for net, value in settled.items():
            assert 0 <= value <= net.mask, f"{net.name} out of range"
        sim.commit()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500))
def test_power_is_nonnegative_and_finite(seed):
    design = random_datapath(seed=seed, layers=2, modules_per_layer=3)
    breakdown = estimate_power(design, random_stimulus(design, seed=1), 200)
    assert breakdown.total_power_mw >= 0
    for cell, energy in breakdown.energy_per_cell.items():
        assert energy >= 0, cell.name
        assert energy < 1e6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500))
def test_sta_arrival_monotone_along_paths(seed):
    design = random_datapath(seed=seed, layers=3, modules_per_layer=2)
    library = default_library()
    report = analyze_timing(design, library)
    for cell in design.combinational_cells:
        for out_pin in cell.output_pins:
            out_arrival = report.arrival[out_pin.net]
            for in_pin in cell.input_pins:
                in_arrival = report.arrival.get(in_pin.net, 0.0)
                assert out_arrival >= in_arrival - 1e-9
    # Worst slack is indeed the minimum over constrained nets.
    slacks = [
        report.required[net] - report.arrival.get(net, 0.0)
        for net in report.required
    ]
    assert abs(report.worst_slack - min(slacks)) < 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), copies=st.integers(1, 3))
def test_merge_scales_linearly(seed, copies):
    part = random_datapath(seed=seed, layers=2, modules_per_layer=2)
    merged = merge_designs(
        "m", {f"u{i}": part for i in range(copies)}
    )
    assert merged.stats()["cells"] == copies * part.stats()["cells"]
    assert merged.stats()["modules"] == copies * part.stats()["modules"]


@settings(max_examples=30, deadline=None)
@given(
    junk=st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=120
    )
)
def test_textio_parser_rejects_garbage_cleanly(junk):
    """Arbitrary text either parses or raises NetlistError — never
    anything else."""
    try:
        textio.loads("design fuzz\n" + junk)
    except NetlistError:
        pass


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_simulation_is_deterministic(seed):
    design = random_datapath(seed=seed, layers=2, modules_per_layer=2)

    def trace():
        stim = random_stimulus(design, seed=seed + 7)
        sim = Simulator(design)
        values = []
        for cycle in range(30):
            settled = sim.step(stim.values(cycle))
            values.append(tuple(sorted((n.name, v) for n, v in settled.items())))
            sim.commit()
        return values

    assert trace() == trace()
