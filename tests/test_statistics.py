"""Tests for the convergence/uncertainty indicators on measurements."""

import pytest

from repro.boolean.expr import var
from repro.sim.engine import simulate
from repro.sim.monitor import ToggleMonitor
from repro.sim.probes import ExpressionProbe, ProbeSet
from repro.sim.stimulus import ControlStream, SequenceStimulus, random_stimulus


class TestProbeStderr:
    def test_shrinks_with_cycles(self, tiny_design):
        def stderr(cycles):
            probes = ProbeSet({"g": var("G")})
            stim = random_stimulus(tiny_design, seed=2, control_probability=0.3)
            simulate(tiny_design, stim, cycles, monitors=[probes])
            return probes["g"].probability_stderr

        assert stderr(4000) < stderr(200)

    def test_estimate_within_a_few_stderr(self, tiny_design):
        probes = ProbeSet({"g": var("G")})
        stim = random_stimulus(tiny_design, seed=2, control_probability=0.3)
        simulate(tiny_design, stim, 4000, monitors=[probes])
        probe = probes["g"]
        assert abs(probe.probability - 0.3) < 5 * probe.probability_stderr + 0.01

    def test_degenerate_cases(self):
        probe = ExpressionProbe("p", var("x"))
        assert probe.probability_stderr == 0.0
        probe.sample({"x": 1})
        probe.sample({"x": 1})
        assert probe.probability_stderr == 0.0  # p == 1 exactly


class TestToggleRateStderr:
    def test_shrinks_with_cycles(self, tiny_design):
        def stderr(cycles):
            monitor = ToggleMonitor()
            stim = random_stimulus(tiny_design, seed=2)
            simulate(tiny_design, stim, cycles, monitors=[monitor])
            return monitor.toggle_rate_stderr(tiny_design.net("A"))

        assert stderr(4000) < stderr(200)

    def test_zero_for_quiet_net(self, tiny_design):
        monitor = ToggleMonitor()
        stim = SequenceStimulus([{"A": 0, "C": 0, "S": 0, "G": 0}])
        simulate(tiny_design, stim, 100, monitors=[monitor])
        assert monitor.toggle_rate_stderr(tiny_design.net("A")) == 0.0

    def test_covers_true_rate(self, tiny_design):
        monitor = ToggleMonitor()
        stim = random_stimulus(tiny_design, seed=3, data_toggle_density=0.25)
        simulate(tiny_design, stim, 4000, monitors=[monitor])
        net = tiny_design.net("A")
        rate = monitor.toggle_rate(net)
        stderr = monitor.toggle_rate_stderr(net)
        assert abs(rate - 0.25 * net.width) < 5 * stderr + 0.05
