"""Tests for the cost model h(c) = ω_p·rP − ω_a·rA (Section 5.1)."""

import pytest

from repro.core.candidates import find_candidates
from repro.core.cost import CostModel, CostWeights
from repro.core.savings import SavingsModel
from repro.power.estimator import PowerEstimator
from repro.power.library import default_library
from repro.sim.engine import Simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import ControlStream, random_stimulus


@pytest.fixture
def scored(d1):
    library = default_library()
    candidates = find_candidates(d1)
    savings = SavingsModel(d1, candidates, library)
    monitor = ToggleMonitor()
    stim = random_stimulus(
        d1, seed=1, control_probability=0.3, overrides={"EN": ControlStream(0.2, 0.1)}
    )
    Simulator(d1).run(stim, 1500, monitors=[monitor, savings.probes], warmup=16)
    savings.calibrate(monitor)
    total_power = PowerEstimator(library).breakdown(d1, monitor).total_power_mw
    cost = CostModel(
        savings, library, total_power_mw=total_power, total_area=library.total_area(d1)
    )
    return cost, candidates


def by_name(candidates, name):
    return next(c for c in candidates if c.name == name)


class TestCostFunction:
    def test_h_combines_power_and_area(self, scored):
        cost, candidates = scored
        result = cost.evaluate(by_name(candidates, "mul0"), "and")
        expected = (
            cost.weights.omega_p * result.relative_power
            - cost.weights.omega_a * result.relative_area
        )
        assert result.h == pytest.approx(expected)

    def test_big_idle_module_scores_best(self, scored):
        cost, candidates = scored
        scores = {
            c.name: cost.evaluate(c, "and").h
            for c in candidates
            if not c.always_active
        }
        assert max(scores, key=scores.get) in ("mul0", "mul1")

    def test_acceptance_threshold(self, scored):
        cost, candidates = scored
        result = cost.evaluate(by_name(candidates, "mul0"), "and")
        assert result.accepted == (result.h >= cost.weights.h_min)
        assert result.accepted  # big multiplier at 80% idle must pass

    def test_area_weight_can_veto(self, d1, scored):
        _cost, candidates = scored
        base_cost, _ = scored
        greedy = CostModel(
            base_cost.savings_model,
            base_cost.library,
            base_cost.total_power_mw,
            base_cost.total_area,
            weights=CostWeights(omega_p=0.0, omega_a=1.0),
        )
        result = greedy.evaluate(by_name(candidates, "mul0"), "and")
        assert result.h < 0  # pure area cost: never worth it
        assert not result.accepted

    def test_isolation_area_by_style(self, scored):
        cost, candidates = scored
        mul0 = by_name(candidates, "mul0")
        assert cost.isolation_area(mul0, "latch") > cost.isolation_area(mul0, "and")

    def test_isolation_area_counts_bits_and_literals(self, scored):
        cost, candidates = scored
        mul0 = by_name(candidates, "mul0")
        per_bit = cost.library.params_by_kind("andbank").area_per_bit
        gate = cost.library.params_by_kind("and2").area_per_bit
        expected = per_bit * mul0.isolable_bits + gate * mul0.activation.literal_count()
        assert cost.isolation_area(mul0, "and") == pytest.approx(expected)

    def test_default_weights(self):
        weights = CostWeights()
        assert weights.omega_p == 1.0
        assert 0 < weights.omega_a <= 1.0
        assert weights.h_min == 0.0
