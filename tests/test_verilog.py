"""Unit tests for Verilog export."""

from repro.core import IsolationConfig, isolate_design
from repro.netlist.verilog import to_verilog
from repro.sim import random_stimulus


class TestVerilogExport:
    def test_module_skeleton(self, fig1):
        text = to_verilog(fig1)
        assert text.startswith("module paper_fig1 (")
        assert text.rstrip().endswith("endmodule")
        assert "input clk;" in text

    def test_ports_declared(self, fig1):
        text = to_verilog(fig1)
        assert "input [7:0] A;" in text
        assert "output [7:0] OUT0;" in text
        assert "input S0;" in text

    def test_arith_and_mux_assigns(self, fig1):
        text = to_verilog(fig1)
        assert "assign a0 = A + m1;" in text
        assert "? " in text  # mux ternary chains

    def test_register_always_blocks(self, fig1):
        text = to_verilog(fig1)
        assert "always @(posedge clk)" in text
        assert "if (G0)" in text
        assert "r0 <= a0;" in text

    def test_every_net_declared(self, d2):
        text = to_verilog(d2)
        for net in d2.nets:
            assert net.name in text

    def test_isolated_design_exports(self, d1):
        result = isolate_design(
            d1,
            lambda: random_stimulus(d1, seed=1, control_probability=0.2),
            IsolationConfig(cycles=300),
        )
        text = to_verilog(result.design)
        # Banks appear as masked assigns with replication.
        assert "{12{" in text or "& " in text
        assert "endmodule" in text

    def test_latch_style_exports_always_blocks(self, d1):
        result = isolate_design(
            d1,
            lambda: random_stimulus(d1, seed=1, control_probability=0.2),
            IsolationConfig(style="latch", cycles=300),
        )
        text = to_verilog(result.design)
        assert "always @*" in text
