"""The ``repro validate`` subcommand and typed CLI failure paths."""

import json

import pytest

from repro.cli import main

GOOD = """\
design tiny
net A 8
net Y 8
cell pi IN Y=A
cell not n0 A=A Y=Y
cell po OUT A=Y
"""

# Y has no driver (error); W has no readers (warning).
BROKEN = """\
design sick
net A 8
net Y 8
net W 8
cell pi IN Y=A
cell pi IN2 Y=W
cell po OUT A=Y
"""


def _write(tmp_path, text, name="design.rtl"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_validate_healthy_exits_zero(tmp_path, capsys):
    code = main(["validate", _write(tmp_path, GOOD)])
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out


def test_validate_builtin_exits_zero(capsys):
    assert main(["validate", "--builtin", "design1"]) == 0


def test_validate_broken_exits_one(tmp_path, capsys):
    code = main(["validate", _write(tmp_path, BROKEN)])
    out = capsys.readouterr().out
    assert code == 1
    assert "[error] no-driver" in out
    assert "[warning] no-readers" in out
    assert "FAILED" in out


def test_validate_allow_dangling_hides_warnings(tmp_path, capsys):
    code = main(["validate", "--allow-dangling", _write(tmp_path, BROKEN)])
    out = capsys.readouterr().out
    assert code == 1  # the error remains
    assert "no-readers" not in out


def test_validate_json_output(tmp_path, capsys):
    code = main(["validate", "--json", _write(tmp_path, BROKEN)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["design"] == "sick"
    assert payload["ok"] is False
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "no-driver" in codes
    entry = next(d for d in payload["diagnostics"] if d["code"] == "no-driver")
    assert entry["severity"] == "error"
    assert entry["net"] == "Y"


def test_validate_json_healthy(tmp_path, capsys):
    code = main(["validate", "--json", _write(tmp_path, GOOD)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["diagnostics"] == []


def test_validate_with_fault_campaign(capsys):
    code = main(
        ["validate", "--builtin", "fig1", "--faults", "1", "--cycles", "60", "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    campaign = payload["fault_campaign"]
    assert campaign["faults"] > 0
    assert campaign["silent"] == 0
    assert campaign["detected"] + campaign["masked"] == campaign["faults"]


def test_validate_campaign_text_summary(capsys):
    code = main(["validate", "--builtin", "fig1", "--faults", "1", "--cycles", "60"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fault campaign" in out
    assert "0 SILENT" in out


# ----------------------------------------------------------------------
# Typed failure paths: every ReproError exits 2, no tracebacks.
# ----------------------------------------------------------------------
def test_missing_netlist_file_exits_two(capsys):
    code = main(["validate", "/nonexistent/path.rtl"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error: ")
    assert "cannot read netlist" in err


def test_malformed_netlist_exits_two(tmp_path, capsys):
    code = main(["validate", _write(tmp_path, "design t\nnet A eight\n")])
    err = capsys.readouterr().err
    assert code == 2
    assert "line 2" in err


def test_unknown_builtin_exits_two(capsys):
    code = main(["validate", "--builtin", "nope"])
    assert code == 2
    assert "unknown builtin" in capsys.readouterr().err


def test_no_input_exits_two(capsys):
    code = main(["validate"])
    assert code == 2
    assert "provide a netlist" in capsys.readouterr().err
