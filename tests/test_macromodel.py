"""Unit tests for macro power models p_i(Tr)."""

import pytest

from repro.errors import PowerModelError
from repro.netlist.logic import AndGate
from repro.power.estimator import PowerEstimator
from repro.power.macromodel import MacroPowerModel
from repro.sim.engine import Simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import random_stimulus


class TestMacroModel:
    def test_rejects_non_modules(self, tiny_design, library):
        with pytest.raises(PowerModelError):
            MacroPowerModel(tiny_design.cell("m0"), library)

    def test_linear_in_input_rates(self, tiny_design, library):
        model = MacroPowerModel(tiny_design.cell("a0"), library)
        p0 = model.power_mw({"A": 0.0, "B": 0.0})
        p1 = model.power_mw({"A": 2.0, "B": 0.0})
        p2 = model.power_mw({"A": 4.0, "B": 0.0})
        assert p1 > p0
        assert p2 - p1 == pytest.approx(p1 - p0)

    def test_missing_ports_default_to_zero(self, tiny_design, library):
        model = MacroPowerModel(tiny_design.cell("a0"), library)
        assert model.power_mw({}) == model.power_mw({"A": 0.0, "B": 0.0})

    def test_output_rate_saturates_at_width(self, tiny_design, library):
        model = MacroPowerModel(tiny_design.cell("a0"), library, output_ratio=10.0)
        # Huge input rates: output term capped at bus width.
        capped = model.energy({"A": 100.0, "B": 100.0})
        slightly_more = model.energy({"A": 101.0, "B": 100.0})
        e_in = library.input_toggle_energy(tiny_design.cell("a0"))
        assert slightly_more - capped == pytest.approx(e_in)

    def test_calibration_from_measurement(self, d1, library):
        monitor = ToggleMonitor()
        Simulator(d1).run(random_stimulus(d1, seed=2), 500, monitors=[monitor])
        cell = d1.cell("add0")
        model = MacroPowerModel.from_measurement(cell, library, monitor)
        # The calibrated model reproduces the measured power closely.
        rates = {
            port: monitor.toggle_rate(cell.net(port)) for port in ("A", "B")
        }
        measured = library.power_mw(
            PowerEstimator(library).cell_energy(cell, monitor)
        )
        assert model.power_mw(rates) == pytest.approx(measured, rel=0.05)

    def test_calibration_with_no_activity_falls_back(self, d1, library):
        monitor = ToggleMonitor()
        monitor.begin(d1)
        monitor.cycles = 2  # no observed toggles at all
        model = MacroPowerModel.from_measurement(d1.cell("add0"), library, monitor)
        assert model.output_ratio is not None
        assert model.power_mw({"A": 1.0, "B": 1.0}) > 0
