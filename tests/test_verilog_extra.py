"""Additional Verilog-export coverage: every cell template, syntactic
sanity of the full benchmark suite's output."""

import re

import pytest

from repro.designs import (
    alu_control_dominated,
    cordic_pipeline,
    design1,
    design2,
    fir_datapath,
    paper_example,
    shared_bus_datapath,
    soc_datapath,
)
from repro.netlist.builder import DesignBuilder
from repro.netlist.verilog import to_verilog


def all_ops_design():
    b = DesignBuilder("ops")
    x = b.input("X", 8)
    y = b.input("Y", 8)
    sh = b.input("SH", 3)
    sel = b.input("SEL", 2)
    g = b.input("G", 1)
    nets = [
        b.add(x, y), b.sub(x, y), b.mul(x, y, width=8),
        b.compare(x, y, op="ge"), b.shift(x, sh, direction="right"),
        b.mac(x, y, b.input("ACC", 16)),
        b.and_(x, y), b.or_(x, y), b.nand(x, y), b.nor(x, y),
        b.xor(x, y), b.xnor(x, y), b.not_(x), b.buf(y),
    ]
    q, r = b.divmod_(x, y)
    nets += [q, r]
    nets.append(b.mux(sel, x, y, q, r))
    nets.append(b.latch(x, g))
    from repro.netlist.logic import BitSelect

    tap = b.design.add_cell(BitSelect("tap", 2))
    b.design.connect(tap, "A", x)
    tap_net = b.design.add_net("tap_out", 1)
    b.design.connect(tap, "Y", tap_net)
    nets.append(tap_net)
    for i, net in enumerate(nets):
        b.output(b.register(net, name=f"reg{i}"), f"O{i}")
    return b.build()


class TestTemplates:
    def test_every_cell_kind_renders(self):
        text = to_verilog(all_ops_design())
        for fragment in (
            " + ", " - ", " * ", " >= ", " >> ", " & ", " | ",
            "~(", " ^ ", " / ", " % ", "[2]",
        ):
            assert fragment in text, f"missing {fragment!r}"
        assert "always @*" in text  # latch
        assert "always @(posedge clk)" in text

    @pytest.mark.parametrize(
        "maker",
        [
            paper_example,
            design1,
            design2,
            fir_datapath,
            alu_control_dominated,
            shared_bus_datapath,
            lambda: cordic_pipeline(stages=2),
            soc_datapath,
        ],
    )
    def test_benchmark_suite_exports(self, maker):
        design = maker()
        text = to_verilog(design)
        assert text.count("module ") == 1
        assert text.count("endmodule") == 1
        # Balanced parens overall (cheap syntax sanity).
        assert text.count("(") == text.count(")")
        # Every assign references declared identifiers only.
        declared = set(re.findall(r"\$?\b(?:wire|reg|input|output)\b[^;]*?(\w+);", text))
        declared |= {design.name, "clk"}
        for cell in design.primary_outputs:
            assert cell.name in text

    def test_clock_name_customisable(self, fig1):
        text = to_verilog(fig1, clock_name="sysclk")
        assert "posedge sysclk" in text
        assert "input sysclk;" in text
