"""Tests for the power-savings model (paper Section 4)."""

import pytest

from repro.core.candidates import find_candidates
from repro.core.savings import SavingsModel
from repro.power.estimator import PowerEstimator
from repro.power.library import default_library
from repro.sim.engine import Simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import ControlStream, random_stimulus


def measured_model(design, seed=1, p=0.3, overrides=None, cycles=1500):
    library = default_library()
    candidates = find_candidates(design)
    model = SavingsModel(design, candidates, library)
    monitor = ToggleMonitor()
    stim = random_stimulus(design, seed=seed, control_probability=p, overrides=overrides)
    Simulator(design).run(stim, cycles, monitors=[monitor, model.probes], warmup=16)
    model.calibrate(monitor)
    return model, candidates, monitor, library


def by_name(candidates, name):
    return next(c for c in candidates if c.name == name)


class TestMeasuredQuantities:
    def test_activation_probability_tracks_stimulus(self, d1):
        model, candidates, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.2, 0.1)}
        )
        mul0 = by_name(candidates, "mul0")
        assert model.activation_probability(mul0) == pytest.approx(0.2, abs=0.06)

    def test_scaled_rate_exceeds_average(self, d1):
        """Eq. (2): Tr' = Tr / Pr(AS) concentrates toggles in active cycles."""
        model, candidates, monitor, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.25, 0.1)}
        )
        mul0 = by_name(candidates, "mul0")
        average = monitor.toggle_rate(mul0.cell.net("Y"))
        scaled = model.scaled_output_rate(mul0)
        assert scaled > average
        assert scaled == pytest.approx(
            average / model.activation_probability(mul0), rel=1e-9
        )

    def test_scaled_rate_zero_when_never_active(self, d1):
        model, candidates, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.0)}
        )
        mul0 = by_name(candidates, "mul0")
        assert model.scaled_output_rate(mul0) == 0.0

    def test_requires_calibration(self, d1):
        from repro.errors import IsolationError

        library = default_library()
        candidates = find_candidates(d1)
        model = SavingsModel(d1, candidates, library)
        with pytest.raises(IsolationError):
            model.primary_savings_simple(by_name(candidates, "mul0"))


class TestPrimarySavings:
    def test_savings_grow_with_idleness(self, d1):
        busy_model, busy_c, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.9, 0.1)}
        )
        idle_model, idle_c, _m2, _l2 = measured_model(
            d1, overrides={"EN": ControlStream(0.1, 0.1)}
        )
        busy = busy_model.primary_savings_simple(by_name(busy_c, "mul0"))
        idle = idle_model.primary_savings_simple(by_name(idle_c, "mul0"))
        assert idle > busy

    def test_refined_close_to_simple_for_env_fed_module(self, d1):
        """mul0's operands come straight from PIs: both models agree."""
        model, candidates, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.3, 0.1)}
        )
        mul0 = by_name(candidates, "mul0")
        simple = model.primary_savings_simple(mul0)
        refined = model.primary_savings(mul0)
        assert refined == pytest.approx(simple, rel=0.15)

    def test_multiplier_saves_more_than_adder(self, d1):
        model, candidates, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.3, 0.1)}
        )
        assert model.primary_savings(
            by_name(candidates, "mul0")
        ) > model.primary_savings(by_name(candidates, "add0"))

    def test_prediction_tracks_measured_savings(self, d1):
        """Ablation C in miniature: predicted ΔP vs measured ΔP."""
        from repro.core.isolate import isolate_candidate

        overrides = {"EN": ControlStream(0.2, 0.05)}
        model, candidates, monitor, library = measured_model(
            d1, overrides=overrides, cycles=3000
        )
        mul0 = by_name(candidates, "mul0")
        predicted = model.estimate(mul0, "and").net_mw

        baseline = PowerEstimator(library).breakdown(d1, monitor).total_power_mw
        working = d1.copy()
        wc = find_candidates(working)
        isolate_candidate(
            working, working.cell("mul0"), by_name(wc, "mul0").activation, "and"
        )
        monitor2 = ToggleMonitor()
        stim = random_stimulus(
            working, seed=1, control_probability=0.3, overrides=overrides
        )
        Simulator(working).run(stim, 3000, monitors=[monitor2], warmup=16)
        after = PowerEstimator(library).breakdown(working, monitor2).total_power_mw
        measured = baseline - after
        assert predicted == pytest.approx(measured, rel=0.35)


class TestSecondarySavings:
    def test_fanout_candidate_sees_secondary_savings(self, fig1):
        model, candidates, _m, _l = measured_model(fig1, p=0.3)
        a1 = by_name(candidates, "a1")
        assert a1.fanout  # a1 feeds a0
        assert model.secondary_savings(a1) >= 0.0

    def test_no_fanout_no_secondary(self, fig1):
        model, candidates, _m, _l = measured_model(fig1, p=0.3)
        a0 = by_name(candidates, "a0")
        assert model.secondary_savings(a0) == 0.0

    def test_isolated_sink_reduces_secondary(self, fig1):
        """The z_j decision variable: isolating a0 first shrinks what
        isolating a1 can additionally save inside a0."""
        model, candidates, _m, _l = measured_model(fig1, p=0.3)
        a1 = by_name(candidates, "a1")
        before = model.secondary_savings(a1)
        by_name(candidates, "a0").isolated = True
        after = model.secondary_savings(a1)
        assert after <= before + 1e-12


class TestOverhead:
    def test_latch_overhead_exceeds_gate_overhead_for_long_bursts(self, d1):
        """With rare activation edges the gate banks' forced-transition
        penalty vanishes while the latches' standing cost remains."""
        model, candidates, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.3, 0.01)}
        )
        mul0 = by_name(candidates, "mul0")
        assert model.overhead(mul0, "latch") > model.overhead(mul0, "and")

    def test_gate_overhead_grows_with_activation_toggle_rate(self, d1):
        """The forced-transition penalty scales with activation edges."""
        slow_model, slow_c, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.3, 0.02)}
        )
        fast_model, fast_c, _m2, _l2 = measured_model(
            d1, overrides={"EN": ControlStream(0.3, 0.4)}
        )
        slow = slow_model.overhead(by_name(slow_c, "mul0"), "and")
        fast = fast_model.overhead(by_name(fast_c, "mul0"), "and")
        assert fast > slow

    def test_overhead_positive(self, d1):
        model, candidates, _m, _l = measured_model(d1, p=0.3)
        for c in candidates:
            for style in ("and", "or", "latch"):
                assert model.overhead(c, style) > 0

    def test_estimate_bundles_terms(self, d1):
        model, candidates, _m, _l = measured_model(
            d1, overrides={"EN": ControlStream(0.2, 0.1)}
        )
        mul0 = by_name(candidates, "mul0")
        estimate = model.estimate(mul0, "and")
        assert estimate.net_mw == pytest.approx(
            estimate.primary_mw + estimate.secondary_mw - estimate.overhead_mw
        )
        assert estimate.idle_probability == pytest.approx(0.8, abs=0.06)
