"""Unit tests for the Design container: registration, rewiring, copying."""

import pytest

from repro.errors import NetlistError
from repro.netlist.arith import Adder
from repro.netlist.builder import DesignBuilder
from repro.netlist.design import Design
from repro.netlist.logic import AndGate


class TestRegistration:
    def test_duplicate_net_name_rejected(self):
        d = Design("t")
        d.add_net("x", 4)
        with pytest.raises(NetlistError):
            d.add_net("x", 8)

    def test_duplicate_cell_name_rejected(self):
        d = Design("t")
        d.add_cell(Adder("a"))
        with pytest.raises(NetlistError):
            d.add_cell(AndGate("a"))

    def test_connect_foreign_cell_rejected(self):
        d = Design("t")
        net = d.add_net("x", 4)
        foreign = Adder("a")  # never added
        with pytest.raises(NetlistError):
            d.connect(foreign, "A", net)

    def test_connect_foreign_net_rejected(self):
        d = Design("t")
        cell = d.add_cell(Adder("a"))
        other = Design("u").add_net("x", 4)
        with pytest.raises(NetlistError):
            d.connect(cell, "A", other)

    def test_lookup_missing_raises(self):
        d = Design("t")
        with pytest.raises(NetlistError):
            d.net("missing")
        with pytest.raises(NetlistError):
            d.cell("missing")

    def test_fresh_names_unique(self):
        d = Design("t")
        names = {d.fresh_net_name("n") for _ in range(50)}
        assert len(names) == 50
        d.add_net("n_99", 1)
        assert d.fresh_net_name("n") != "n_99"


class TestQueries:
    def test_categories(self, tiny_design):
        d = tiny_design
        assert [c.name for c in d.primary_inputs] == sorted(
            c.name for c in d.primary_inputs
        ) or True
        assert len(d.primary_inputs) == 4
        assert len(d.primary_outputs) == 1
        assert len(d.registers) == 1
        assert len(d.datapath_modules) == 1

    def test_combinational_cells_exclude_registers_and_ports(self, tiny_design):
        names = {c.name for c in tiny_design.combinational_cells}
        assert "a0" in names and "m0" in names
        assert "r0" not in names

    def test_input_output_net_helpers(self, tiny_design):
        assert tiny_design.input_net("A").width == 8
        assert tiny_design.output_net("OUT").width == 8
        with pytest.raises(NetlistError):
            tiny_design.input_net("OUT")

    def test_stats_counts(self, tiny_design):
        stats = tiny_design.stats()
        assert stats["cells"] == len(tiny_design.cells)
        assert stats["modules"] == 1
        assert stats["registers"] == 1


class TestRewire:
    def test_rewire_moves_reader(self, tiny_design):
        d = tiny_design
        mux = d.cell("m0")
        old = mux.net("D0")
        new = d.add_net("fresh", old.width)
        returned = d.rewire_input(mux, "D0", new)
        assert returned is old
        assert mux.net("D0") is new
        assert all(
            not (p.cell is mux and p.port == "D0") for p in old.readers
        )
        assert any(p.cell is mux and p.port == "D0" for p in new.readers)

    def test_rewire_output_rejected(self, tiny_design):
        d = tiny_design
        adder = d.cell("a0")
        new = d.add_net("fresh", 8)
        with pytest.raises(NetlistError):
            d.rewire_input(adder, "Y", new)


class TestCopy:
    def test_copy_is_deep(self, tiny_design):
        dup = tiny_design.copy("dup")
        assert dup.name == "dup"
        assert dup.cell("a0") is not tiny_design.cell("a0")
        assert dup.net("A") is not tiny_design.net("A")
        # Copy is internally consistent: its pins point at its own nets.
        assert dup.net("A").readers[0].cell is dup.cell("a0")

    def test_copy_then_mutate_leaves_original(self, tiny_design):
        dup = tiny_design.copy()
        dup.add_net("extra", 1)
        assert not tiny_design.has_net("extra")
