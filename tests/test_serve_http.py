"""HTTP front end + client: protocol, backpressure, metrics, shutdown.

Each test runs a real :class:`ReproServer` on an ephemeral port with
the stdlib :class:`ServeClient` against it — the exact wire path
``repro serve`` / ``repro submit`` use.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro import api
from repro.designs import paper_example
from repro.errors import QueueFullError, ServeError
from repro.runconfig import RunConfig
from repro.serve import JobService, ServeClient, make_server
from repro.serve.jobs import METHODS

RUN = {"cycles": 120, "warmup": 8, "engine": "compiled", "workers": 1}


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture
def server():
    srv = make_server(
        port=0,
        service=JobService(queue_size=4, job_workers=1, cache_capacity=16),
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.service.shutdown(drain=False)
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout=30.0)


class TestProtocol:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok" and health["accepting"]
        assert health["queue_size"] == 4 and health["job_workers"] == 1

    def test_submit_wait_and_cache_roundtrip(self, client):
        job = client.submit_and_wait("estimate", builtin="fig1", run=RUN)
        assert job["state"] == "done" and not job["cached"]
        session = api.Session(paper_example(), run=RunConfig(**RUN))
        _, builder = METHODS["estimate"]
        assert canon(job["result"]) == canon(builder(session, {}))

        again = client.submit("estimate", builtin="fig1", run=RUN)
        assert again["state"] == "done" and again["cached"]
        assert canon(again["result"]) == canon(job["result"])
        assert job["fingerprint"] == session.fingerprint()

    def test_job_listing_and_lookup(self, client):
        job = client.submit_and_wait("validate", builtin="fig1", run=RUN)
        summaries = client.jobs()
        assert summaries[0]["id"] == job["id"]
        assert "result" not in summaries[0]
        assert client.job(job["id"])["result"]["ok"] is True

    def test_error_bodies_are_structured(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit("frobnicate", builtin="fig1")
        assert excinfo.value.status == 400
        assert "unknown method" in str(excinfo.value)

        with pytest.raises(ServeError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404

        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/nonesuch")
        assert excinfo.value.status == 404

    def test_malformed_json_is_a_400_not_a_crash(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["diagnostics"][0]["severity"] == "error"

    def test_failed_job_surfaces_diagnostics(self, client, server, monkeypatch):
        def boom(session, params):
            raise ServeError("injected")

        monkeypatch.setitem(METHODS, "activation", (frozenset(), boom))
        job = client.submit_and_wait("activation", builtin="fig1", run=RUN)
        assert job["state"] == "failed"
        assert job["error"]["diagnostics"][0]["message"] == "injected"


class TestBackpressure:
    def test_429_with_retry_after(self):
        srv = make_server(
            port=0,
            service=JobService(queue_size=1, job_workers=1, start=False),
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(srv.url, timeout=10.0)
            client.submit("estimate", builtin="fig1", run=RUN)
            with pytest.raises(QueueFullError) as excinfo:
                client.submit("estimate", builtin="design1", run=RUN)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s >= 1.0  # the Retry-After header
        finally:
            srv.service.start()
            srv.service.shutdown(drain=False)
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=10)


class TestMetricsEndpoint:
    def test_prometheus_scrape(self, client):
        client.submit_and_wait("estimate", builtin="fig1", run=RUN)
        client.submit("estimate", builtin="fig1", run=RUN)  # cache hit
        text = client.metrics_text()
        assert "# TYPE serve_cache_hits counter" in text
        assert "serve_cache_hits 1.0" in text
        assert "serve_cache_misses 1.0" in text
        assert 'serve_jobs_submitted{method="estimate"} 2.0' in text
        assert 'serve_jobs_completed{state="done"} 2.0' in text
        assert "serve_queue_depth" in text
        assert "serve_requests" in text
        # Job execution spans were absorbed into the service trace.
        spans = {s.name for root in client_spans(client) for s in root.walk()}
        assert {"serve.job", "serve.request", "power.estimate"} <= spans


def client_spans(client):
    # Reach through the fixture: tests run in-process with the server.
    return client._test_recorder.tracer.roots


@pytest.fixture(autouse=True)
def _attach_recorder(request):
    # Give tests that want span introspection access to the service
    # recorder without widening the client API.
    if "client" in request.fixturenames and "server" in request.fixturenames:
        client = request.getfixturevalue("client")
        server = request.getfixturevalue("server")
        client._test_recorder = server.service.recorder
    yield


class TestGracefulShutdown:
    def test_shutdown_endpoint_drains_and_stops(self):
        srv = make_server(
            port=0, service=JobService(queue_size=8, job_workers=1)
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(srv.url, timeout=10.0)
        job = client.submit("estimate", builtin="fig1", run=RUN)
        assert client.shutdown() == {"status": "draining"}
        thread.join(timeout=30)
        assert not thread.is_alive()
        # Everything accepted before the drain still completed.
        assert srv.service.get(job["id"]).state == "done"
        assert not srv.service.accepting
        with pytest.raises(ServeError):
            client.health()
        srv.server_close()
