"""Unit tests for net bit references."""

import pytest

from repro.errors import NetlistError
from repro.netlist.bitref import (
    format_bitref,
    materialize_variable_nets,
    parse_bitref,
    resolve_variables,
    sample_env,
)
from repro.netlist.builder import DesignBuilder
from repro.netlist.logic import BitSelect


@pytest.fixture
def design_with_bus():
    b = DesignBuilder("bus")
    s = b.input("SEL", 2)
    x = b.input("X", 8)
    y = b.input("Y", 8)
    out = b.mux(s, x, y, x, y, name="m")
    b.output(b.register(out, name="r"), "OUT")
    return b.build()


class TestFormatParse:
    def test_plain_name_for_one_bit(self, design_with_bus):
        net = design_with_bus.net("X")
        with pytest.raises(NetlistError):
            format_bitref(net)  # 8-bit net needs an index
        sel = design_with_bus.net("SEL")
        assert format_bitref(sel, 1) == "SEL[1]"

    def test_parse_plain(self, design_with_bus):
        b = DesignBuilder("t")
        g = b.input("G", 1)
        b.output(g, "O")
        d = b.build()
        net, bit = parse_bitref(d, "G")
        assert net.name == "G" and bit == 0

    def test_parse_bitref(self, design_with_bus):
        net, bit = parse_bitref(design_with_bus, "SEL[1]")
        assert net.name == "SEL" and bit == 1

    def test_parse_rejects_wide_plain(self, design_with_bus):
        with pytest.raises(NetlistError):
            parse_bitref(design_with_bus, "SEL")

    def test_parse_rejects_out_of_range(self, design_with_bus):
        with pytest.raises(NetlistError):
            parse_bitref(design_with_bus, "SEL[5]")

    def test_parse_rejects_unknown(self, design_with_bus):
        with pytest.raises(NetlistError):
            parse_bitref(design_with_bus, "GHOST")

    def test_format_rejects_out_of_range(self, design_with_bus):
        with pytest.raises(NetlistError):
            format_bitref(design_with_bus.net("SEL"), 7)


class TestEnvSampling:
    def test_sample_env_extracts_bits(self, design_with_bus):
        resolved = resolve_variables(design_with_bus, ["SEL[0]", "SEL[1]"])
        values = {design_with_bus.net("SEL"): 0b10}
        env = sample_env(resolved, values)
        assert env == {"SEL[0]": 0, "SEL[1]": 1}


class TestMaterialize:
    def test_creates_bitselect(self, design_with_bus):
        nets = materialize_variable_nets(design_with_bus, ["SEL[1]"])
        out = nets["SEL[1]"]
        assert out.width == 1
        assert isinstance(out.driver.cell, BitSelect)

    def test_reuses_existing_tap(self, design_with_bus):
        first = materialize_variable_nets(design_with_bus, ["SEL[1]"])
        count = len(design_with_bus.cells)
        second = materialize_variable_nets(design_with_bus, ["SEL[1]"])
        assert first["SEL[1]"] is second["SEL[1]"]
        assert len(design_with_bus.cells) == count

    def test_one_bit_net_passthrough(self):
        b = DesignBuilder("t")
        g = b.input("G", 1)
        b.output(g, "O")
        d = b.build()
        nets = materialize_variable_nets(d, ["G"])
        assert nets["G"] is d.net("G")
