"""The repro.api facade: Session, load/loads, and import-path stability."""

from __future__ import annotations

import pytest

import repro.designs as designs
from repro import api
from repro.netlist import textio


@pytest.fixture
def session():
    return api.Session(designs.paper_example(), run=api.RunConfig(cycles=200))


class TestSession:
    def test_estimate(self, session):
        breakdown = session.estimate()
        assert breakdown.total_power_mw > 0

    def test_isolate(self, session):
        result = session.isolate(style="and")
        assert result.isolated_names == ["a1"]
        assert result.final.power_mw < result.baseline.power_mw

    def test_rank(self, session):
        ranked = session.rank()
        assert ranked[0].name == "a1"

    def test_compare(self, session):
        comparison = session.compare(styles=["and"])
        assert [row.label for row in comparison.rows] == [
            "non-isolated",
            "AND-isolated",
        ]

    def test_activation(self, session):
        analysis = session.activation()
        module = session.design.cell("a1")
        assert analysis.of_module(module) is not None

    def test_simulate(self, session):
        result = session.simulate()
        assert result.cycles == 200

    def test_compiled_engine_matches_python(self):
        base = api.Session(designs.design1(), run=api.RunConfig(cycles=300))
        fast = api.Session(
            designs.design1(), run=api.RunConfig(cycles=300, engine="compiled")
        )
        py = base.isolate(style="and")
        comp = fast.isolate(style="and")
        assert py.isolated_names == comp.isolated_names
        assert py.final.power_mw == pytest.approx(comp.final.power_mw, abs=1e-12)

    def test_per_call_run_override(self, session):
        result = session.isolate(run=api.RunConfig(cycles=120, engine="compiled"))
        assert result.config.cycles == 120
        assert result.config.engine == "compiled"

    def test_stimulus_is_fresh_per_run(self, session):
        first = session.estimate().total_power_mw
        second = session.estimate().total_power_mw
        assert first == second  # same seed -> identical statistics

    def test_explicit_stimulus_object_is_copied(self):
        design = designs.paper_example()
        from repro.sim.stimulus import random_stimulus

        stim = random_stimulus(design, seed=9)
        session = api.Session(design, stimulus=stim, run=api.RunConfig(cycles=150))
        assert session.estimate().total_power_mw == session.estimate().total_power_mw

    def test_explicit_config_object(self, session):
        config = api.IsolationConfig(style="or", cycles=150)
        result = session.isolate(config=config)
        assert result.config.style == "or"


class TestLoadLoads:
    def test_loads_round_trip(self):
        text = textio.dumps(designs.paper_example())
        session = api.loads(text, run=api.RunConfig(cycles=100))
        assert session.design.name == "paper_fig1"
        assert session.estimate().total_power_mw > 0

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "d.rtl"
        textio.save(designs.paper_example(), str(path))
        session = api.load(str(path))
        assert session.design.name == "paper_fig1"


class TestImportPathStability:
    """Old deep-import paths must keep working after the facade landed."""

    def test_core_paths(self):
        from repro.core import (  # noqa: F401
            IsolationConfig,
            compare_styles,
            derive_activation_functions,
            find_candidates,
            isolate_candidate,
            isolate_design,
            rank_candidates,
        )

    def test_sim_paths(self):
        from repro.sim import Simulator, simulate  # noqa: F401
        from repro.sim.engine import Simulator as DeepSimulator  # noqa: F401
        from repro.sim.monitor import ToggleMonitor  # noqa: F401
        from repro.sim.stimulus import random_stimulus  # noqa: F401

    def test_power_paths(self):
        from repro.power import estimate_power  # noqa: F401
        from repro.power.estimator import PowerEstimator  # noqa: F401
        from repro.power.library import default_library  # noqa: F401

    def test_top_level_exports(self):
        import repro

        assert repro.RunConfig is api.RunConfig
        assert repro.api.Session is api.Session

    def test_facade_reexports(self):
        assert api.isolate_design is not None
        assert api.estimate_power is not None
        assert api.rank_candidates is not None
        assert api.compare_styles is not None
        assert api.StageTimings is not None
