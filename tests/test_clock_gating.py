"""Tests for the clock-gating model and its composition with isolation."""

import pytest

from repro.baselines import clock_gate_registers
from repro.core import IsolationConfig, isolate_design
from repro.netlist import textio
from repro.power.estimator import PowerEstimator, estimate_power
from repro.power.library import default_library
from repro.sim import ControlStream, random_stimulus
from repro.sim.engine import Simulator
from repro.sim.monitor import ToggleMonitor
from repro.verify import check_observable_equivalence


def d1_stim(design, seed=6):
    return random_stimulus(
        design,
        seed=seed,
        control_probability=0.3,
        overrides={"EN": ControlStream(0.2, 0.1)},
    )


class TestTransform:
    def test_gates_enabled_registers_only(self, d1):
        result = clock_gate_registers(d1)
        assert set(result.gated_registers) == {"r0", "r1", "r2", "acc"}
        assert "r_tag" in result.skipped_free_running

    def test_original_untouched(self, d1):
        clock_gate_registers(d1)
        assert not any(getattr(r, "clock_gated", False) for r in d1.registers)

    def test_behaviour_unchanged(self, d1):
        result = clock_gate_registers(d1)
        report = check_observable_equivalence(
            d1, result.design, d1_stim(d1), 1000
        )
        assert report.equivalent

    def test_textio_round_trip_keeps_flag(self, d1):
        result = clock_gate_registers(d1)
        reloaded = textio.loads(textio.dumps(result.design))
        reg = reloaded.cell("r0")
        assert getattr(reg, "clock_gated", False)


class TestPowerModel:
    def test_clock_gating_saves_register_power(self, d1):
        gated = clock_gate_registers(d1).design
        base = estimate_power(d1, d1_stim(d1), 1500).total_power_mw
        after = estimate_power(gated, d1_stim(gated), 1500).total_power_mw
        assert after < base

    def test_savings_scale_with_idle_enable(self, d1):
        gated = clock_gate_registers(d1).design

        def reduction(en_prob):
            overrides = {"EN": ControlStream(en_prob, 0.1)}
            stim = lambda d: random_stimulus(
                d, seed=6, control_probability=en_prob, overrides=overrides
            )
            base = estimate_power(d1, stim(d1), 1200).total_power_mw
            after = estimate_power(gated, stim(gated), 1200).total_power_mw
            return 1 - after / base

        assert reduction(0.1) > reduction(0.8)

    def test_icg_area_accounted(self, d1, library):
        gated = clock_gate_registers(d1).design
        assert library.total_area(gated) > library.total_area(d1)

    def test_one_probability_measurement(self, d1):
        monitor = ToggleMonitor()
        Simulator(d1).run(d1_stim(d1), 2000, monitors=[monitor], warmup=16)
        pr = monitor.one_probability(d1.net("EN"))
        assert pr == pytest.approx(0.2, abs=0.05)


class TestComposition:
    def test_isolation_and_clock_gating_compose(self, d1):
        """Both applied saves more than either alone (disjoint targets)."""
        stim = lambda d: d1_stim(d)
        base = estimate_power(d1, stim(d1), 1200).total_power_mw

        cg_only = clock_gate_registers(d1).design
        cg_power = estimate_power(cg_only, stim(cg_only), 1200).total_power_mw

        iso = isolate_design(d1, lambda: stim(d1), IsolationConfig(cycles=600))
        iso_power = estimate_power(iso.design, stim(iso.design), 1200).total_power_mw

        both = clock_gate_registers(iso.design).design
        both_power = estimate_power(both, stim(both), 1200).total_power_mw

        assert cg_power < base
        assert iso_power < cg_power  # datapath dominates this design
        assert both_power < iso_power
