"""Backpressure under concurrency: 429s observed, everything completes once.

The bounded-queue contract under real concurrent load:

* when the queue fills, submissions fail with 429 + ``Retry-After``
  (observed, not theoretical — the test counts the rejections);
* a client that honors the hint (``submit_and_wait(submit_retries=)``)
  eventually lands every job;
* every accepted job completes **exactly once** — no lost work, no
  double execution (attempts stay at 1, no retries recorded);
* the poll loops back off exponentially instead of hammering.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueueFullError
from repro.serve import JobService, make_server
from repro.serve.client import ServeClient
from repro.serve.jobs import METHODS

RUN = {"cycles": 120, "engine": "compiled", "workers": 1}


class TestQueueBackpressure:
    def test_http_concurrent_burst_all_complete_exactly_once(self, monkeypatch):
        # Slow the method down so a narrow queue demonstrably overflows.
        def slow_estimate(session, params):
            time.sleep(0.08)
            return {"design": session.design.name}

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), slow_estimate))
        service = JobService(queue_size=2, job_workers=1, cache_capacity=0)
        server = make_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(server.url, timeout=30.0)
        results: dict = {}
        errors: list = []

        def submit_one(index: int) -> None:
            try:
                # Distinct cycles -> distinct cache keys -> every job
                # genuinely executes (no cache collapse).
                results[index] = client.submit_and_wait(
                    "estimate",
                    builtin="design1",
                    run={**RUN, "cycles": 130 + index},
                    timeout=60.0,
                    submit_retries=50,
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((index, exc))

        workers = [
            threading.Thread(target=submit_one, args=(i,)) for i in range(8)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=120)
        try:
            assert not errors, errors
            assert len(results) == 8
            for job in results.values():
                assert job["state"] == "done"
                assert job["attempts"] == 1  # exactly one execution each
            with service._obs_lock:
                rejected = service.recorder.metrics.value("serve.jobs.rejected")
                done = service.recorder.metrics.value(
                    "serve.jobs.completed", state="done"
                )
                retries = service.recorder.metrics.value("serve.jobs.retries")
            # Backpressure was actually exercised: 8 clients against a
            # 2-slot queue + 1 worker must bounce at least once...
            assert rejected and rejected >= 1
            # ...and rejected submissions leave no job behind: exactly
            # the 8 accepted ones completed, exactly once each.
            assert done == 8
            assert retries is None
        finally:
            server.shutdown()
            service.shutdown()
            server.server_close()

    def test_queue_full_carries_retry_after_hint(self):
        service = JobService(queue_size=1, job_workers=1, start=False)
        try:
            service.submit("estimate", builtin="design1", run=RUN)
            with pytest.raises(QueueFullError) as excinfo:
                service.submit(
                    "estimate", builtin="design1", run={**RUN, "cycles": 121}
                )
            assert excinfo.value.retry_after_s >= 1.0
        finally:
            service.start()
            service.shutdown()


class FakeBackpressuredClient(ServeClient):
    """Deterministic stand-in: rejects N times, then accepts."""

    def __init__(self, rejections: int, retry_after_s: float) -> None:
        super().__init__("http://fake")
        self.rejections = rejections
        self.retry_after_s = retry_after_s
        self.submit_calls = 0
        self.sleeps: list = []

    def submit(self, *args, **kwargs) -> dict:
        self.submit_calls += 1
        if self.submit_calls <= self.rejections:
            raise QueueFullError("full", retry_after_s=self.retry_after_s)
        return {"id": "j1", "state": "done", "cached": False}


class TestClientRetryPath:
    def test_submit_and_wait_honors_retry_after(self, monkeypatch):
        client = FakeBackpressuredClient(rejections=2, retry_after_s=0.01)
        slept: list = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        job = client.submit_and_wait("estimate", submit_retries=5)
        assert job["state"] == "done"
        assert client.submit_calls == 3
        assert slept == [0.01, 0.01]  # the server's hint, not a guess

    def test_submit_and_wait_without_retries_propagates(self):
        client = FakeBackpressuredClient(rejections=1, retry_after_s=0.01)
        with pytest.raises(QueueFullError):
            client.submit_and_wait("estimate")

    def test_retry_budget_exhaustion_propagates(self, monkeypatch):
        client = FakeBackpressuredClient(rejections=10, retry_after_s=0.01)
        monkeypatch.setattr(time, "sleep", lambda s: None)
        with pytest.raises(QueueFullError):
            client.submit_and_wait("estimate", submit_retries=3)


class PollCountingClient(ServeClient):
    """Counts status polls; the job finishes after ``finish_after`` s."""

    def __init__(self, finish_after: float) -> None:
        super().__init__("http://fake")
        self.finish_after = finish_after
        self.start = time.monotonic()
        self.polls = 0

    def job(self, job_id: str) -> dict:
        self.polls += 1
        state = (
            "done"
            if time.monotonic() - self.start >= self.finish_after
            else "running"
        )
        return {"id": job_id, "state": state}


class TestPollBackoff:
    def test_client_wait_backs_off_exponentially(self):
        client = PollCountingClient(finish_after=0.5)
        job = client.wait("j1", timeout=30.0, poll_s=0.01, max_poll_s=0.2)
        assert job["state"] == "done"
        # A fixed 0.01s poll would need ~50 requests; exponential
        # backoff (0.01 -> 0.02 -> ... -> capped 0.2) needs ~10.
        assert client.polls <= 15

    def test_service_wait_backs_off(self):
        service = JobService(queue_size=2, job_workers=1, start=False)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            calls = []
            original_sleep = time.sleep

            def spy_sleep(seconds):
                calls.append(seconds)
                original_sleep(min(seconds, 0.01))

            import repro.serve.jobs as jobs_module

            real_time = jobs_module.time

            class _SpyTime:
                def __getattr__(self, name):
                    return spy_sleep if name == "sleep" else getattr(real_time, name)

            jobs_module.time = _SpyTime()
            try:
                with pytest.raises(Exception):
                    service.wait(job.id, timeout=0.3, poll_s=0.01, max_poll_s=0.1)
            finally:
                jobs_module.time = real_time
            # The requested intervals double from poll_s up to the cap
            # and stay there. (The spy shortens the *actual* sleeps, so
            # the loop runs extra iterations — assert shape, not count.
            # Individual entries can be clipped by the deadline budget.)
            assert calls, "wait() never slept"
            assert calls[0] <= 0.01 + 1e-6
            assert max(calls) <= 0.1 + 1e-6
            assert 0.1 in [round(c, 6) for c in calls]  # cap reached
            growth = calls[: calls.index(max(calls)) + 1]
            assert sorted(growth) == growth  # doubled, never shrank
        finally:
            service.start()
            service.shutdown()
