"""CLI front door of the service: ``repro serve`` and ``repro submit``.

``submit`` is driven in-process against a live ephemeral server (same
emit()/_info() contract as every other subcommand: with ``--json``,
stdout is exactly one parseable document). ``serve`` is exercised as a
real subprocess, SIGINT-drained, because its main loop owns the
process.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.serve import JobService, make_server

RUN_ARGS = ["--cycles", "120", "--engine", "compiled", "--workers", "1"]


@pytest.fixture
def server():
    srv = make_server(
        port=0, service=JobService(queue_size=8, job_workers=1, cache_capacity=8)
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.service.shutdown(drain=False)
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


class TestSubmitCommand:
    def test_submit_json_emits_one_document(self, server, capsys):
        code = main(
            ["submit", "--builtin", "fig1", "--url", server.url,
             "--method", "estimate", "--json", *RUN_ARGS]
        )
        assert code == 0
        out = capsys.readouterr().out
        job = json.loads(out)  # exactly one JSON document on stdout
        assert job["state"] == "done" and not job["cached"]
        assert job["result"]["total_power_mw"] > 0

    def test_resubmit_reports_cache_hit(self, server, capsys):
        args = ["submit", "--builtin", "fig1", "--url", server.url,
                "--method", "estimate", "--json", *RUN_ARGS]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert not first["cached"] and second["cached"]
        assert second["result"] == first["result"]

    def test_submit_netlist_file(self, server, capsys, tmp_path):
        code = main(
            ["submit", "examples/design1.rtl", "--url", server.url,
             "--method", "isolate", "--style", "and", "--json", *RUN_ARGS]
        )
        assert code == 0
        job = json.loads(capsys.readouterr().out)
        assert job["result"]["isolated"]

    def test_submit_human_output(self, server, capsys):
        code = main(
            ["submit", "--builtin", "fig1", "--url", server.url,
             "--method", "estimate", *RUN_ARGS]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total power" in out and "cached=False" in out

    def test_submit_without_design_is_a_usage_error(self, server, capsys):
        code = main(["submit", "--url", server.url, "--json"])
        assert code == 2
        assert "netlist" in capsys.readouterr().err

    def test_submit_unreachable_server_exits_2(self, capsys):
        code = main(
            ["submit", "--builtin", "fig1", "--url",
             "http://127.0.0.1:9", "--json", "--timeout", "2"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_no_wait_returns_queued_job(self, server, capsys):
        code = main(
            ["submit", "--builtin", "design1", "--url", server.url,
             "--method", "estimate", "--no-wait", "--json", *RUN_ARGS]
        )
        assert code == 0
        job = json.loads(capsys.readouterr().out)
        assert job["state"] in ("queued", "running", "done")


class TestServeCommand:
    def test_serve_subprocess_smoke(self, tmp_path):
        """Boot `repro serve`, drive it over HTTP, SIGINT-drain it."""
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--engine", "compiled", "--json"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            text=True,
        )
        try:
            ready = proc.stderr.readline()  # "serving on http://host:port ..."
            assert "serving on http://" in ready
            url = ready.split()[2]
            body = json.dumps(
                {"method": "estimate", "builtin": "fig1",
                 "run": {"cycles": 100, "engine": "compiled", "workers": 1}}
            ).encode()
            request = urllib.request.Request(
                url + "/v1/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                job = json.loads(resp.read())
            deadline = time.monotonic() + 60
            while job["state"] in ("queued", "running"):
                assert time.monotonic() < deadline
                with urllib.request.urlopen(
                    f"{url}/v1/jobs/{job['id']}", timeout=10
                ) as resp:
                    job = json.loads(resp.read())
            assert job["state"] == "done"
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0
            summary = json.loads(out)  # one JSON document on stdout
            assert summary["jobs"]["done"] == 1
            assert "draining" in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


class TestServeDurableFlags:
    def test_robustness_flags_parse_and_default(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.state_dir is None and args.supervise is False
        assert args.max_attempts == 3
        assert args.job_timeout is None and args.lease == 15.0

        args = build_parser().parse_args(
            ["serve", "--state-dir", "/tmp/s", "--supervise",
             "--max-attempts", "5", "--job-timeout", "30", "--lease", "7.5"]
        )
        assert args.state_dir == "/tmp/s" and args.supervise is True
        assert args.max_attempts == 5
        assert args.job_timeout == 30.0 and args.lease == 7.5

    def test_durable_serve_subprocess_recovers_across_restart(self, tmp_path):
        """Boot with --state-dir, drain, reboot: the cache answers."""
        env = dict(os.environ, PYTHONPATH="src")
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        state_dir = str(tmp_path / "state")
        argv = [sys.executable, "-m", "repro", "serve", "--port", "0",
                "--engine", "compiled", "--json", "--state-dir", state_dir,
                "--supervise", "--max-attempts", "2", "--job-timeout", "60"]
        body = json.dumps(
            {"method": "estimate", "builtin": "fig1",
             "run": {"cycles": 100, "engine": "compiled", "workers": 1}}
        ).encode()

        def boot():
            proc = subprocess.Popen(
                argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=env, cwd=repo, text=True,
            )
            ready = proc.stderr.readline()
            assert "serving on http://" in ready, ready
            assert f"state-dir={state_dir}" in ready and "supervised" in ready
            return proc, ready.split()[2]

        def submit(url):
            request = urllib.request.Request(
                url + "/v1/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                job = json.loads(resp.read())
            deadline = time.monotonic() + 60
            while job["state"] in ("queued", "running"):
                assert time.monotonic() < deadline
                with urllib.request.urlopen(
                    f"{url}/v1/jobs/{job['id']}", timeout=10
                ) as resp:
                    job = json.loads(resp.read())
            return job

        def drain(proc):
            proc.send_signal(signal.SIGINT)
            out, _err = proc.communicate(timeout=60)
            assert proc.returncode == 0
            return json.loads(out)

        proc, url = boot()
        try:
            job = submit(url)
            assert job["state"] == "done" and job["cached"] is False
            with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
                health = json.loads(resp.read())
            assert health["durable"]["journal"]["appended"] >= 2
            assert health["supervisor"]["circuit"] == "closed"
            drain(proc)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # Second boot on the same state dir: the journal replays and the
        # identical submission is a disk-cache hit, not a recomputation.
        proc, url = boot()
        try:
            job = submit(url)
            assert job["state"] == "done" and job["cached"] is True
            with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
                health = json.loads(resp.read())
            assert health["durable"]["journal"]["replayed_records"] >= 2
            summary = drain(proc)
            # >= 2: replay re-reads the recovered result through the
            # cache, and the resubmission hits it again.
            assert summary["cache"]["hits"] >= 2.0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
