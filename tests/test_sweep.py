"""repro.sweep: spec expansion, the experiment store, the engine, Pareto."""

import json
import os

import pytest

from repro.api import Session
from repro.designs import design1, paper_example
from repro.errors import SweepError
from repro.netlist import textio
from repro.serve.cache import job_cache_key
from repro.sweep import (
    ExperimentStore,
    SweepSpec,
    dominates,
    pareto_front,
    point_metrics,
    run_sweep,
    stimulus_label,
)

RUN = {"cycles": 120, "engine": "python"}


def small_spec(**overrides):
    payload = {
        "name": "t",
        "designs": ["design1"],
        "stimuli": [None, "idle"],
        "pass_lists": ["isolation"],
        "run": dict(RUN),
    }
    payload.update(overrides)
    return SweepSpec.from_dict(payload)


class TestSpec:
    def test_size_and_expand_agree(self):
        spec = small_spec(
            pass_lists=["isolation", "rewrite+isolation"], h_min=[0.0, 0.1]
        )
        points = spec.expand()
        assert spec.size == len(points) == 1 * 2 * 2 * 1 * 2

    def test_unknown_field_rejected(self):
        with pytest.raises(SweepError, match="bogus"):
            SweepSpec.from_dict({"designs": ["design1"], "bogus": 1})

    def test_unknown_pass_rejected(self):
        with pytest.raises(SweepError, match="nope"):
            small_spec(pass_lists=["nope"])

    def test_unknown_style_rejected(self):
        with pytest.raises(SweepError):
            small_spec(styles=["bogus"])

    def test_bad_run_rejected(self):
        with pytest.raises(SweepError):
            small_spec(run={"cycles": 100, "bogus": 1})

    def test_empty_designs_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec.from_dict({"designs": []})

    def test_duplicate_design_rejected(self):
        spec = SweepSpec.from_dict({"designs": ["design1", "design1"], "run": RUN})
        with pytest.raises(SweepError, match="identical"):
            spec.expand()

    def test_netlist_path_design(self, tmp_path):
        path = tmp_path / "d.rtl"
        path.write_text(textio.dumps(paper_example()))
        spec = SweepSpec.from_dict({"designs": [str(path)], "run": RUN})
        (point,) = spec.expand()
        assert point.design_name == paper_example().name

    def test_point_key_is_job_cache_key(self):
        from repro.runconfig import RunConfig
        from repro.sim.compile import design_fingerprint

        (point,) = SweepSpec.from_dict({"designs": ["design1"], "run": RUN}).expand()
        run_cfg = RunConfig().replace(**RUN).replace(trace=False)
        expected = job_cache_key(
            "optimize",
            design_fingerprint(design1()),
            run_cfg.fingerprint(),
            point.params,
            "default",
        )
        assert point.key == expected

    def test_keys_unique_across_grid(self):
        spec = small_spec(
            pass_lists=["isolation", "rewrite+isolation"],
            styles=["and", "or"],
            h_min=[0.0, 0.05],
        )
        keys = [p.key for p in spec.expand()]
        assert len(set(keys)) == len(keys)

    def test_round_trip_preserves_fingerprint(self):
        spec = small_spec(h_min=[0.0, 0.1])
        again = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.fingerprint() == spec.fingerprint()

    def test_wire_payload_matches_job_payload(self):
        from repro.serve.jobs import JobService

        spec = small_spec(stimuli=["idle"])
        (point,) = spec.expand()
        service = JobService(job_workers=1, fsync=False, cache_capacity=0)
        try:
            job = service.submit(
                "optimize",
                design=point.design_text,
                run=point.run,
                params=point.params,
                stimulus=point.stimulus,
            )
            assert job.wire_payload() == point.wire_payload()
            assert job.cache_key == point.key
        finally:
            service.shutdown(drain=False)

    def test_stimulus_labels(self):
        assert stimulus_label(None) == "default"
        assert stimulus_label({"profile": "idle"}) == "idle"
        assert (
            stimulus_label({"profile": "bursty", "params": {"burst_len": 2}})
            == "bursty(burst_len=2)"
        )
        assert stimulus_label({"csv": "A\n1\n"}).startswith("csv:")


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        store.put("k" * 16, {"x": 1})
        assert store.get("k" * 16) == {"x": 1}
        assert store.has("k" * 16)
        assert len(store) == 1

    def test_get_missing_is_none(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        assert store.get("absent") is None

    def test_corruption_quarantined_not_served(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        key = "deadbeef" * 4
        store.put(key, {"x": 1})
        path = store._point_path(key)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"key": "' + key + '", "sha256": "wrong", "payload": {"x": 2}}')
        assert store.get(key) is None
        assert not store.has(key)
        assert store.status()["quarantined"] == 1

    def test_verify_counts(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        store.put("aa" * 8, {"x": 1})
        store.put("bb" * 8, {"x": 2})
        assert store.verify() == {"verified": 2, "quarantined": 0}

    def test_spec_provenance(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        spec = small_spec()
        fp = store.record_spec(spec)
        assert fp == spec.fingerprint()
        assert store.specs()[fp]["name"] == "t"
        store.record_spec(spec)  # idempotent
        assert store.status()["specs"] == 1


class TestEngine:
    def test_inline_run_persists_every_point(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        spec = small_spec()
        result = run_sweep(spec, store)
        assert result.computed == spec.size and result.failed == 0
        assert result.complete
        assert sorted(store.keys()) == sorted(p.key for p in spec.expand())

    def test_resume_skips_persisted_points(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        spec = small_spec()
        first = run_sweep(spec, store)
        second = run_sweep(spec, store)
        assert second.computed == 0
        assert second.skipped == spec.size
        assert second.report_rows() and (
            [r["power_mw"] for r in second.report_rows()]
            == [r["power_mw"] for r in first.report_rows()]
        )

    def test_limit_chunks_then_resume_completes(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        spec = small_spec()
        partial = run_sweep(spec, store, limit=1)
        assert partial.computed == 1 and not partial.complete
        rest = run_sweep(spec, store)
        assert rest.skipped == 1 and rest.computed == spec.size - 1
        assert rest.complete

    def test_overlapping_specs_share_points(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        run_sweep(small_spec(stimuli=["idle"]), store)
        wider = run_sweep(small_spec(), store)  # default + idle
        assert wider.skipped == 1 and wider.computed == 1

    def test_workload_changes_the_outcome(self, tmp_path):
        store = ExperimentStore(str(tmp_path / "s"))
        result = run_sweep(small_spec(stimuli=[None, "idle", "bursty"]), store)
        power = {
            row["stimulus"]: row["power_mw"] for row in result.report_rows()
        }
        assert power["idle"] < power["bursty"] < power["default"]

    def test_failed_points_not_persisted(self, tmp_path, monkeypatch):
        import repro.sweep.engine as engine_mod
        from repro.errors import ReproError

        store = ExperimentStore(str(tmp_path / "s"))
        spec = small_spec()
        calls = {"n": 0}
        real = engine_mod.run_job_payload

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ReproError("induced failure")
            return real(payload)

        monkeypatch.setattr(engine_mod, "run_job_payload", flaky)
        first = run_sweep(spec, store)
        assert first.failed == 1 and first.computed == spec.size - 1
        assert len(store) == spec.size - 1
        retry = run_sweep(spec, store)  # the failed point retries and lands
        assert retry.failed == 0 and retry.computed == 1
        assert retry.complete

    def test_service_and_inline_share_keys(self, tmp_path):
        from repro.serve.jobs import JobService

        spec = small_spec(stimuli=["idle"])
        inline_store = ExperimentStore(str(tmp_path / "a"))
        run_sweep(spec, inline_store)
        service = JobService(job_workers=1, fsync=False)
        try:
            served = run_sweep(spec, inline_store, service=service)
            assert served.skipped == spec.size  # the store answers for serve too
            fresh = ExperimentStore(str(tmp_path / "b"))
            computed = run_sweep(spec, fresh, service=service)
            assert computed.computed == spec.size
            assert sorted(fresh.keys()) == sorted(inline_store.keys())
        finally:
            service.shutdown(drain=False)

    def test_client_and_service_mutually_exclusive(self):
        with pytest.raises(SweepError):
            run_sweep(small_spec(), client="http://x", service=object())

    def test_bad_limit_rejected(self):
        with pytest.raises(SweepError):
            run_sweep(small_spec(), limit=0)

    def test_to_dict_summary(self, tmp_path):
        result = run_sweep(small_spec(), str(tmp_path / "s"))
        payload = result.to_dict()
        assert payload["computed"] == 2 and payload["complete"]
        assert payload["spec_fingerprint"] == result.spec.fingerprint()
        json.dumps(payload)  # JSON-serializable end to end


class TestSessionSweep:
    def test_defaults_to_session_design_and_run(self):
        from repro.runconfig import RunConfig

        session = Session(design1(), run=RunConfig(cycles=100))
        result = session.sweep({"stimuli": ["idle"]})
        assert result.computed == 1
        (outcome,) = result.outcomes
        assert outcome.point.run["cycles"] == 100
        assert outcome.point.design_name == design1().name

    def test_explicit_spec_axes_respected(self, tmp_path):
        session = Session(design1())
        result = session.sweep(
            {"pass_lists": ["isolation", "rewrite+isolation"], "run": RUN},
            store=str(tmp_path / "s"),
        )
        assert result.computed == 2
        assert os.path.isdir(os.path.join(str(tmp_path / "s"), "points"))


class TestPareto:
    ROW_A = {"power_mw": 1.0, "area_um2": 100.0, "slack_ns": 0.5}
    ROW_B = {"power_mw": 2.0, "area_um2": 100.0, "slack_ns": 0.5}
    ROW_C = {"power_mw": 2.0, "area_um2": 90.0, "slack_ns": 0.5}

    def test_dominates(self):
        assert dominates(self.ROW_A, self.ROW_B)
        assert not dominates(self.ROW_B, self.ROW_A)
        assert not dominates(self.ROW_A, self.ROW_C)  # area trade-off
        assert not dominates(self.ROW_A, self.ROW_A)  # needs strict improvement

    def test_front_keeps_tradeoffs(self):
        front = pareto_front([self.ROW_A, self.ROW_B, self.ROW_C])
        assert self.ROW_A in [dict(r) for r in front]
        assert self.ROW_C in [dict(r) for r in front]
        assert dict(self.ROW_B) not in [dict(r) for r in front]

    def test_point_metrics_requires_shape(self):
        with pytest.raises(SweepError):
            point_metrics({"power_mw": 1.0})

    def test_reports_render(self, tmp_path):
        result = run_sweep(small_spec(), str(tmp_path / "s"))
        text = result.report_text()
        assert "Pareto report" in text and "stimulus=idle" in text
        payload = result.report_json()
        assert payload["points"] == 2
        assert all(group["front"] for group in payload["groups"])
