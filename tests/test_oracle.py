"""Tests for the oracle (upper-bound) savings analysis."""

import pytest

from repro.core import IsolationConfig, isolate_design
from repro.core.oracle import potential_savings
from repro.sim import ControlStream, random_stimulus


def d1_stim(design, seed=6):
    return random_stimulus(
        design,
        seed=seed,
        control_probability=0.3,
        overrides={"EN": ControlStream(0.2, 0.1)},
    )


class TestOracle:
    def test_idle_energy_per_module(self, d1):
        report = potential_savings(d1, d1_stim(d1), cycles=1500)
        assert report.idle_power_mw["mul0"] > report.idle_power_mw["add0"]
        assert report.total_power_mw > report.oracle_savings_mw > 0

    def test_always_active_modules_have_zero_bound(self, d1):
        """The counter/utility paths cannot be saved by any isolation."""
        from repro.designs import design2

        d2 = design2()
        report = potential_savings(d2, random_stimulus(d2, seed=3), cycles=800)
        assert report.idle_power_mw["cnt_inc"] == 0.0

    def test_oracle_fraction_bounded(self, d1):
        report = potential_savings(d1, d1_stim(d1), cycles=800)
        assert 0.0 < report.oracle_fraction < 1.0

    def test_busy_design_has_small_bound(self, d1):
        busy = random_stimulus(
            d1, seed=6, control_probability=0.9,
            overrides={"EN": ControlStream(1.0)},
        )
        report = potential_savings(d1, busy, cycles=800)
        idle = potential_savings(d1, d1_stim(d1), cycles=800)
        assert report.oracle_savings_mw < idle.oracle_savings_mw

    def test_algorithm_approaches_oracle(self, d1):
        """Algorithm 1 should realise most of the theoretical bound."""
        oracle = potential_savings(d1, d1_stim(d1), cycles=2000)
        result = isolate_design(
            d1, lambda: d1_stim(d1), IsolationConfig(cycles=1000)
        )
        measured = result.baseline.power_mw - result.final.power_mw
        fraction = oracle.achieved_fraction(measured)
        assert fraction > 0.6, f"only {fraction:.0%} of the oracle realised"
        # And never more than the bound plus secondary/fanout effects.
        assert measured < oracle.oracle_savings_mw * 1.5

    def test_achieved_fraction_degenerate(self):
        from repro.core.oracle import OracleReport

        empty = OracleReport(total_power_mw=1.0)
        assert empty.oracle_fraction == 0.0
        assert empty.achieved_fraction(0.5) == 1.0
