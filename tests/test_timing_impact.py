"""Unit tests for pre-transform slack impact estimation."""

import pytest

from repro.boolean.expr import and_, var
from repro.core import derive_activation_functions
from repro.core.isolate import isolate_candidate
from repro.timing.impact import estimate_isolation_impact
from repro.timing.sta import analyze_timing


class TestImpactEstimate:
    def test_bank_delay_reduces_slack(self, fig1, library):
        report = analyze_timing(fig1, library, clock_period=None)
        relaxed = analyze_timing(fig1, library, clock_period=report.clock_period * 1.3)
        analysis = derive_activation_functions(fig1)
        a0 = fig1.cell("a0")
        impact = estimate_isolation_impact(
            fig1, a0, analysis.of_module(a0), "and", library, relaxed
        )
        assert impact.estimated_slack < relaxed.slack(a0.net("Y"))
        assert impact.bank_delay > 0

    def test_latch_costs_more_delay_than_and(self, fig1, library):
        report = analyze_timing(fig1, library)
        analysis = derive_activation_functions(fig1)
        a0 = fig1.cell("a0")
        and_impact = estimate_isolation_impact(
            fig1, a0, analysis.of_module(a0), "and", library, report
        )
        lat_impact = estimate_isolation_impact(
            fig1, a0, analysis.of_module(a0), "latch", library, report
        )
        assert lat_impact.bank_delay > and_impact.bank_delay
        assert lat_impact.estimated_slack <= and_impact.estimated_slack

    def test_violates_threshold(self, fig1, library):
        report = analyze_timing(fig1, library)  # zero slack: any cost violates
        analysis = derive_activation_functions(fig1)
        a0 = fig1.cell("a0")
        impact = estimate_isolation_impact(
            fig1, a0, analysis.of_module(a0), "and", library, report
        )
        assert impact.violates(0.0)
        assert not impact.violates(-100.0)

    def test_deeper_activation_function_costs_more(self, fig1, library):
        report = analyze_timing(fig1, library)
        a1 = fig1.cell("a1")
        shallow = estimate_isolation_impact(
            fig1, a1, var("G1"), "and", library, report
        )
        deep = estimate_isolation_impact(
            fig1,
            a1,
            and_(var("G1"), var("G0"), var("S0"), var("S1"), var("S2")),
            "and",
            library,
            report,
        )
        assert deep.activation_arrival > shallow.activation_arrival

    def test_estimate_close_to_real_sta(self, fig1, library):
        """The prediction should track the exact post-transform STA."""
        report = analyze_timing(fig1, library)
        period = report.clock_period * 1.5
        relaxed = analyze_timing(fig1, library, clock_period=period)
        analysis = derive_activation_functions(fig1)
        a1 = fig1.cell("a1")
        impact = estimate_isolation_impact(
            fig1, a1, analysis.of_module(a1), "and", library, relaxed
        )
        working = fig1.copy()
        analysis2 = derive_activation_functions(working)
        isolate_candidate(
            working, working.cell("a1"), analysis2.of_module(working.cell("a1")), "and"
        )
        exact = analyze_timing(working, library, clock_period=period)
        # Prediction within a couple of gate delays of the exact slack.
        assert impact.estimated_slack == pytest.approx(exact.worst_slack, abs=0.5)
