"""Unit tests for registers and transparent latches."""

from repro.netlist.design import Design
from repro.netlist.seq import Register, TransparentLatch


def wired_register(has_enable=False, width=8, reset_value=0):
    d = Design("t")
    r = d.add_cell(Register("r", has_enable=has_enable, reset_value=reset_value))
    d.connect(r, "D", d.add_net("d", width))
    if has_enable:
        d.connect(r, "EN", d.add_net("en", 1))
    d.connect(r, "Q", d.add_net("q", width))
    return r


class TestRegister:
    def test_loads_without_enable(self):
        r = wired_register()
        assert r.next_state(0, {"D": 42}) == 42

    def test_enable_high_loads(self):
        r = wired_register(has_enable=True)
        assert r.next_state(7, {"D": 42, "EN": 1}) == 42

    def test_enable_low_holds(self):
        r = wired_register(has_enable=True)
        assert r.next_state(7, {"D": 42, "EN": 0}) == 7

    def test_value_clipped_to_width(self):
        r = wired_register(width=4)
        assert r.next_state(0, {"D": 0x1F}) == 0xF

    def test_classification(self):
        r = Register("r")
        assert r.is_sequential
        assert r.has_state

    def test_enable_port_only_when_requested(self):
        assert "EN" not in [s.name for s in Register("r").port_specs()]
        assert "EN" in [s.name for s in Register("r", has_enable=True).port_specs()]

    def test_reset_value_recorded(self):
        assert Register("r", reset_value=5).reset_value == 5


class TestTransparentLatch:
    def wired(self, width=8):
        d = Design("t")
        lat = d.add_cell(TransparentLatch("l"))
        d.connect(lat, "D", d.add_net("d", width))
        d.connect(lat, "G", d.add_net("g", 1))
        d.connect(lat, "Q", d.add_net("q", width))
        return lat

    def test_transparent_when_gate_high(self):
        lat = self.wired()
        assert lat.output_value(0, {"D": 9, "G": 1}) == 9

    def test_holds_when_gate_low(self):
        lat = self.wired()
        assert lat.output_value(5, {"D": 9, "G": 0}) == 5

    def test_next_state_follows_transparent_value(self):
        lat = self.wired()
        assert lat.next_state(5, {"D": 9, "G": 1}) == 9
        assert lat.next_state(5, {"D": 9, "G": 0}) == 5

    def test_latch_is_not_a_block_boundary(self):
        lat = TransparentLatch("l")
        assert not lat.is_sequential
        assert lat.has_state
        assert lat.is_transparent
