"""Unit tests for structural validation."""

import pytest

from repro.errors import ValidationError
from repro.netlist.arith import Adder
from repro.netlist.design import Design
from repro.netlist.validate import validate_design, validation_problems


def half_wired():
    d = Design("t")
    a = d.add_cell(Adder("a"))
    d.connect(a, "A", d.add_net("na", 8))
    return d, a


class TestValidation:
    def test_unconnected_port_reported(self):
        d, _ = half_wired()
        problems = validation_problems(d)
        assert any("a.B is unconnected" in p for p in problems)

    def test_undriven_net_reported(self):
        d = Design("t")
        d.add_net("floating", 4)
        problems = validation_problems(d)
        assert any("no driver" in p for p in problems)

    def test_unread_net_reported_unless_allowed(self, tiny_design):
        tiny = tiny_design
        net = tiny.add_net("dangling", 1)
        from repro.netlist.ports import Constant

        const = tiny.add_cell(Constant("k", 1))
        tiny.connect(const, "Y", net)
        assert validation_problems(tiny)
        assert not validation_problems(tiny, allow_dangling=True)

    def test_valid_designs_pass(self, fig1, d1, d2, fir, alu, bus):
        for design in (fig1, d1, d2, fir, alu, bus):
            validate_design(design)

    def test_validate_raises_with_details(self):
        d, _ = half_wired()
        with pytest.raises(ValidationError) as exc:
            validate_design(d)
        assert "a.B" in str(exc.value)
