"""Tests for activation-function derivation (paper Section 3).

The key fixture is the paper's own Figure 1 circuit, for which Section 3
states the expected results in closed form.
"""

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import TRUE, and_, not_, or_, var
from repro.core.activation import (
    derive_activation_functions,
    gate_side_condition,
    net_activation_function,
    select_condition,
)
from repro.errors import IsolationError
from repro.netlist.builder import DesignBuilder


class TestPaperExample:
    def test_as_a0_equals_g0(self, fig1):
        analysis = derive_activation_functions(fig1)
        manager = BddManager()
        assert manager.equivalent(analysis.of_module(fig1.cell("a0")), var("G0"))

    def test_as_a1_matches_paper(self, fig1):
        analysis = derive_activation_functions(fig1)
        expected = or_(
            and_(var("S2"), var("G1")),
            and_(not_(var("S0")), var("S1"), var("G0")),
        )
        manager = BddManager()
        assert manager.equivalent(analysis.of_module(fig1.cell("a1")), expected)

    def test_non_module_query_rejected(self, fig1):
        analysis = derive_activation_functions(fig1)
        with pytest.raises(IsolationError):
            analysis.of_module(fig1.cell("m0"))

    def test_net_functions_populated(self, fig1):
        analysis = derive_activation_functions(fig1)
        assert analysis.of_net(fig1.cell("a0").net("Y")) is not None


class TestTraversalRules:
    def test_primary_output_always_observed(self):
        b = DesignBuilder("po")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        out = b.add(x, y, name="a0")
        b.output(out, "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        assert analysis.of_module(d.cell("a0")) == TRUE

    def test_enabled_register_gives_enable_condition(self, tiny_design):
        analysis = derive_activation_functions(tiny_design)
        f = analysis.of_module(tiny_design.cell("a0"))
        # a0 -> m0 (selected when S=0) -> r0 (enabled by G)
        manager = BddManager()
        assert manager.equivalent(f, and_(not_(var("S")), var("G")))

    def test_register_without_enable_is_const_one(self):
        b = DesignBuilder("t")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        s = b.add(x, y, name="a0")
        b.output(b.register(s, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        # f_r+ := 1, register loads every cycle -> always active.
        assert analysis.of_module(d.cell("a0")) == TRUE

    def test_control_use_is_unconditional(self):
        """A module steering a select is always active."""
        b = DesignBuilder("t")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g = b.input("G", 1)
        decision = b.compare(x, y, op="lt", name="c0")
        routed = b.mux(decision, x, y, name="m0")
        b.output(b.register(routed, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        assert analysis.of_module(d.cell("c0")) == TRUE

    def test_chained_modules_compose(self, fig1):
        """f_a1 references downstream candidate a0's activation (G0 term)."""
        analysis = derive_activation_functions(fig1)
        assert "G0" in analysis.of_module(fig1.cell("a1")).support()

    def test_and_gate_side_condition(self):
        b = DesignBuilder("t")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        mask = b.input("M", 1)
        g = b.input("G", 1)
        total = b.add(x, y, name="a0")
        # One-bit mask gating a one-bit comparison of the sum.
        flag = b.compare(total, x, op="eq", name="c0")
        gated = b.and_(flag, mask, name="g0")
        b.output(b.register(gated, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        f = analysis.of_module(d.cell("c0"))
        # Observable through the AND gate only when M=1 (and G loads).
        manager = BddManager()
        assert manager.equivalent(f, and_(var("M"), var("G")))

    def test_multibit_gate_side_is_conservative(self):
        b = DesignBuilder("t")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g = b.input("G", 1)
        total = b.add(x, y, name="a0")
        masked = b.and_(total, y, name="g0")  # 8-bit side input: not expressible
        b.output(b.register(masked, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        manager = BddManager()
        assert manager.equivalent(analysis.of_module(d.cell("a0")), var("G"))

    def test_wide_select_uses_bitrefs(self):
        b = DesignBuilder("t")
        s = b.input("SEL", 2)
        g = b.input("G", 1)
        xs = [b.input(f"X{i}", 8) for i in range(3)]
        total = b.add(xs[0], xs[1], name="a0")
        routed = b.mux(s, total, xs[1], xs[2], xs[2], name="m0")
        b.output(b.register(routed, enable=g, name="r0"), "OUT")
        d = b.build()
        analysis = derive_activation_functions(d)
        f = analysis.of_module(d.cell("a0"))
        # a0 observable when SEL == 0 and G: !SEL[0] * !SEL[1] * G
        manager = BddManager()
        expected = and_(not_(var("SEL[0]")), not_(var("SEL[1]")), var("G"))
        assert manager.equivalent(f, expected)

    def test_net_activation_function_single_query(self, fig1):
        f = net_activation_function(fig1, fig1.cell("a0").net("Y"))
        assert f == var("G0")


class TestHelperConditions:
    def test_select_condition_one_bit(self, tiny_design):
        mux = tiny_design.cell("m0")
        assert select_condition(mux, 0) == not_(var("S"))
        assert select_condition(mux, 1) == var("S")

    def test_select_condition_two_bits(self):
        b = DesignBuilder("t")
        s = b.input("SEL", 2)
        xs = [b.input(f"X{i}", 4) for i in range(4)]
        out = b.mux(s, *xs, name="m")
        b.output(out, "O")
        d = b.build(validate=False)
        mux = d.cell("m")
        cond = select_condition(mux, 2)  # binary 10
        assert cond == and_(not_(var("SEL[0]")), var("SEL[1]"))

    def test_gate_side_condition_polarity(self):
        b = DesignBuilder("t")
        x = b.input("X", 1)
        y = b.input("Y", 1)
        andy = b.and_(x, y, name="ag")
        ory = b.or_(x, y, name="og")
        xory = b.xor(x, y, name="xg")
        for net, label in ((andy, "A"), (ory, "O"), (xory, "X2")):
            b.output(net, label)
        d = b.build()
        assert gate_side_condition(d.cell("ag"), "A") == var("Y")
        assert gate_side_condition(d.cell("og"), "A") == not_(var("Y"))
        assert gate_side_condition(d.cell("xg"), "A") == TRUE


class TestConservatism:
    def test_isolated_netlist_rederivation_composes(self, fig1):
        """Re-deriving on an isolated design never claims new activity."""
        from repro.core.isolate import isolate_candidate
        from repro.verify import activation_preserved_after_isolation

        analysis = derive_activation_functions(fig1)
        originals = {
            m.name: analysis.of_module(m) for m in fig1.datapath_modules
        }
        working = fig1.copy()
        wa = derive_activation_functions(working)
        instance = isolate_candidate(
            working, working.cell("a1"), wa.of_module(working.cell("a1")), "and"
        )
        assert activation_preserved_after_isolation(originals, working, [instance])
