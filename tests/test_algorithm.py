"""Tests for Algorithm 1: the iterative isolation driver."""

import pytest

from repro.core.algorithm import IsolationConfig, isolate_design
from repro.core.cost import CostWeights
from repro.sim.stimulus import ControlStream, random_stimulus
from repro.verify import check_observable_equivalence


def d1_stimulus(design, en=ControlStream(0.2, 0.1), seed=7):
    def make():
        return random_stimulus(
            design, seed=seed, control_probability=0.35, overrides={"EN": en}
        )

    return make


class TestAlgorithmBehaviour:
    def test_isolates_idle_multipliers(self, d1):
        result = isolate_design(
            d1, d1_stimulus(d1), IsolationConfig(cycles=600)
        )
        assert {"mul0", "mul1"} <= set(result.isolated_names)
        assert result.power_reduction > 0.2

    def test_leaves_original_untouched(self, d1):
        before = d1.stats()
        isolate_design(d1, d1_stimulus(d1), IsolationConfig(cycles=300))
        assert d1.stats() == before

    def test_transform_is_observably_equivalent(self, d1):
        result = isolate_design(d1, d1_stimulus(d1), IsolationConfig(cycles=400))
        report = check_observable_equivalence(
            d1, result.design, d1_stimulus(d1)(), 1500
        )
        assert report.equivalent

    def test_one_candidate_per_block_per_iteration(self, d1):
        result = isolate_design(d1, d1_stimulus(d1), IsolationConfig(cycles=400))
        for record in result.iterations:
            blocks_hit = set()
            for name in record.isolated:
                instance = next(
                    i for i in result.instances if i.candidate.name == name
                )
                # Block identity isn't stored on instances; re-derive via
                # the names isolated in one iteration being distinct.
                blocks_hit.add(name)
            assert len(blocks_hit) == len(record.isolated)

    def test_terminates_when_no_candidate_clears_threshold(self, d1):
        config = IsolationConfig(
            cycles=300, weights=CostWeights(omega_p=1.0, omega_a=0.25, h_min=10.0)
        )
        result = isolate_design(d1, d1_stimulus(d1), config)
        assert result.isolated_names == []
        assert result.power_reduction == pytest.approx(0.0, abs=0.02)

    def test_busy_design_gets_no_isolation_benefit(self, d1):
        """With EN always high the multipliers never idle."""
        result = isolate_design(
            d1,
            d1_stimulus(d1, en=ControlStream(1.0)),
            IsolationConfig(cycles=400),
        )
        assert "mul0" not in result.isolated_names
        assert "mul1" not in result.isolated_names

    def test_slack_threshold_rejects_critical_path_candidates(self, d1):
        """At a zero-slack clock the multipliers (critical path) must be
        rejected; off-critical adders may still be isolated."""
        from repro.power.library import default_library
        from repro.timing.sta import analyze_timing

        natural = analyze_timing(d1, default_library()).clock_period
        config = IsolationConfig(cycles=300, clock_period=natural)
        result = isolate_design(d1, d1_stimulus(d1), config)
        assert {"mul0", "mul1"} <= set(result.iterations[0].rejected_slack)
        assert "mul0" not in result.isolated_names
        assert "mul1" not in result.isolated_names

    def test_metrics_recorded(self, d1):
        result = isolate_design(d1, d1_stimulus(d1), IsolationConfig(cycles=400))
        assert result.baseline.power_mw > result.final.power_mw
        assert result.final.area > result.baseline.area
        assert result.final.worst_slack <= result.baseline.worst_slack
        assert result.baseline.clock_period == result.final.clock_period

    def test_summary_mentions_modules(self, d1):
        result = isolate_design(d1, d1_stimulus(d1), IsolationConfig(cycles=400))
        text = result.summary()
        assert "mul0" in text and "power" in text

    def test_stimulus_object_accepted_directly(self, d1):
        stim = d1_stimulus(d1)()
        result = isolate_design(d1, stim, IsolationConfig(cycles=300))
        assert result.baseline.power_mw > 0

    @pytest.mark.parametrize("style", ["and", "or", "latch"])
    def test_all_styles_equivalent_and_beneficial(self, d1, style):
        result = isolate_design(
            d1,
            d1_stimulus(d1, en=ControlStream(0.15, 0.05)),
            IsolationConfig(style=style, cycles=500),
        )
        assert result.power_reduction > 0.3
        report = check_observable_equivalence(
            d1, result.design, d1_stimulus(d1)(), 1000
        )
        assert report.equivalent

    def test_auto_style_matches_or_beats_fixed(self, d2):
        def stim():
            return random_stimulus(d2, seed=11)

        results = {
            style: isolate_design(d2, stim, IsolationConfig(style=style, cycles=600))
            for style in ("and", "latch", "auto")
        }
        auto = results["auto"].power_reduction
        assert auto >= max(
            results["and"].power_reduction, results["latch"].power_reduction
        ) - 0.03
        # Auto actually exercises per-candidate choice on design2.
        styles_used = {inst.style for inst in results["auto"].instances}
        assert len(styles_used) >= 1
        report = check_observable_equivalence(
            d2, results["auto"].design, stim(), 1000
        )
        assert report.equivalent

    def test_auto_style_records_chosen_styles(self, d1):
        result = isolate_design(
            d1, d1_stimulus(d1), IsolationConfig(style="auto", cycles=400)
        )
        for instance in result.instances:
            assert instance.style in ("and", "or", "latch")

    def test_max_iterations_bound(self, d1):
        config = IsolationConfig(cycles=300, max_iterations=1)
        result = isolate_design(d1, d1_stimulus(d1), config)
        assert len(result.iterations) <= 1

    def test_design2_reduction_in_paper_ballpark(self, d2):
        """The paper reports ≈32 % on its internally-controlled design."""
        result = isolate_design(
            d2,
            lambda: random_stimulus(d2, seed=11),
            IsolationConfig(cycles=800),
        )
        assert 0.2 <= result.power_reduction <= 0.55
