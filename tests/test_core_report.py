"""Tests for the style-comparison reporting (Tables 1/2 format)."""

import pytest

from repro.core.algorithm import IsolationConfig
from repro.core.report import compare_styles, format_comparison_table
from repro.sim.stimulus import ControlStream, random_stimulus


@pytest.fixture(scope="module")
def comparison():
    from repro.designs import design1

    design = design1()

    def stim():
        return random_stimulus(
            design,
            seed=7,
            control_probability=0.35,
            overrides={"EN": ControlStream(0.2, 0.05)},
        )

    return compare_styles(design, stim, IsolationConfig(cycles=500))


class TestComparison:
    def test_all_rows_present(self, comparison):
        labels = [row.label for row in comparison.rows]
        assert labels == [
            "non-isolated",
            "AND-isolated",
            "OR-isolated",
            "LAT-isolated",
        ]

    def test_baseline_has_no_deltas(self, comparison):
        base = comparison.row("non-isolated")
        assert base.power_reduction is None
        assert base.area_increase is None

    def test_isolated_rows_have_reductions(self, comparison):
        for label in ("AND-isolated", "OR-isolated", "LAT-isolated"):
            row = comparison.row(label)
            assert row.power_reduction is not None and row.power_reduction > 0
            assert row.area_increase is not None and row.area_increase > 0

    def test_results_accessible_by_style(self, comparison):
        assert set(comparison.results) == {"and", "or", "latch"}

    def test_format_produces_table(self, comparison):
        text = format_comparison_table(comparison)
        assert "non-isolated" in text
        assert "Power[mW]" in text
        assert "%red" in text

    def test_missing_row_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.row("GHOST")
