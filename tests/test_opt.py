"""The pluggable pass framework (`repro.opt`) and the clock-gating pass."""

from __future__ import annotations

import json

import pytest

from repro import api, obs
from repro.baselines import clock_gate_registers
from repro.core import IsolationConfig, StageTimings
from repro.core.cost import CostWeights
from repro.designs import soc_datapath
from repro.errors import IsolationError, ReproError
from repro.opt import (
    ClockGatingPass,
    IsolationPass,
    OptimizeConfig,
    OptimizeResult,
    available_passes,
    optimize,
    resolve_passes,
)
from repro.runconfig import RunConfig
from repro.sim import ControlStream, random_stimulus
from repro.verify import check_observable_equivalence


def d1_stim(design, en=0.2, seed=6):
    toggle = 0.0 if en in (0.0, 1.0) else 0.1
    return random_stimulus(
        design,
        seed=seed,
        control_probability=0.3,
        overrides={"EN": ControlStream(en, toggle)},
    )


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestRegistry:
    def test_builtin_passes_registered(self):
        assert set(available_passes()) >= {"isolation", "clock_gating"}

    def test_resolve_preserves_order(self):
        passes = resolve_passes(["clock_gating", "isolation"])
        assert [p.name for p in passes] == ["clock_gating", "isolation"]
        assert isinstance(passes[0], ClockGatingPass)
        assert isinstance(passes[1], IsolationPass)

    def test_resolve_accepts_comma_string(self):
        passes = resolve_passes("isolation,clock_gating")
        assert [p.name for p in passes] == ["isolation", "clock_gating"]

    @pytest.mark.parametrize(
        "bad", [[], ["warp_drive"], ["isolation", "isolation"]]
    )
    def test_resolve_rejects_bad_lists(self, bad):
        with pytest.raises(IsolationError):
            resolve_passes(bad)

    def test_optimize_config_is_isolation_config(self):
        # One config type drives every pass combination.
        assert OptimizeConfig is IsolationConfig


class TestClockGatingTransform:
    """The refactored baselines.clock_gate_registers."""

    def test_subset_gates_only_named_registers(self, d1):
        result = clock_gate_registers(d1, registers=["r0", "acc"])
        assert sorted(result.gated_registers) == ["acc", "r0"]
        gated = {r.name for r in result.design.registers
                 if getattr(r, "clock_gated", False)}
        assert gated == {"acc", "r0"}

    def test_in_place_mutates_the_argument(self, d1):
        working = d1.copy("scratch")
        result = clock_gate_registers(working, registers=["r1"], in_place=True)
        assert result.design is working
        assert getattr(working.cell("r1"), "clock_gated", False)

    def test_unknown_register_raises(self, d1):
        with pytest.raises(ReproError, match="no such register"):
            clock_gate_registers(d1, registers=["r0", "warp"])

    def test_free_running_register_raises_when_named(self, d1):
        with pytest.raises(ReproError, match="free-running"):
            clock_gate_registers(d1, registers=["r_tag"])

    def test_timings_populated(self, d1):
        result = clock_gate_registers(d1)
        assert isinstance(result.timings, StageTimings)
        assert result.timings.transform_s > 0
        assert result.timings.simulations == 0

    def test_transform_emits_span_and_counter(self, d1):
        with obs.use(obs.Recorder()) as recorder:
            clock_gate_registers(d1)
        spans = obs.find_spans(recorder.tracer.roots, "clock.gate")
        assert len(spans) == 1
        assert spans[0].attrs["gated"] == 4
        metrics = recorder.metrics.to_dict()
        assert metrics["registers.gated"]["value"] == 4.0

    def test_from_spans_counts_clock_gate_as_transform(self, d1):
        with obs.use(obs.Recorder()) as recorder:
            clock_gate_registers(d1)
        timings = StageTimings.from_spans(recorder.tracer.roots)
        assert timings.transform_s > 0


class TestClockGatingPass:
    def test_gates_idle_enabled_registers(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["clock_gating"],
            config=OptimizeConfig(cycles=600),
        )
        assert sorted(result.gated_registers) == ["acc", "r0", "r1", "r2"]
        assert result.isolated_names == []
        assert result.final.power_mw < result.baseline.power_mw
        # One ICG per gated register in the area model.
        icg_area = 22.0 * 4
        assert result.final.area == pytest.approx(
            result.baseline.area + icg_area
        )

    def test_free_running_register_reported_once(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["clock_gating"],
            config=OptimizeConfig(cycles=400),
        )
        rejections = [
            name
            for record in result.iterations
            for name in record.rejected.get("clock_gating", [])
        ]
        assert rejections == ["r_tag"]

    def test_always_enabled_registers_not_worth_gating(self, d1):
        # EN ~ 1.0 pins r0/r1 (enabled directly by EN) active every
        # cycle: their standing clock energy is all spent anyway and the
        # ICG overhead makes them net-negative. r2/acc hang off GA/GB
        # and stay worthwhile.
        result = optimize(
            d1, lambda: d1_stim(d1, en=1.0), ["clock_gating"],
            config=OptimizeConfig(cycles=400),
        )
        assert sorted(result.gated_registers) == ["acc", "r2"]
        scores = result.iterations[0].scores["clock_gating"]
        by_register = {s.register.name: s for s in scores}
        assert by_register["r0"].net_mw < 0
        assert by_register["r1"].net_mw < 0
        assert by_register["r0"].enable_probability == pytest.approx(1.0)

    def test_score_model_matches_estimator(self, d1):
        """Predicted net savings track the estimator's measured delta."""
        result = optimize(
            d1, lambda: d1_stim(d1), ["clock_gating"],
            config=OptimizeConfig(cycles=1500),
        )
        predicted = sum(t.estimated_net_mw for t in result.transforms)
        measured = result.baseline.power_mw - result.final.power_mw
        assert predicted == pytest.approx(measured, rel=0.2)

    def test_behaviour_unchanged(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["clock_gating"],
            config=OptimizeConfig(cycles=400),
        )
        report = check_observable_equivalence(
            d1, result.design, d1_stim(d1), 1000
        )
        assert report.equivalent

    def test_serialized_scores_in_to_dict(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["clock_gating"],
            config=OptimizeConfig(cycles=400),
        )
        scores = result.to_dict()["iterations"][0]["scores"]["clock_gating"]
        assert {s["register"] for s in scores} == {"acc", "r0", "r1", "r2"}
        for s in scores:
            assert set(s) == {
                "register", "condition", "h", "net_mw", "idle_probability"
            }


class TestJointSelection:
    def test_passes_share_one_budget(self, d1):
        """A large h_min suppresses both families, not just one."""
        config = OptimizeConfig(cycles=400, weights=CostWeights(h_min=10.0))
        result = optimize(
            d1, lambda: d1_stim(d1), ["isolation", "clock_gating"], config=config
        )
        assert result.transforms == []
        assert result.final.power_mw == pytest.approx(result.baseline.power_mw)

    def test_per_pass_attribution(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["isolation", "clock_gating"],
            config=OptimizeConfig(cycles=600),
        )
        per_pass = result.per_pass_net_mw()
        assert set(per_pass) == {"isolation", "clock_gating"}
        assert per_pass["isolation"] > per_pass["clock_gating"] > 0

    def test_order_does_not_change_the_result(self, d1):
        """Documented composition semantics: the pass list order affects
        only within-iteration application order, never the final design
        (candidate spaces are disjoint and scores come from the shared
        pre-transform measurement)."""
        config = OptimizeConfig(cycles=500)
        fwd = optimize(
            d1, lambda: d1_stim(d1), ["isolation", "clock_gating"], config=config
        )
        rev = optimize(
            d1, lambda: d1_stim(d1), ["clock_gating", "isolation"], config=config
        )
        assert fwd.final.power_mw == rev.final.power_mw
        assert fwd.final.area == rev.final.area
        assert fwd.final.worst_slack == rev.final.worst_slack
        assert sorted(
            (t.pass_name, t.target) for t in fwd.transforms
        ) == sorted((t.pass_name, t.target) for t in rev.transforms)


class TestOptimizeResult:
    def test_to_dict_shape(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["isolation", "clock_gating"],
            config=OptimizeConfig(cycles=400),
        )
        payload = result.to_dict()
        assert payload["passes"] == ["isolation", "clock_gating"]
        assert {t["pass"] for t in payload["applied"]} == {
            "isolation", "clock_gating"
        }
        assert set(payload["per_pass_net_mw"]) == {"isolation", "clock_gating"}
        json.dumps(payload)  # must be serialisable as-is

    def test_summary_names_every_pass(self, d1):
        result = optimize(
            d1, lambda: d1_stim(d1), ["isolation", "clock_gating"],
            config=OptimizeConfig(cycles=400),
        )
        summary = result.summary()
        assert "isolation" in summary and "clock_gating" in summary
        assert "power" in summary

    def test_run_config_override(self, d1):
        result = optimize(
            d1,
            lambda: d1_stim(d1),
            ["clock_gating"],
            config=OptimizeConfig(cycles=999),
            run=RunConfig(cycles=150, engine="compiled"),
        )
        assert result.config.cycles == 150
        assert result.config.engine == "compiled"
        assert result.timings.engine == "compiled"


class TestSessionOptimize:
    def test_default_passes_apply_both_families(self, d1):
        session = api.Session(
            d1, stimulus=lambda: d1_stim(d1), run=RunConfig(cycles=500)
        )
        result = session.optimize()
        assert isinstance(result, OptimizeResult)
        assert result.isolated_names and result.gated_registers

    def test_isolation_only_matches_legacy_isolate(self, d1):
        session = api.Session(
            d1, stimulus=lambda: d1_stim(d1), run=RunConfig(cycles=300)
        )
        modern = session.optimize(passes=["isolation"]).to_isolation_result()
        legacy = session.isolate()
        modern_payload = modern.to_dict()
        legacy_payload = legacy.to_dict()
        modern_payload.pop("timings")
        legacy_payload.pop("timings")
        # Only the working-copy name differs between the spellings.
        assert modern.design.name == "design1_opt"
        assert legacy.design.name == "design1_iso_and"
        assert canon(modern_payload) == canon(legacy_payload)

    def test_traced_session_records_optimize_spans(self, d1):
        session = api.Session(
            d1,
            stimulus=lambda: d1_stim(d1),
            run=RunConfig(cycles=300, trace=True),
        )
        session.optimize(passes=["isolation", "clock_gating"])
        names = {span.name for span in obs.iter_spans(session.trace())}
        assert {"optimize", "optimize.iteration", "power.estimate"} <= names
        assert "clock.gate" in names or "bank.insert" in names
        timings = StageTimings.from_spans(session.trace())
        assert timings.simulations >= 2
        assert timings.engine == "python"

    def test_soc_smoke(self):
        soc = soc_datapath()
        session = api.Session(
            soc,
            stimulus=lambda: random_stimulus(
                soc, seed=3, control_probability=0.3,
                overrides={"SYS_EN": ControlStream(0.25, 0.1)},
            ),
            run=RunConfig(cycles=300),
        )
        result = session.optimize()
        assert result.power_reduction > 0.1
        assert result.gated_registers  # SYS_EN drives dp/rot enables
