"""Stimulus specs in the serve layer: cache identity, plumbing, recovery.

The regression anchored here: before stimulus specs joined
:func:`job_cache_key`, two jobs replaying *different* activity on the
same design collided on one cache entry — an idle-workload result could
answer a bursty-workload query. The key now folds in the stimulus
fingerprint, while every key minted before stimulus specs existed is
unchanged (the field is omitted entirely for the default stimulus).
"""

import pytest

from repro.designs import design1
from repro.errors import StimulusError
from repro.serve import DONE, JobService
from repro.serve.cache import job_cache_key
from repro.serve.supervisor import run_job_payload

RUN = {"cycles": 150, "engine": "compiled", "workers": 1}


def make_service(**kwargs) -> JobService:
    kwargs.setdefault("queue_size", 8)
    kwargs.setdefault("job_workers", 1)
    kwargs.setdefault("cache_capacity", 32)
    kwargs.setdefault("fsync", False)
    return JobService(**kwargs)


class TestCacheKey:
    def test_default_stimulus_preserves_legacy_keys(self):
        # The 4-argument spelling (pre-stimulus) and an explicit
        # "default" must mint the same key: nothing in any existing
        # store or journal is invalidated by the new ingredient.
        legacy = job_cache_key("estimate", "fp", "run", {})
        assert legacy == job_cache_key("estimate", "fp", "run", {}, "default")

    def test_distinct_stimuli_distinct_keys(self):
        base = job_cache_key("estimate", "fp", "run", {}, "default")
        idle = job_cache_key("estimate", "fp", "run", {}, "aaaa")
        bursty = job_cache_key("estimate", "fp", "run", {}, "bbbb")
        assert len({base, idle, bursty}) == 3

    def test_collision_regression_distinct_results_per_workload(self):
        """Jobs differing only in stimulus never share a cache entry."""
        service = make_service()
        try:
            jobs = {}
            for stim in (None, {"profile": "idle"}, {"profile": "bursty"}):
                label = stim["profile"] if stim else "default"
                job = service.submit(
                    "estimate", builtin="design1", run=RUN, stimulus=stim
                )
                jobs[label] = service.wait(job.id, timeout=120)
            keys = {job.cache_key for job in jobs.values()}
            assert len(keys) == 3
            assert not any(job.cached for job in jobs.values())
            powers = {
                label: job.result["total_power_mw"]
                for label, job in jobs.items()
            }
            assert powers["idle"] < powers["bursty"] < powers["default"]
        finally:
            service.shutdown()

    def test_same_stimulus_is_served_from_cache(self):
        service = make_service()
        try:
            spec = {"profile": "idle"}
            first = service.wait(
                service.submit(
                    "estimate", builtin="design1", run=RUN, stimulus=spec
                ).id,
                timeout=120,
            )
            again = service.submit(
                "estimate", builtin="design1", run=RUN, stimulus="idle"
            )
            assert again.cached and again.state == DONE
            assert again.result == first.result
        finally:
            service.shutdown()


class TestPlumbing:
    def test_invalid_stimulus_rejected_at_submit(self):
        service = make_service()
        try:
            with pytest.raises(StimulusError):
                service.submit(
                    "estimate", builtin="design1", run=RUN, stimulus="nope"
                )
        finally:
            service.shutdown()

    def test_wire_payload_round_trips_through_worker_entry(self):
        service = make_service()
        try:
            job = service.submit(
                "estimate",
                builtin="design1",
                run=RUN,
                stimulus={"profile": "idle"},
            )
            done = service.wait(job.id, timeout=120)
            payload = done.wire_payload()
            assert payload["stimulus"] == {"profile": "idle"}
            # The supervised-worker entry point computes the same result.
            assert run_job_payload(payload) == done.result
        finally:
            service.shutdown()

    def test_default_stimulus_payload_shape_unchanged(self):
        service = make_service()
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            assert "stimulus" not in job.wire_payload()
        finally:
            service.shutdown()

    def test_optimize_weight_params_accepted(self):
        service = make_service()
        try:
            job = service.submit(
                "optimize",
                builtin="design1",
                run=RUN,
                params={"h_min": 0.05, "omega_p": 1.0, "omega_a": 0.5},
            )
            done = service.wait(job.id, timeout=120)
            assert done.state == DONE
            assert done.result["power_mw"]["after"] > 0
        finally:
            service.shutdown()

    def test_negative_weight_rejected(self):
        from repro.errors import ServeError

        service = make_service()
        try:
            with pytest.raises(ServeError):
                service.submit(
                    "optimize", builtin="design1", run=RUN, params={"h_min": -1}
                )
        finally:
            service.shutdown()


class TestDurability:
    def test_stimulus_survives_journal_recovery(self, tmp_path):
        state = str(tmp_path / "state")
        service = make_service(state_dir=state)
        try:
            job = service.submit(
                "estimate",
                builtin="design1",
                run=RUN,
                stimulus={"profile": "idle"},
            )
            done = service.wait(job.id, timeout=120)
            key, result = done.cache_key, done.result
        finally:
            service.shutdown()
        revived = make_service(state_dir=state)
        try:
            recovered = revived.get(job.id)
            assert recovered.stimulus == {"profile": "idle"}
            assert recovered.cache_key == key
            again = revived.submit(
                "estimate", builtin="design1", run=RUN, stimulus="idle"
            )
            assert again.cached and again.result == result
        finally:
            revived.shutdown()
