"""Observability layer: spans, metrics, exporters, deterministic merging.

The load-bearing guarantees pinned here:

* an exported Chrome trace reloads to the *identical* span forest;
* a ``workers=2`` run produces the same candidate-scoring span sequence
  as the serial run, and repeated pooled runs the same structural shape
  (merge in task order, not completion order);
* the disabled facade allocates nothing and stays cheap enough for
  always-on call sites (the full <2% budget lives in
  ``benchmarks/test_perf_obs.py``);
* the Session facade honours ``RunConfig(trace=True)``.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro import api, obs
from repro.core.algorithm import IsolationConfig, StageTimings, isolate_design
from repro.designs import design1
from repro.runconfig import RunConfig
from repro.sim.stimulus import random_stimulus


def _isolate_traced(workers=1, cycles=150):
    design = design1()
    recorder = obs.Recorder()
    with obs.use(recorder):
        result = isolate_design(
            design,
            lambda: random_stimulus(design, seed=4),
            IsolationConfig(
                style="and", cycles=cycles, warmup=8, workers=workers
            ),
        )
    return result, recorder


class TestSpans:
    def test_nesting_mirrors_call_structure(self):
        tracer = obs.Tracer()
        with tracer.span("outer", "stage", design="d"):
            with tracer.span("inner") as inner:
                inner.set(items=3)
        assert obs.span_shape(tracer.roots) == (("outer", (("inner", ()),)),)
        (outer,) = tracer.roots
        assert outer.attrs == {"design": "d"}
        assert outer.children[0].attrs == {"items": 3}
        assert outer.start_ns <= outer.children[0].start_ns
        assert outer.end_ns >= outer.children[0].end_ns

    def test_exception_closes_dangling_spans(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                tracer.start("orphan")
                raise ValueError("boom")
        (outer,) = tracer.roots
        orphan = outer.children[0]
        assert orphan.end_ns >= orphan.start_ns > 0
        assert tracer.current is None

    def test_adopt_keeps_worker_tracks(self):
        worker = obs.Tracer(track="task-7")
        with worker.span("pool.task"):
            with worker.span("score.candidate"):
                pass
        parent = obs.Tracer()
        with parent.span("pool.map"):
            parent.adopt(obs.spans_to_dicts(worker.roots))
        adopted = parent.roots[0].children[0]
        assert [s.track for s in adopted.walk()] == ["task-7", "task-7"]

    def test_aggregate_rollup_self_time(self):
        parent = obs.Span("p", start_ns=0, end_ns=10_000_000_000)
        parent.children.append(obs.Span("c", start_ns=0, end_ns=4_000_000_000))
        rollup = {e["name"]: e for e in obs.aggregate_spans([parent])}
        assert rollup["p"]["total_s"] == pytest.approx(10.0)
        assert rollup["p"]["self_s"] == pytest.approx(6.0)
        assert rollup["c"]["count"] == 1


class TestChromeTraceRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("isolate", "stage", design="d1", workers=2):
            with tracer.span("sim.run", "sim", cycles=100):
                pass
            with tracer.span("score.batch"):
                with tracer.span("score.candidate", candidate="mul0"):
                    pass
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(path, tracer.roots)
        reloaded = obs.read_chrome_trace(path)
        assert obs.spans_to_dicts(reloaded) == obs.spans_to_dicts(tracer.roots)

    def test_multi_track_round_trip(self, tmp_path):
        worker = obs.Tracer(track="task-0")
        with worker.span("pool.task"):
            pass
        parent = obs.Tracer()
        with parent.span("pool.map"):
            parent.adopt(obs.spans_to_dicts(worker.roots))
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(path, parent.roots)
        reloaded = obs.read_chrome_trace(path)
        tracks = sorted(s.track for s in obs.iter_spans(reloaded))
        assert tracks == ["main", "task-0"]

    def test_document_shape_and_metrics_blob(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("isolate", "stage"):
            pass
        document = obs.chrome_trace(tracer.roots, metrics={"a": 1})
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"M", "X"}
        names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "M"
        }
        assert names == {"process_name", "thread_name"}
        assert document["otherData"]["repro_metrics"] == {"a": 1}

    def test_non_json_attrs_stringified(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("s", thing=object()):
            pass
        (event,) = [
            e for e in obs.chrome_trace_events(tracer.roots) if e["ph"] == "X"
        ]
        assert isinstance(event["args"]["thing"], str)


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = obs.MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(5)
        registry.gauge("depth").dec(2)
        histogram = registry.histogram("seconds")
        histogram.observe(0.002)
        histogram.observe(4.0)
        assert registry.counter("hits").value == 3.0
        assert registry.gauge("depth").value == 3.0
        assert histogram.count == 2
        assert histogram.mean == pytest.approx(2.001)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            obs.MetricsRegistry().counter("c").inc(-1)

    def test_labels_separate_series(self):
        registry = obs.MetricsRegistry()
        registry.counter("tasks", mode="pool").inc(2)
        registry.counter("tasks", mode="inline").inc()
        assert registry.counter("tasks", mode="pool").value == 2.0
        assert registry.counter("tasks", mode="inline").value == 1.0
        assert 'tasks{mode="pool"}' in registry.to_dict()

    def test_merge_is_commutative_for_counters(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.counter("n").value == 7.0
        assert a.histogram("h").count == 2
        assert a.gauge("g").value == 9.0

    def test_registry_survives_pickling(self):
        registry = obs.MetricsRegistry()
        registry.counter("n", kind="x").inc(5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("n", kind="x").value == 5.0

    def test_prometheus_text(self):
        registry = obs.MetricsRegistry()
        registry.counter("pool.tasks", mode="pool").inc(3)
        registry.histogram("pool.task_seconds").observe(0.05)
        text = registry.prometheus_text()
        assert '# TYPE pool_tasks counter' in text
        assert 'pool_tasks{mode="pool"} 3.0' in text
        assert 'pool_task_seconds_bucket{le="+Inf"} 1' in text
        assert "pool_task_seconds_count 1" in text


class TestNullRecorder:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is obs.NULL

    def test_null_facade_allocates_nothing(self):
        assert obs.span("a", "cat", x=1) is obs.span("b")
        assert obs.counter("c") is obs.gauge("g") is obs.histogram("h")
        with obs.span("a") as span:
            assert span.set(x=1) is span
        obs.counter("c").inc()
        obs.gauge("g").set(2.0)
        obs.histogram("h").observe(0.1)
        assert obs.current_span() is None

    def test_disabled_call_sites_stay_cheap(self):
        # Generous absolute guard (~2.5 us/op allowed; the real cost is
        # tens of ns) — the rigorous budget is benchmarks/test_perf_obs.py.
        operations = 200_000
        start = time.perf_counter()
        for _ in range(operations):
            with obs.span("x", "cat", attr=1):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5, f"{elapsed / operations * 1e9:.0f} ns per no-op span"

    def test_use_restores_previous_recorder(self):
        with obs.use(obs.Recorder()):
            assert obs.enabled()
            with obs.use(obs.NULL):
                assert not obs.enabled()
            assert obs.enabled()
        assert not obs.enabled()

    def test_enable_disable(self):
        recorder = obs.enable()
        try:
            assert obs.current() is recorder and obs.enabled()
        finally:
            obs.disable()
        assert not obs.enabled()


class TestThreadIsolation:
    """The recorder is context-local — the fix the threaded server needs.

    Regression for the module-global ``_current``: two recorders active
    on concurrent threads must each see exactly their own spans and
    metrics, with zero cross-thread pollution.
    """

    def test_two_recorders_on_concurrent_threads_stay_isolated(self):
        import threading

        rounds = 200
        barrier = threading.Barrier(2)
        recorders = {}
        errors = []

        def worker(name: str) -> None:
            try:
                recorder = obs.Recorder()
                recorders[name] = recorder
                with obs.use(recorder):
                    barrier.wait(timeout=10)  # maximise interleaving
                    for index in range(rounds):
                        with obs.span("work", "test", owner=name, i=index):
                            obs.counter("ops", owner=name).inc()
                        assert obs.current() is recorder
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        for name, recorder in recorders.items():
            assert len(recorder.tracer.roots) == rounds
            owners = {s.attrs["owner"] for s in recorder.tracer.roots}
            assert owners == {name}, f"cross-thread span pollution: {owners}"
            assert recorder.metrics.value("ops", owner=name) == rounds
            other = "beta" if name == "alpha" else "alpha"
            assert recorder.metrics.value("ops", owner=other) is None

    def test_fresh_thread_starts_at_the_null_recorder(self):
        import threading

        seen = {}
        with obs.use(obs.Recorder()):

            def probe():
                seen["enabled"] = obs.enabled()
                seen["current"] = obs.current()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=10)
        assert seen["enabled"] is False
        assert seen["current"] is obs.NULL

    def test_enable_in_one_thread_does_not_leak(self):
        import threading

        def enabler():
            obs.enable()
            assert obs.enabled()
            # No disable(): thread death must not leave a global behind.

        thread = threading.Thread(target=enabler)
        thread.start()
        thread.join(timeout=10)
        assert not obs.enabled()


class TestPipelineTrace:
    def test_stage_spans_and_per_candidate_scoring(self):
        result, recorder = _isolate_traced()
        roots = recorder.tracer.roots
        names = {s.name for s in obs.iter_spans(roots)}
        assert {
            "isolate",
            "activation",
            "power.estimate",
            "sim.run",
            "score.batch",
            "score.candidate",
            "slack.check",
            "bank.insert",
        } <= names
        # One bank.insert span per isolated module, with the candidate named.
        inserts = obs.find_spans(roots, "bank.insert")
        assert sorted(s.attrs["candidate"] for s in inserts) == sorted(
            result.isolated_names
        )
        # One score.candidate span per cost evaluation.
        evaluations = sum(
            instrument.value
            for name, _, instrument in recorder.metrics
            if name == "score.evaluations"
        )
        assert len(obs.find_spans(roots, "score.candidate")) == evaluations > 0

    def test_pipeline_metrics_recorded(self):
        result, recorder = _isolate_traced()
        payload = recorder.metrics.to_dict()
        assert payload['candidates.isolated{style="and"}']["value"] == len(
            result.isolated_names
        )
        assert any(key.startswith("module.power_mw") for key in payload)
        assert any(key.startswith("bdd.nodes") for key in payload)

    def test_stage_timings_derivable_from_spans(self):
        result, recorder = _isolate_traced()
        derived = StageTimings.from_spans(recorder.tracer.roots)
        assert derived.simulations == result.timings.simulations
        assert derived.engine == result.timings.engine
        assert derived.workers == result.timings.workers
        assert derived.simulate_s == pytest.approx(
            result.timings.simulate_s, rel=0.25
        )
        assert derived.transform_s >= 0 and derived.score_s >= 0

    def test_pooled_trace_matches_serial_candidate_sequence(self):
        serial_result, serial = _isolate_traced(workers=1)
        pooled_result, pooled = _isolate_traced(workers=2)
        assert pooled_result.isolated_names == serial_result.isolated_names

        def scored(recorder):
            return [
                (s.name, s.attrs["candidate"], s.attrs["accepted"])
                for s in obs.find_spans(recorder.tracer.roots, "score.candidate")
            ]

        assert scored(pooled) == scored(serial)

    def test_pooled_merge_is_deterministic(self):
        _, first = _isolate_traced(workers=2)
        _, second = _isolate_traced(workers=2)
        assert obs.span_shape(first.tracer.roots) == obs.span_shape(
            second.tracer.roots
        )

    def test_pool_task_spans_ride_back_from_workers(self):
        _, recorder = _isolate_traced(workers=2)
        tasks = obs.find_spans(recorder.tracer.roots, "pool.task")
        assert tasks, "pooled run recorded no worker-side spans"
        assert all(t.track.startswith("task-") for t in tasks)
        maps = obs.find_spans(recorder.tracer.roots, "pool.map")
        assert {m.attrs["mode"] for m in maps} <= {"pool", "inline"}


class TestSessionSurface:
    def test_runconfig_trace_records_through_session(self, tmp_path):
        session = api.Session(
            design1(), run=RunConfig(cycles=150, warmup=8, trace=True)
        )
        session.estimate()
        roots = session.trace()
        assert obs.find_spans(roots, "power.estimate")
        assert len(session.metrics()) > 0
        path = str(tmp_path / "session.json")
        session.write_trace(path)
        reloaded = obs.read_chrome_trace(path)
        assert obs.spans_to_dicts(reloaded) == obs.spans_to_dicts(roots)

    def test_traced_calls_accumulate(self):
        session = api.Session(design1(), run=RunConfig(cycles=120, trace=True))
        session.estimate()
        first = len(session.trace())
        session.isolate()
        assert len(session.trace()) > first
        assert obs.find_spans(session.trace(), "isolate")

    def test_untraced_session_records_nothing(self):
        session = api.Session(design1(), run=RunConfig(cycles=120))
        session.estimate()
        assert session.trace() == []
        assert len(session.metrics()) == 0

    def test_per_call_run_override_enables_tracing(self):
        session = api.Session(design1(), run=RunConfig(cycles=120))
        session.estimate(run=RunConfig(cycles=120, trace=True))
        assert obs.find_spans(session.trace(), "power.estimate")
