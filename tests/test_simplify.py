"""Unit and property tests for algebraic simplification."""

from hypothesis import given, settings

from repro.boolean.bdd import BddManager
from repro.boolean.expr import and_, not_, or_, var
from repro.boolean.simplify import simplify
from tests.test_expr import envs, exprs


class TestSimplifyRules:
    def test_absorption_or(self):
        a, b = var("a"), var("b")
        assert simplify(or_(a, and_(a, b))) == a

    def test_absorption_and(self):
        a, b = var("a"), var("b")
        assert simplify(and_(a, or_(a, b))) == a

    def test_subsumption(self):
        a, b, c = var("a"), var("b"), var("c")
        e = or_(and_(a, b), and_(a, b, c))
        assert simplify(e) == and_(a, b)

    def test_unit_propagation_in_and(self):
        a, b = var("a"), var("b")
        # a * (a + b) -> a ; a * (!a + b) -> a*b
        assert simplify(and_(a, or_(not_(a), b))) == and_(a, b)

    def test_unit_propagation_in_or(self):
        a, b = var("a"), var("b")
        # a + (!a * b) -> a + b
        assert simplify(or_(a, and_(not_(a), b))) == or_(a, b)

    def test_already_simple_untouched(self):
        e = or_(and_(var("S2"), var("G1")), and_(not_(var("S0")), var("S1"), var("G0")))
        assert simplify(e) == e

    def test_literal_count_never_increases_on_examples(self):
        cases = [
            or_(var("a"), and_(var("a"), var("b"), var("c"))),
            and_(var("a"), var("a"), or_(var("b"), var("b"))),
            or_(and_(var("a"), var("b")), and_(var("b"), var("a"))),
        ]
        for e in cases:
            assert simplify(e).literal_count() <= e.literal_count()


class TestSimplifyProperties:
    @settings(max_examples=300, deadline=None)
    @given(e=exprs(), env=envs())
    def test_preserves_semantics_pointwise(self, e, env):
        assert simplify(e).evaluate(env) == e.evaluate(env)

    @settings(max_examples=150, deadline=None)
    @given(e=exprs())
    def test_preserves_function_canonically(self, e):
        manager = BddManager()
        assert manager.equivalent(e, simplify(e))

    @settings(max_examples=150, deadline=None)
    @given(e=exprs())
    def test_idempotent(self, e):
        once = simplify(e)
        assert simplify(once) == once

    @settings(max_examples=150, deadline=None)
    @given(e=exprs())
    def test_never_grows(self, e):
        assert simplify(e).literal_count() <= e.literal_count()
