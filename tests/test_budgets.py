"""Resource budgets: BDD node caps with bounded fallback, batch checkpoints."""

import warnings

import numpy as np
import pytest

from repro.boolean import (
    BddManager,
    and_,
    not_,
    or_,
    probability_bounds,
    signal_probability,
    var,
)
from repro.errors import BooleanError, BudgetExceededError, SimulationError
from repro.designs import design1
from repro.sim import (
    BatchCheckpoint,
    BatchRandomStimulus,
    BatchSimulator,
    BatchToggleMonitor,
)


def _wide_expr(n=8):
    xs = [var(f"x{i}") for i in range(n)]
    ys = [var(f"y{i}") for i in range(n)]
    return or_(*[and_(a, b) for a, b in zip(xs, ys)]), xs + ys


# ----------------------------------------------------------------------
# BDD node budget
# ----------------------------------------------------------------------
def test_budget_exceeded_raises_with_accounting():
    expr, _ = _wide_expr()
    manager = BddManager(max_nodes=10)
    with pytest.raises(BudgetExceededError) as excinfo:
        manager.from_expr(expr)
    assert excinfo.value.budget == 10
    assert excinfo.value.used >= 10
    assert "budget" in str(excinfo.value)


def test_budget_must_allow_terminals():
    with pytest.raises(BooleanError):
        BddManager(max_nodes=1)


def test_unbounded_by_default():
    expr, _ = _wide_expr()
    manager = BddManager()
    assert manager.max_nodes is None
    node = manager.from_expr(expr)  # must not raise
    assert node not in (manager.FALSE, manager.TRUE)


def test_generous_budget_never_triggers():
    expr, _ = _wide_expr(4)
    manager = BddManager(max_nodes=10_000)
    exact = manager.expr_probability(expr, {})
    assert 0.0 < exact < 1.0


# ----------------------------------------------------------------------
# Probability bounds (Fréchet fallback)
# ----------------------------------------------------------------------
def test_bounds_exact_on_literals():
    x = var("x")
    assert probability_bounds(x, {"x": 0.3}) == (0.3, 0.3)
    assert probability_bounds(not_(x), {"x": 0.3}) == (0.7, 0.7)


def test_bounds_bracket_exact_probability():
    rng = np.random.default_rng(7)
    names = [f"v{i}" for i in range(6)]
    vs = [var(n) for n in names]
    for trial in range(20):
        # Random 3-term SOP over 6 variables, some negated, reconvergent.
        terms = []
        for _ in range(3):
            picks = rng.choice(6, size=2, replace=False)
            lits = [
                vs[p] if rng.random() < 0.5 else not_(vs[p]) for p in picks
            ]
            terms.append(and_(*lits))
        expr = or_(*terms)
        probs = {n: float(rng.uniform(0.05, 0.95)) for n in names}
        exact = BddManager().expr_probability(expr, probs)
        low, high = probability_bounds(expr, probs)
        assert low - 1e-12 <= exact <= high + 1e-12, (trial, low, exact, high)
        assert 0.0 <= low <= high <= 1.0


def test_signal_probability_fallback_warns_and_bounds():
    expr, names = _wide_expr()
    probs = {v.name: 0.3 for v in names}
    exact = signal_probability(expr, probs)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        approx = signal_probability(expr, probs, max_nodes=10)
    assert len(caught) == 1
    assert issubclass(caught[0].category, RuntimeWarning)
    assert "fell back" in str(caught[0].message)
    low, high = probability_bounds(expr, probs)
    assert approx == pytest.approx((low + high) / 2)
    assert low <= exact <= high


def test_signal_probability_exact_when_budget_suffices():
    expr, names = _wide_expr(3)
    probs = {v.name: 0.4 for v in names}
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        exact = signal_probability(expr, probs, max_nodes=10_000)
    assert exact == pytest.approx(signal_probability(expr, probs))


# ----------------------------------------------------------------------
# Batch checkpoint / resume
# ----------------------------------------------------------------------
def _run_with_checkpoints(design, seed=3, cycles=100, warmup=10, every=25):
    sim = BatchSimulator(design, batch_size=8)
    stim = BatchRandomStimulus(design, batch_size=8, seed=seed)
    monitors = sim.run(
        stim,
        cycles=cycles,
        monitors=[BatchToggleMonitor()],
        warmup=warmup,
        checkpoint_every=every,
    )
    return sim, monitors[0]


def test_checkpoint_recorded_during_run():
    design = design1()
    sim, _ = _run_with_checkpoints(design)
    ck = sim.last_checkpoint
    assert isinstance(ck, BatchCheckpoint)
    assert ck.step_index == 100  # last multiple of 25 within 110 steps
    assert ck.monitors and isinstance(ck.monitors[0], BatchToggleMonitor)
    # Identity preservation: the copied monitor observes the very same
    # Net objects as the live design (deepcopy shared them via memo).
    assert set(ck.monitors[0].toggles) <= set(design.nets)


def test_resume_reproduces_interrupted_run():
    design = design1()
    sim, monitor = _run_with_checkpoints(design)
    reference = {net.name: monitor.toggles[net].copy() for net in monitor.toggles}
    ck = sim.last_checkpoint

    # "After the fault": fresh simulator, stimulus replayed to the
    # checkpoint cycle (bit-exact replay keeps this test deterministic).
    sim2 = BatchSimulator(design, batch_size=8)
    stim2 = BatchRandomStimulus(design, batch_size=8, seed=3)
    for cycle in range(ck.cycle):
        stim2.values(cycle)
    monitors = sim2.run(stim2, cycles=100, warmup=10, resume_from=ck)
    resumed = monitors[0]
    assert resumed.cycles == monitor.cycles
    for net in monitor.toggles:
        assert (resumed.toggles[net] == reference[net.name]).all(), net.name


def test_checkpoint_is_reusable():
    design = design1()
    sim, _ = _run_with_checkpoints(design)
    ck = sim.last_checkpoint
    results = []
    for _ in range(2):
        sim_n = BatchSimulator(design, batch_size=8)
        stim_n = BatchRandomStimulus(design, batch_size=8, seed=3)
        for cycle in range(ck.cycle):
            stim_n.values(cycle)
        mon = sim_n.run(stim_n, cycles=100, warmup=10, resume_from=ck)[0]
        results.append({n.name: mon.toggles[n].copy() for n in mon.toggles})
    assert all((results[0][k] == results[1][k]).all() for k in results[0])


def test_checkpoint_every_validation():
    design = design1()
    sim = BatchSimulator(design, batch_size=4)
    stim = BatchRandomStimulus(design, batch_size=4, seed=0)
    with pytest.raises(SimulationError):
        sim.run(stim, cycles=10, checkpoint_every=0)


def test_batch_rejects_checked_engine():
    with pytest.raises(SimulationError) as excinfo:
        BatchSimulator(design1(), batch_size=4, engine="checked")
    assert "checked" in str(excinfo.value)
