"""Fuzz corpus: malformed netlist text must fail with NetlistError only.

Every file under ``tests/data/fuzz`` is a netlist the parser must
reject. The contract pinned here is the robustness guarantee of
:func:`repro.netlist.textio.loads`:

* the raised exception is a :class:`NetlistError` (a typed ReproError),
  never a bare ``IndexError``/``ValueError``/``KeyError`` escaping the
  parser internals;
* whenever the problem is attributable to a line, the message carries
  ``line <n>`` so users can find it.
"""

import glob
import os
import re

import pytest

from repro.errors import NetlistError, ReproError
from repro.netlist import textio

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "fuzz")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.rtl")))

# Whole-file problems have no single offending line.
NO_LINE_NUMBER = {"empty.rtl", "no_design.rtl"}


def corpus_ids():
    return [os.path.basename(path) for path in CORPUS]


def test_corpus_present():
    assert len(CORPUS) >= 12, "fuzz corpus went missing"


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_malformed_file_raises_netlist_error(path):
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        text = handle.read()
    with pytest.raises(NetlistError) as excinfo:
        textio.loads(text)
    # Typed: a ReproError subclass, and not a disguised internal error.
    assert isinstance(excinfo.value, ReproError)
    message = str(excinfo.value)
    assert message, "error message must not be empty"
    if os.path.basename(path) not in NO_LINE_NUMBER:
        assert re.search(r"line \d+", message), (
            f"{os.path.basename(path)}: expected a line number in {message!r}"
        )


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_load_from_file_also_typed(path, tmp_path):
    # The file-level entry point must present the same typed surface.
    with pytest.raises(NetlistError):
        textio.load(path)


def test_missing_file_is_netlist_error(tmp_path):
    with pytest.raises(NetlistError) as excinfo:
        textio.load(str(tmp_path / "does_not_exist.rtl"))
    assert "cannot read netlist" in str(excinfo.value)


def test_undecodable_file_is_netlist_error(tmp_path):
    path = tmp_path / "bad_encoding.rtl"
    path.write_bytes(b"design t\nnet \xff\xfe\x00A 8\n")
    with pytest.raises(NetlistError):
        textio.load(str(path))


def test_mutated_good_netlist_never_escapes_untyped():
    """Single-token mutations of a valid netlist stay typed.

    Deterministic fuzzing: drop, duplicate or truncate each token of a
    known-good serialisation and require that parsing either succeeds or
    raises NetlistError — nothing else.
    """
    from repro.designs import design1

    good = textio.dumps(design1())
    tokens = good.split(" ")
    mutations = []
    for i in range(len(tokens)):
        mutations.append(" ".join(tokens[:i] + tokens[i + 1 :]))  # drop
        mutations.append(" ".join(tokens[:i] + [tokens[i][:1]] + tokens[i + 1 :]))
    for mutated in mutations:
        try:
            textio.loads(mutated)
        except NetlistError:
            pass  # typed rejection is the contract
        # any other exception propagates and fails the test
