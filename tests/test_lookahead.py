"""Tests for the one-cycle look-ahead activation extension."""

import pytest

from repro.boolean.bdd import BddManager
from repro.boolean.expr import TRUE, and_, not_, or_, var
from repro.core import IsolationConfig, derive_activation_functions, isolate_design
from repro.core.isolate import isolate_candidate
from repro.core.lookahead import (
    Unpredictable,
    derive_with_lookahead,
    predict_next,
    register_lookahead_functions,
)
from repro.designs import design1, lookahead_pipeline
from repro.sim import ControlStream, random_stimulus
from repro.verify import check_observable_equivalence


def pipeline_stimulus(design, seed=3):
    return random_stimulus(
        design,
        seed=seed,
        control_probability=0.25,
        overrides={
            "SEL_IN": ControlStream(0.3, 0.2),
            "G_IN": ControlStream(0.3, 0.2),
        },
    )


class TestPrediction:
    def test_free_running_register_predicts_to_d_input(self):
        design = lookahead_pipeline()
        # r_sel's Q next cycle == SEL_IN now.
        predicted = predict_next(design, var("r_sel"))
        assert predicted == var("SEL_IN")

    def test_constant_predicts_to_itself(self):
        from repro.designs import design2

        design = design2()
        # c_ph0 drives a constant net; predicting its bits gives constants.
        predicted = predict_next(design, var("cnt_q[0]"))
        # cnt_q is a free register: next value = current cnt_inc output bit,
        # which is a module output -> the module-output bit is the atom.
        assert "cnt_inc[0]" in predicted.support()

    def test_pi_is_unpredictable(self):
        design = lookahead_pipeline()
        with pytest.raises(Unpredictable):
            predict_next(design, var("G_IN"))

    def test_enabled_register_prediction_muxes_on_enable(self, d1):
        # acc has an enable GB: next = GB·D + !GB·Q (bitwise on bit 0).
        predicted = predict_next(design1(), var("acc_q[0]"))
        assert "GB" in predicted.support()


class TestDerivation:
    def test_baseline_blind_on_pipeline(self):
        design = lookahead_pipeline()
        baseline = derive_activation_functions(design)
        assert baseline.of_module(design.cell("pmul")) == TRUE

    def test_lookahead_finds_consumption_window(self):
        design = lookahead_pipeline()
        analysis = derive_with_lookahead(design, depth=1)
        expected = and_(var("SEL_IN"), var("G_IN"))
        assert BddManager().equivalent(
            analysis.of_module(design.cell("pmul")), expected
        )

    def test_depth_zero_is_baseline(self):
        design = lookahead_pipeline()
        analysis = derive_with_lookahead(design, depth=0)
        assert analysis.of_module(design.cell("pmul")) == TRUE

    def test_enabled_registers_keep_constant_one(self, d1):
        functions = register_lookahead_functions(
            d1, derive_activation_functions(d1)
        )
        enabled = {r for r in d1.registers if r.has_enable}
        assert not (set(functions) & enabled)

    def test_lookahead_never_weakens_baseline(self, d1, d2):
        """Look-ahead can only strengthen (restrict) activation windows."""
        manager = BddManager()
        for design in (d1, d2):
            base = derive_activation_functions(design)
            ahead = derive_with_lookahead(design, depth=2)
            for module in design.datapath_modules:
                assert manager.implies(
                    ahead.of_module(module), base.of_module(module)
                )


class TestIsolationWithLookahead:
    @pytest.mark.parametrize("style", ["and", "or", "latch"])
    def test_outputs_equivalent(self, style):
        design = lookahead_pipeline()
        working = design.copy()
        analysis = derive_with_lookahead(working, depth=1)
        isolate_candidate(
            working,
            working.cell("pmul"),
            analysis.of_module(working.cell("pmul")),
            style,
        )
        report = check_observable_equivalence(
            design, working, pipeline_stimulus(design), 4000,
            compare_registers=False,
        )
        assert report.equivalent, report.mismatches[:3]

    def test_algorithm_with_lookahead_saves_power(self):
        design = lookahead_pipeline()

        def stim():
            return pipeline_stimulus(design)

        blind = isolate_design(
            design, stim, IsolationConfig(cycles=600, lookahead_depth=0)
        )
        sighted = isolate_design(
            design, stim, IsolationConfig(cycles=600, lookahead_depth=1)
        )
        assert "pmul" not in blind.isolated_names
        assert "pmul" in sighted.isolated_names
        assert sighted.power_reduction > blind.power_reduction + 0.3

        report = check_observable_equivalence(
            design, sighted.design, stim(), 3000, compare_registers=False
        )
        assert report.equivalent
