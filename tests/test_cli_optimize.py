"""The `repro optimize` surface: CLI subcommand, compare column, serve job."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.designs import design1
from repro.errors import ServeError
from repro.runconfig import RunConfig
from repro.serve import DONE, JobService
from repro.serve.cache import job_cache_key
from repro.serve.jobs import METHODS, _validate_params

RUN = {"cycles": 150, "warmup": 8, "engine": "compiled", "workers": 1}


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def direct_payload(method: str, design, params=None) -> dict:
    session = api.Session(design, run=RunConfig(**RUN))
    _, builder = METHODS[method]
    return builder(session, params or {})


class TestOptimizeCommand:
    def test_default_passes_summary(self, capsys):
        code = main(
            [
                "optimize",
                "--builtin", "design1",
                "--cycles", "300",
                "--override", "EN=0.2:0.05",
                "--verify-cycles", "500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Low-power optimization of 'design1'" in out
        assert "isolation" in out and "clock_gating" in out
        assert "PASSED" in out

    def test_json_payload_shape(self, capsys):
        code = main(
            [
                "optimize",
                "--builtin", "design1",
                "--cycles", "300",
                "--override", "EN=0.2:0.05",
                "--verify-cycles", "0",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passes"] == ["isolation", "clock_gating"]
        assert payload["design"] == "design1"
        applied_passes = {t["pass"] for t in payload["applied"]}
        assert applied_passes == {"isolation", "clock_gating"}
        assert set(payload["per_pass_net_mw"]) == {"isolation", "clock_gating"}

    def test_single_pass_list(self, capsys):
        code = main(
            [
                "optimize",
                "--builtin", "design1",
                "--passes", "clock_gating",
                "--cycles", "300",
                "--override", "EN=0.2:0.05",
                "--verify-cycles", "0",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passes"] == ["clock_gating"]
        assert all(t["pass"] == "clock_gating" for t in payload["applied"])

    def test_unknown_pass_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["optimize", "--builtin", "design1", "--passes", "warp"])
        err = capsys.readouterr().err
        assert "unknown pass" in err

    def test_out_message_says_optimized(self, tmp_path, capsys):
        out_rtl = tmp_path / "opt.rtl"
        code = main(
            [
                "optimize",
                "--builtin", "design1",
                "--cycles", "200",
                "--override", "EN=0.2:0.05",
                "--verify-cycles", "0",
                "--out", str(out_rtl),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"optimized netlist written to {out_rtl}" in out
        assert out_rtl.exists()


class TestCompareWithPasses:
    def test_table_has_per_pass_columns(self, capsys):
        code = main(
            [
                "compare",
                "--builtin", "design1",
                "--cycles", "200",
                "--override", "EN=0.2:0.05",
                "--passes", "isolation,clock_gating",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "isolation[mW]" in out
        assert "clock_gating[mW]" in out

    def test_json_rows_carry_pass_savings(self, capsys):
        code = main(
            [
                "compare",
                "--builtin", "design1",
                "--cycles", "200",
                "--override", "EN=0.2:0.05",
                "--passes", "isolation,clock_gating",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        isolated_rows = [r for r in rows if r["label"] != "non-isolated"]
        assert isolated_rows
        for row in isolated_rows:
            assert set(row["pass_savings_mw"]) == {"isolation", "clock_gating"}

    def test_without_passes_no_column(self, capsys):
        code = main(
            [
                "compare",
                "--builtin", "design1",
                "--cycles", "200",
                "--override", "EN=0.2:0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "isolation[mW]" not in out


class TestProfileWithPasses:
    def test_profile_clock_gating_spans(self, capsys):
        code = main(
            [
                "profile",
                "--builtin", "design1",
                "--cycles", "200",
                "--override", "EN=0.2:0.05",
                "--passes", "isolation,clock_gating",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in payload["spans"]}
        # The multi-pass path uses the "optimize" root span layout.
        assert "optimize" in names
        assert "clock.gate" in names
        assert payload["passes"] == ["isolation", "clock_gating"]
        assert payload["transformed"]


class TestServeOptimize:
    def test_served_result_matches_direct_session(self):
        service = JobService(queue_size=8, job_workers=2, cache_capacity=32)
        try:
            params = {"passes": ["isolation", "clock_gating"]}
            job = service.submit(
                "optimize", builtin="design1", run=RUN, params=params
            )
            job = service.wait(job.id, timeout=120)
            assert job.state == DONE, job.error
            expected = direct_payload("optimize", design1(), params)
            assert canon(job.result) == canon(expected)
            assert "timings" not in job.result
        finally:
            service.shutdown()

    def test_cached_result_is_byte_identical(self):
        service = JobService(queue_size=8, job_workers=2, cache_capacity=32)
        try:
            params = {"passes": ["isolation"]}
            cold = service.wait(
                service.submit(
                    "optimize", builtin="design1", run=RUN, params=params
                ).id,
                timeout=120,
            )
            warm = service.wait(
                service.submit(
                    "optimize", builtin="design1", run=RUN, params=params
                ).id,
                timeout=120,
            )
            assert cold.state == DONE and warm.state == DONE
            assert not cold.cached and warm.cached
            assert canon(warm.result) == canon(cold.result)
        finally:
            service.shutdown()

    def test_cache_key_orders_pass_list(self):
        fp, run_fp = "d" * 16, "r" * 16
        fwd = job_cache_key(
            "optimize", fp, run_fp, {"passes": ["isolation", "clock_gating"]}
        )
        rev = job_cache_key(
            "optimize", fp, run_fp, {"passes": ["clock_gating", "isolation"]}
        )
        solo = job_cache_key("optimize", fp, run_fp, {"passes": ["isolation"]})
        assert len({fwd, rev, solo}) == 3

    @pytest.mark.parametrize(
        "bad",
        [[], "isolation", ["warp"], ["isolation", "isolation"]],
    )
    def test_validate_params_rejects_bad_passes(self, bad):
        with pytest.raises(ServeError):
            _validate_params("optimize", {"passes": bad})

    def test_validate_params_accepts_good_passes(self):
        params = {"passes": ["isolation", "clock_gating"], "style": "or"}
        assert _validate_params("optimize", params) is params


class TestSubmitOptimize:
    def test_submit_flow_against_live_server(self, capsys):
        from repro.serve import make_server

        service = JobService(queue_size=8, job_workers=1, cache_capacity=8)
        server = make_server("127.0.0.1", 0, service)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            code = main(
                [
                    "submit",
                    "--url", server.url,
                    "--builtin", "design1",
                    "--method", "optimize",
                    "--passes", "isolation,clock_gating",
                    "--cycles", "150",
                    "--engine", "compiled",
                    "--json",
                ]
            )
            payload = json.loads(capsys.readouterr().out)
            assert code == 0
            assert payload["state"] == "done"
            assert payload["result"]["passes"] == ["isolation", "clock_gating"]
        finally:
            server.shutdown()
            service.shutdown()
            server.server_close()
            thread.join(timeout=10)
