"""Bit-exactness of the compiled engine against the reference engine.

Every benchmark generator in :mod:`repro.designs` (including
``soc_datapath`` and several ``random_datapath`` seeds) is simulated by
both engines cycle-by-cycle and compared on every net — before and
after the isolation transform — plus monitor-statistic equality and the
``simulate``/``estimate_power``/``BatchSimulator`` engine plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.designs as designs
from repro.core.candidates import find_candidates
from repro.core.isolate import deisolate_candidate, isolate_candidate
from repro.errors import SimulationError
from repro.power import estimate_power
from repro.runconfig import RunConfig
from repro.sim import (
    BatchRandomStimulus,
    BatchSimulator,
    CompiledSimulator,
    ProbeSet,
    Simulator,
    ToggleMonitor,
    make_simulator,
    random_stimulus,
    simulate,
)

GENERATORS = [
    "paper_example",
    "design1",
    "design2",
    "fir_datapath",
    "alu_control_dominated",
    "shared_bus_datapath",
    "lookahead_pipeline",
    "correlated_chain",
    "cordic_pipeline",
    "soc_datapath",
]

RANDOM_SEEDS = [0, 1, 5, 11]


def assert_equivalent(reference_design, compiled_design, cycles=120, seed=7):
    """Step both engines in lockstep and compare every net every cycle."""
    ref_stim = random_stimulus(reference_design, seed=seed)
    comp_stim = random_stimulus(compiled_design, seed=seed)
    reference = Simulator(reference_design)
    compiled = CompiledSimulator(compiled_design)
    for cycle in range(cycles):
        ref_values = reference.step(ref_stim.values(reference.cycle))
        comp_values = compiled.step(comp_stim.values(compiled.cycle))
        by_name_ref = {net.name: value for net, value in ref_values.items()}
        by_name_comp = {
            net.name: comp_values[net] for net in compiled_design.nets
        }
        assert by_name_ref == by_name_comp, (
            f"cycle {cycle}: "
            + str({
                name: (by_name_ref[name], by_name_comp.get(name))
                for name in by_name_ref
                if by_name_ref[name] != by_name_comp.get(name)
            })
        )
        reference.commit()
        compiled.commit()


class TestBitExactness:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_every_generator(self, generator):
        maker = getattr(designs, generator)
        assert_equivalent(maker(), maker())

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_datapath_seeds(self, seed):
        assert_equivalent(
            designs.random_datapath(seed=seed), designs.random_datapath(seed=seed)
        )

    @pytest.mark.parametrize("style", ["and", "or", "latch"])
    def test_after_isolation(self, style):
        ref = designs.design1()
        comp = designs.design1()
        for design in (ref, comp):
            candidate = find_candidates(design)[0]
            isolate_candidate(design, candidate.cell, candidate.activation, style)
        assert_equivalent(ref, comp)

    def test_after_deisolation(self):
        ref = designs.design1()
        comp = designs.design1()
        candidate = find_candidates(comp)[0]
        instance = isolate_candidate(
            comp, candidate.cell, candidate.activation, "and"
        )
        deisolate_candidate(comp, instance)
        assert_equivalent(ref, comp)


class TestMonitorEquivalence:
    @pytest.mark.parametrize("cycles,warmup", [(1, 0), (300, 16), (257, 0)])
    def test_toggle_monitor_statistics(self, cycles, warmup):
        d_ref, d_comp = designs.design1(), designs.design1()
        mon_ref, mon_comp = ToggleMonitor(), ToggleMonitor()
        Simulator(d_ref).run(
            random_stimulus(d_ref, seed=5), cycles, [mon_ref], warmup=warmup
        )
        CompiledSimulator(d_comp).run(
            random_stimulus(d_comp, seed=5), cycles, [mon_comp], warmup=warmup
        )
        assert mon_ref.cycles == mon_comp.cycles
        for net_ref in d_ref.nets:
            net_comp = d_comp.net(net_ref.name)
            assert mon_ref.toggles[net_ref] == mon_comp.toggles[net_comp]
            assert mon_ref.ones[net_ref] == mon_comp.ones[net_comp]
            assert mon_ref.toggle_rate(net_ref) == mon_comp.toggle_rate(net_comp)
            assert mon_ref.one_probability(net_ref) == mon_comp.one_probability(
                net_comp
            )

    def test_probe_set_statistics(self):
        d_ref, d_comp = designs.paper_example(), designs.paper_example()
        from repro.boolean import var

        probes_ref = ProbeSet({"g0": var("G0")})
        probes_comp = ProbeSet({"g0": var("G0")})
        Simulator(d_ref).run(random_stimulus(d_ref, seed=3), 200, [probes_ref])
        CompiledSimulator(d_comp).run(
            random_stimulus(d_comp, seed=3), 200, [probes_comp]
        )
        assert probes_ref.probability("g0") == probes_comp.probability("g0")


class TestEnginePlumbing:
    def test_simulate_engine_kwarg(self, d1):
        result = simulate(d1, random_stimulus(d1, seed=2), 50, engine="compiled")
        assert result.cycles == 50

    def test_make_simulator(self, d1):
        assert isinstance(make_simulator(d1, "python"), Simulator)
        assert isinstance(make_simulator(d1, "compiled"), CompiledSimulator)
        with pytest.raises(SimulationError):
            make_simulator(d1, "verilator")

    def test_estimate_power_engines_agree(self, d1):
        run = RunConfig(cycles=400)
        py = estimate_power(d1, random_stimulus(d1, seed=4), run=run)
        comp = estimate_power(
            d1, random_stimulus(d1, seed=4), run=run, engine="compiled"
        )
        assert py.total_power_mw == pytest.approx(comp.total_power_mw, abs=1e-12)

    def test_stimulus_missing_input_message(self, d1):
        compiled = CompiledSimulator(d1)
        with pytest.raises(SimulationError, match="provides no value"):
            compiled.step({})

    def test_reset_restores_power_on_state(self, d1):
        compiled = CompiledSimulator(d1)
        stim = random_stimulus(d1, seed=1)
        initial = {net.name: compiled.values[net] for net in d1.nets}
        for _ in range(20):
            compiled.step(stim.values(compiled.cycle))
            compiled.commit()
        compiled.reset()
        assert compiled.cycle == 0
        assert {net.name: compiled.values[net] for net in d1.nets} == initial


class TestBatchCompiledEngine:
    @pytest.mark.parametrize("generator", ["design1", "soc_datapath"])
    def test_batch_engines_agree(self, generator):
        maker = getattr(designs, generator)
        d_ref, d_comp = maker(), maker()
        stim_ref = BatchRandomStimulus(d_ref, batch_size=8, seed=4)
        stim_comp = BatchRandomStimulus(d_comp, batch_size=8, seed=4)
        ref = BatchSimulator(d_ref, batch_size=8)
        comp = BatchSimulator(d_comp, batch_size=8, engine="compiled")
        for _ in range(80):
            ref_values = ref.step(stim_ref.values(ref.cycle))
            comp_values = comp.step(stim_comp.values(comp.cycle))
            for net_ref in d_ref.nets:
                assert np.array_equal(
                    ref_values[net_ref], comp_values[d_comp.net(net_ref.name)]
                ), net_ref.name
            ref.commit()
            comp.commit()

    def test_batch_rejects_unknown_engine(self, d1):
        with pytest.raises(SimulationError):
            BatchSimulator(d1, engine="verilator")
