"""Supervised execution: deadlines, crash retry, leases, circuit breaker.

The execution-robustness contract pinned here:

* a supervised job runs in a killable worker process; killing that
  process mid-job is a *transient* failure — the job retries with
  backoff and completes;
* the attempt budget is bounded: persistent crashes end in a permanent
  ``retry-budget-exhausted`` failure with a structured diagnostic;
* a deadline is a budget, not a fault: exceeding ``timeout_s`` kills
  the process and fails the job permanently (no retry);
* task errors inside the child ride back as :class:`RemoteJobError`
  and render exactly like inline failures — permanent, no retry;
* repeated crash-class failures open a circuit breaker that degrades
  to inline execution (service stays available, reason recorded) and
  a successful half-open probe closes it again;
* an expired lease revokes the running attempt: bump the token,
  re-enqueue (or fail once the budget is gone) — completion is applied
  exactly once.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.designs import paper_example
from repro.netlist import textio
from repro.runconfig import RunConfig
from repro.serve import DONE, FAILED, QUEUED, RUNNING, JobService, WorkerSupervisor
from repro.serve.jobs import METHODS
from repro.serve.supervisor import CLOSED, HALF_OPEN, OPEN, RemoteJobError

RUN = {"cycles": 120, "engine": "compiled", "workers": 1}


def make_service(**kwargs) -> JobService:
    kwargs.setdefault("queue_size", 8)
    kwargs.setdefault("job_workers", 1)
    kwargs.setdefault("supervise", True)
    kwargs.setdefault("retry_base_s", 0.01)
    kwargs.setdefault("retry_cap_s", 0.05)
    return JobService(**kwargs)


def _wire_payload(method: str = "validate") -> dict:
    return {
        "method": method,
        "design_text": textio.dumps(paper_example()),
        "run": RunConfig(cycles=50).to_dict(),
        "params": {},
    }


class TestSupervisedExecution:
    def test_normal_job_completes_in_one_attempt(self):
        service = make_service()
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=120)
            assert job.state == DONE and job.attempts == 1
            assert service.supervisor.status()["executed"] == 1
        finally:
            service.shutdown()

    def test_crashing_child_retries_then_exhausts_budget(self, monkeypatch):
        # The supervisor forks, so the child inherits this patch — the
        # same injection channel the chaos harness uses.
        def die(session, params):
            os._exit(17)

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), die))
        service = make_service(max_attempts=2)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=60)
            assert job.state == FAILED and job.attempts == 2
            assert job.error["type"] == "WorkerCrashError"
            codes = [d["code"] for d in job.error["diagnostics"]]
            assert "retry-budget-exhausted" in codes
            with service._obs_lock:
                assert service.recorder.metrics.value("serve.jobs.retries") == 1
        finally:
            service.shutdown()

    def test_deadline_kills_and_fails_permanently(self, monkeypatch):
        def sleepy(session, params):
            time.sleep(30)
            return {}

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), sleepy))
        service = make_service(max_attempts=3)
        try:
            job = service.submit(
                "estimate", builtin="design1", run=RUN, timeout_s=0.2
            )
            job = service.wait(job.id, timeout=60)
            assert job.state == FAILED
            assert job.attempts == 1  # a deadline is never retried
            assert job.error["type"] == "JobDeadlineError"
            assert job.error["diagnostics"][0]["code"] == "deadline-exceeded"
            assert service.supervisor.status()["deadline_kills"] == 1
            with service._obs_lock:
                assert service.recorder.metrics.value("serve.jobs.timeouts") == 1
        finally:
            service.shutdown()

    def test_task_error_crosses_pipe_as_permanent_failure(self, monkeypatch):
        def broken(session, params):
            raise ValueError("task-level problem")

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), broken))
        service = make_service(max_attempts=3)
        try:
            job = service.submit("estimate", builtin="design1", run=RUN)
            job = service.wait(job.id, timeout=60)
            assert job.state == FAILED and job.attempts == 1
            assert job.error["type"] == "ValueError"
            assert "task-level problem" in job.error["message"]
            assert job.error["diagnostics"]
        finally:
            service.shutdown()

    def test_submit_validates_robustness_knobs(self):
        service = make_service()
        try:
            from repro.errors import ServeError

            with pytest.raises(ServeError):
                service.submit(
                    "estimate", builtin="design1", run=RUN, timeout_s=0.0
                )
            with pytest.raises(ServeError):
                service.submit(
                    "estimate", builtin="design1", run=RUN, max_attempts=0
                )
        finally:
            service.shutdown()


class TestCircuitBreaker:
    def test_opens_after_threshold_and_degrades_inline(self):
        supervisor = WorkerSupervisor(
            circuit_threshold=2, circuit_cooldown_s=60.0
        )
        assert supervisor.circuit_state == CLOSED
        supervisor._record_crash("boom 1")
        assert supervisor.circuit_state == CLOSED
        supervisor._record_crash("boom 2")
        assert supervisor.circuit_state == OPEN
        assert "boom 2" in supervisor.open_reason
        # Open circuit: jobs run inline — available, not dark.
        result = supervisor.execute("j1", _wire_payload())
        assert result["ok"] is True
        assert supervisor.status()["inline_runs"] == 1

    def test_half_open_probe_success_closes(self):
        supervisor = WorkerSupervisor(circuit_threshold=1, circuit_cooldown_s=0.0)
        supervisor._record_crash("boom")
        assert supervisor.circuit_state == HALF_OPEN
        result = supervisor.execute("j1", _wire_payload())
        assert result["ok"] is True
        assert supervisor.circuit_state == CLOSED
        assert supervisor.status()["circuit"] == CLOSED

    def test_failed_half_open_probe_rearms_the_cooldown(self):
        supervisor = WorkerSupervisor(circuit_threshold=1, circuit_cooldown_s=60.0)
        supervisor._record_crash("first")
        supervisor._opened_at -= 120.0  # fast-forward into half-open
        assert supervisor.circuit_state == HALF_OPEN
        supervisor._record_crash("probe also crashed")
        assert supervisor.circuit_state == OPEN
        assert supervisor.status()["circuit_opens"] == 1  # one open, re-armed


class TestLeases:
    def _running_job(self, service, lease_expired: bool) -> object:
        job = service.submit("estimate", builtin="design1", run=RUN)
        with service._jobs_lock:
            job.state = RUNNING
            job.attempts = 1
            job.attempt_token = 1
            job.lease_expires_at = time.time() + (-1.0 if lease_expired else 60.0)
        return job

    def test_expired_lease_reenqueues_with_token_bump(self):
        service = make_service(start=False, max_attempts=3)
        job = self._running_job(service, lease_expired=True)
        token = job.attempt_token
        assert service._reap_expired_leases() == 1
        assert job.state == QUEUED and job.attempt_token == token + 1
        assert job.last_transient_error == "lease expired"
        with service._obs_lock:
            assert service.recorder.metrics.value("serve.leases.expired") == 1

    def test_live_lease_left_alone(self):
        service = make_service(start=False)
        job = self._running_job(service, lease_expired=False)
        assert service._reap_expired_leases() == 0
        assert job.state == RUNNING

    def test_expired_lease_with_spent_budget_fails(self):
        service = make_service(start=False, max_attempts=1)
        job = self._running_job(service, lease_expired=True)
        assert service._reap_expired_leases() == 1
        assert job.state == FAILED
        assert job.error["type"] == "LeaseExpiredError"
        assert job.error["diagnostics"][0]["code"] == "retry-budget-exhausted"

    def test_superseded_attempt_cannot_apply_its_outcome(self):
        # The exactly-once guard: after the reaper bumps the token, the
        # zombie attempt's outcome application must be a no-op.
        service = make_service(start=False, max_attempts=3)
        job = self._running_job(service, lease_expired=True)
        stale_token = job.attempt_token
        service._reap_expired_leases()
        assert job.state == QUEUED
        with service._jobs_lock:  # what the zombie attempt would do
            applied = job.attempt_token == stale_token and job.state == RUNNING
        assert not applied


class TestShutdownLiveness:
    def test_stuck_worker_thread_detected_and_reported(self, monkeypatch):
        def slow(session, params):
            time.sleep(1.5)
            return {"design": session.design.name}

        monkeypatch.setitem(METHODS, "estimate", (frozenset(), slow))
        service = JobService(queue_size=4, job_workers=1, supervise=False)
        try:
            service.submit("estimate", builtin="design1", run=RUN)
            time.sleep(0.1)  # let the worker pick the job up
            service.shutdown(timeout=0.05)
            with service._obs_lock:
                stuck = service.recorder.metrics.value(
                    "serve.shutdown.stuck_threads"
                )
            assert stuck == 1
        finally:
            time.sleep(2.0)  # let the daemon thread drain before teardown

    def test_clean_shutdown_reports_no_stuck_threads(self):
        service = JobService(queue_size=4, job_workers=2)
        job = service.submit("estimate", builtin="design1", run=RUN)
        service.shutdown(timeout=60.0)
        assert service.get(job.id).state == DONE
        with service._obs_lock:
            assert (
                service.recorder.metrics.value("serve.shutdown.stuck_threads")
                is None
            )
