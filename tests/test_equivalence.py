"""Tests for the observability-aware equivalence checker itself."""

import pytest

from repro.errors import EquivalenceError
from repro.netlist.builder import DesignBuilder
from repro.sim.stimulus import SequenceStimulus, random_stimulus
from repro.verify import (
    assert_observable_equivalence,
    check_observable_equivalence,
)


def adder_design(name="t", bug=False):
    b = DesignBuilder(name)
    x = b.input("X", 8)
    y = b.input("Y", 8)
    g = b.input("G", 1)
    if bug:
        total = b.sub(x, y, name="a0")  # wrong operator
    else:
        total = b.add(x, y, name="a0")
    q = b.register(total, enable=g, name="r0")
    b.output(q, "OUT")
    return b.build()


class TestChecker:
    def test_identical_designs_equivalent(self):
        golden = adder_design()
        candidate = adder_design()
        stim = random_stimulus(golden, seed=0)
        report = check_observable_equivalence(golden, candidate, stim, 200)
        assert report.equivalent
        assert report.cycles == 200

    def test_detects_register_divergence(self):
        golden = adder_design()
        broken = adder_design(bug=True)
        stim = SequenceStimulus([{"X": 9, "Y": 3, "G": 1}])
        report = check_observable_equivalence(golden, broken, stim, 5)
        assert not report.equivalent
        assert report.mismatches[0].kind in ("register", "output")

    def test_divergence_hidden_when_never_loaded(self):
        """A wrong datapath result that is never stored is unobservable."""
        golden = adder_design()
        broken = adder_design(bug=True)
        stim = SequenceStimulus([{"X": 9, "Y": 3, "G": 0}])
        report = check_observable_equivalence(golden, broken, stim, 20)
        assert report.equivalent

    def test_mismatch_limit(self):
        golden = adder_design()
        broken = adder_design(bug=True)
        stim = SequenceStimulus([{"X": 9, "Y": 3, "G": 1}])
        report = check_observable_equivalence(
            golden, broken, stim, 100, max_mismatches=3
        )
        assert len(report.mismatches) == 3

    def test_assert_raises_with_details(self):
        golden = adder_design()
        broken = adder_design(bug=True)
        stim = SequenceStimulus([{"X": 9, "Y": 3, "G": 1}])
        with pytest.raises(EquivalenceError) as exc:
            assert_observable_equivalence(golden, broken, stim, 10)
        assert "r0" in str(exc.value) or "OUT" in str(exc.value)

    def test_missing_output_rejected(self):
        golden = adder_design()
        b = DesignBuilder("other")
        x = b.input("X", 8)
        y = b.input("Y", 8)
        g = b.input("G", 1)
        q = b.register(b.add(x, y, name="a0"), enable=g, name="r0")
        b.output(q, "DIFFERENT")
        candidate = b.build()
        stim = random_stimulus(golden, seed=0)
        with pytest.raises(EquivalenceError):
            check_observable_equivalence(golden, candidate, stim, 5)

    def test_mismatch_str(self):
        from repro.verify.equivalence import Mismatch

        m = Mismatch(cycle=3, kind="register", name="r0", expected=1, actual=2)
        assert "cycle 3" in str(m) and "r0" in str(m)
