"""Serial/parallel bit-exactness of the repro.parallel execution layer.

The contract under test: for any shipped design, running with
``workers=1``, ``workers=2`` or ``workers=4`` produces *identical*
results — toggle rates, probe probabilities, confidence intervals,
``IsolationResult.isolated_names`` / ``power_reduction``, candidate
rankings and style tables. Not statistically close: bit-exact.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.boolean.expr import var
from repro.core.algorithm import IsolationConfig, isolate_design
from repro.core.explore import rank_candidates
from repro.core.report import compare_styles
from repro.designs import (
    alu_control_dominated,
    cordic_pipeline,
    correlated_chain,
    design1,
    design2,
    fir_datapath,
    lookahead_pipeline,
    paper_example,
    random_datapath,
    shared_bus_datapath,
    soc_datapath,
)
from repro.parallel import run_batch_sharded
from repro.power.estimator import estimate_power_ci
from repro.runconfig import RunConfig
from repro.sim.batch import (
    BatchProbe,
    BatchRandomStimulus,
    BatchSimulator,
    BatchToggleMonitor,
    cross_lane_ci,
)
from repro.sim.stimulus import random_stimulus

#: Every shipped design generator (ISSUE: sharding must be bit-exact on all).
SHIPPED_DESIGNS = [
    paper_example,
    design1,
    design2,
    fir_datapath,
    alu_control_dominated,
    shared_bus_datapath,
    lookahead_pipeline,
    correlated_chain,
    cordic_pipeline,
    soc_datapath,
    lambda: random_datapath(seed=0),
]

CYCLES = 60
BATCH = 8


def _sharded(design, workers, **kwargs):
    return run_batch_sharded(
        design, BATCH, CYCLES, warmup=4, seed=11, workers=workers, **kwargs
    )


@pytest.mark.parametrize(
    "maker", SHIPPED_DESIGNS, ids=lambda m: getattr(m, "__name__", "random_dp")
)
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_batch_bit_exact_across_workers(maker, workers):
    design = maker()
    serial = _sharded(design, 1, max_lanes_per_shard=2)
    pooled = _sharded(design, workers, max_lanes_per_shard=2)
    assert serial.plan == pooled.plan
    assert serial.stats.batch_size == pooled.stats.batch_size == BATCH
    for name in serial.stats.toggles:
        assert np.array_equal(serial.stats.toggles[name], pooled.stats.toggles[name])
        assert np.array_equal(
            serial.stats.per_lane_rates(name), pooled.stats.per_lane_rates(name)
        )
        assert serial.stats.toggle_rate_ci(name) == pooled.stats.toggle_rate_ci(name)


def test_sharded_probes_bit_exact_across_workers():
    design = design1()
    probes = {"en": var("EN")}
    serial = _sharded(design, 1, probes=probes, max_lanes_per_shard=2)
    pooled = _sharded(design, 4, probes=probes, max_lanes_per_shard=2)
    assert np.array_equal(
        serial.stats.probe_true["en"], pooled.stats.probe_true["en"]
    )
    assert serial.stats.probe_probability("en") == pooled.stats.probe_probability("en")
    assert serial.stats.probe_probability_ci("en") == pooled.stats.probe_probability_ci(
        "en"
    )


def test_shard_plan_independent_of_workers():
    # Workers only schedule; the plan is a function of (seed, batch, shards).
    a = _sharded(design1(), 1)
    b = _sharded(design1(), 3)
    assert a.plan == b.plan
    assert {s.seed for s in a.plan} == {s.seed for s in b.plan}


def test_sharded_matches_unsharded_single_shard():
    # One shard with the full batch == a plain BatchSimulator run with
    # the same derived seed: sharding adds nothing but the seed hop.
    design = design2()
    run = run_batch_sharded(design, BATCH, CYCLES, warmup=4, seed=5, n_shards=1)
    monitor = BatchToggleMonitor()
    stim = BatchRandomStimulus(design, batch_size=BATCH, seed=run.plan[0].seed)
    BatchSimulator(design, batch_size=BATCH).run(
        stim, CYCLES, monitors=[monitor], warmup=4
    )
    for net, counts in monitor.toggles.items():
        assert np.array_equal(run.stats.toggles[net.name], counts)


# ----------------------------------------------------------------------
# Algorithm 1 / explorer / style table: scoring parallelism
# ----------------------------------------------------------------------
def _iso(design, workers, style="auto"):
    return isolate_design(
        design,
        lambda: random_stimulus(design, seed=9),
        IsolationConfig(style=style, cycles=150, warmup=8, workers=workers),
    )


@pytest.mark.parametrize("maker", [design1, design2, alu_control_dominated])
def test_isolate_design_bit_exact_across_workers(maker):
    design = maker()
    serial = _iso(design, 1)
    for workers in (2, 4):
        pooled = _iso(design, workers)
        assert pooled.isolated_names == serial.isolated_names
        assert pooled.power_reduction == serial.power_reduction
        assert pooled.final.area == serial.final.area
        serial_scores = [
            (s.candidate.name, s.savings.style, s.h, s.savings.net_mw)
            for it in serial.iterations
            for s in it.scores
        ]
        pooled_scores = [
            (s.candidate.name, s.savings.style, s.h, s.savings.net_mw)
            for it in pooled.iterations
            for s in it.scores
        ]
        assert pooled_scores == serial_scores
        assert pooled.timings.workers == workers
        assert pooled.timings.pool_fallback_reason is None


def test_isolate_design_transforms_live_design_under_pool():
    # Scored records must re-bind to the parent's candidates: the
    # transformed design is derived from the caller's design object.
    design = design1()
    result = _iso(design, 2, style="and")
    assert result.original is design
    assert result.design.name.startswith(design.name)
    for inst in result.instances:
        assert inst.candidate in result.design.cells


def test_rank_candidates_bit_exact_across_workers():
    design = soc_datapath()
    ranked = {}
    for workers in (1, 2):
        ranked[workers] = rank_candidates(
            design,
            random_stimulus(design, seed=3),
            style="and",
            run=RunConfig(cycles=150, workers=workers),
        )
    assert [r.to_dict() for r in ranked[1]] == [r.to_dict() for r in ranked[2]]


def test_compare_styles_bit_exact_across_workers():
    design = design2()
    tables = {}
    for workers in (1, 3):
        tables[workers] = compare_styles(
            design,
            lambda: random_stimulus(design, seed=5),
            IsolationConfig(cycles=120, warmup=8, workers=workers),
        )
    for a, b in zip(tables[1].rows, tables[3].rows):
        assert (a.label, a.power_mw, a.area, a.slack) == (
            b.label,
            b.power_mw,
            b.area,
            b.slack,
        )
        assert a.power_reduction == b.power_reduction
    for style in tables[1].results:
        assert (
            tables[1].results[style].isolated_names
            == tables[3].results[style].isolated_names
        )
        assert tables[3].results[style].original is design


def test_estimate_power_ci_bit_exact_across_workers():
    design = fir_datapath()
    a = estimate_power_ci(design, batch_size=BATCH, run=RunConfig(cycles=80, workers=1))
    b = estimate_power_ci(design, batch_size=BATCH, run=RunConfig(cycles=80, workers=2))
    assert a.mean_mw == b.mean_mw
    assert a.half_width_mw == b.half_width_mw
    assert np.array_equal(a.per_lane_mw, b.per_lane_mw)


# ----------------------------------------------------------------------
# Checkpoint / resume under sharding
# ----------------------------------------------------------------------
def test_shard_checkpoint_resume_matches_uninterrupted():
    """A shard killed mid-run and resumed reproduces the full-run stats.

    The stimulus is positioned by replaying a fresh stream up to the
    checkpointed step (BatchRandomStimulus advances once per new cycle
    value), so the resumed half observes exactly the vectors the
    uninterrupted run would have.
    """
    from repro.parallel import plan_shards, shard_stats_from_monitors

    design = design1()
    spec = plan_shards(BATCH, seed=11, n_shards=2)[1]
    warmup, cycles, every = 4, CYCLES, 10

    # Uninterrupted reference run of this one shard.
    ref_monitor = BatchToggleMonitor()
    ref_sim = BatchSimulator(design, batch_size=spec.lanes)
    ref_sim.run(
        BatchRandomStimulus(design, batch_size=spec.lanes, seed=spec.seed),
        cycles,
        monitors=[ref_monitor],
        warmup=warmup,
    )
    reference = shard_stats_from_monitors(spec, [ref_monitor])

    # Interrupted run: checkpoint every 10 steps, "crash", resume fresh.
    crash_sim = BatchSimulator(design, batch_size=spec.lanes)
    crash_sim.run(
        BatchRandomStimulus(design, batch_size=spec.lanes, seed=spec.seed),
        cycles,
        monitors=[BatchToggleMonitor()],
        warmup=warmup,
        checkpoint_every=every,
    )
    checkpoint = crash_sim.last_checkpoint
    assert checkpoint is not None
    assert checkpoint.step_index % every == 0
    assert checkpoint.step_index < warmup + cycles  # genuinely mid-run state

    resumed_sim = BatchSimulator(design, batch_size=spec.lanes)
    replay = BatchRandomStimulus(design, batch_size=spec.lanes, seed=spec.seed)
    for cycle in range(checkpoint.cycle):
        replay.values(cycle)
    monitors = resumed_sim.run(
        replay, cycles, warmup=warmup, resume_from=checkpoint
    )
    resumed = shard_stats_from_monitors(spec, monitors)

    assert resumed.cycles == reference.cycles
    for name, counts in reference.toggle_counts.items():
        assert np.array_equal(resumed.toggle_counts[name], counts)


def test_run_batch_sharded_accepts_checkpoint_every():
    # checkpoint_every threads through the sharded path without
    # perturbing the statistics.
    design = design1()
    plain = _sharded(design, 1)
    checked = _sharded(design, 2, checkpoint_every=7)
    for name in plain.stats.toggles:
        assert np.array_equal(plain.stats.toggles[name], checked.stats.toggles[name])


# ----------------------------------------------------------------------
# Regression: degenerate CI at batch_size == 1 (satellite 3)
# ----------------------------------------------------------------------
class TestSingleLaneCI:
    def test_cross_lane_ci_single_sample(self):
        mean, half = cross_lane_ci(np.array([0.25]))
        assert mean == 0.25
        assert math.isinf(half)  # honest "no interval", not 0.0 or NaN

    def test_toggle_rate_ci_batch_one(self):
        design = design1()
        monitor = BatchToggleMonitor()
        BatchSimulator(design, batch_size=1).run(
            BatchRandomStimulus(design, batch_size=1, seed=2),
            50,
            monitors=[monitor],
            warmup=2,
        )
        for net in monitor.toggles:
            mean, half = monitor.toggle_rate_ci(net)
            assert not math.isnan(mean)
            assert math.isinf(half)

    def test_probe_probability_ci_batch_one(self):
        design = design1()
        probe = BatchProbe("en", var("EN"))
        BatchSimulator(design, batch_size=1).run(
            BatchRandomStimulus(design, batch_size=1, seed=2),
            50,
            monitors=[probe],
            warmup=2,
        )
        mean, half = probe.probability_ci()
        assert 0.0 <= mean <= 1.0 and not math.isnan(mean)
        assert math.isinf(half)

    def test_estimate_power_ci_batch_one(self):
        interval = estimate_power_ci(
            design1(), batch_size=1, run=RunConfig(cycles=40)
        )
        assert interval.mean_mw > 0 and not math.isnan(interval.mean_mw)
        assert math.isinf(interval.half_width_mw)

    def test_multi_lane_ci_still_finite(self):
        mean, half = cross_lane_ci(np.array([0.2, 0.3, 0.4]))
        assert mean == pytest.approx(0.3)
        assert 0.0 < half < 1.0
