"""Tests for netlist composition (merge_designs)."""

import pytest

from repro.designs import design1, fir_datapath, paper_example
from repro.errors import NetlistError
from repro.netlist.compose import merge_designs
from repro.netlist.validate import validate_design
from repro.sim.engine import Simulator
from repro.sim.stimulus import random_stimulus


class TestMergeDesigns:
    def test_two_instances_flatten(self):
        merged = merge_designs(
            "dual", {"u0": paper_example(), "u1": paper_example()}
        )
        validate_design(merged)
        assert merged.has_cell("u0_a0") and merged.has_cell("u1_a0")
        assert merged.has_net("u0_A") and merged.has_net("u1_A")
        single = paper_example().stats()
        assert merged.stats()["cells"] == 2 * single["cells"]

    def test_behaviour_matches_original(self):
        original = paper_example()
        merged = merge_designs("wrap", {"u0": original})
        sim_orig = Simulator(original)
        sim_merged = Simulator(merged)
        stim = random_stimulus(original, seed=8)
        for cycle in range(100):
            values = stim.values(cycle)
            settled_orig = sim_orig.step(values)
            settled_merged = sim_merged.step(
                {f"u0_{k}": v for k, v in values.items()}
            )
            out_orig = settled_orig[original.output_net("OUT0")]
            out_merged = settled_merged[merged.output_net("u0_OUT0")]
            assert out_orig == out_merged
            sim_orig.commit()
            sim_merged.commit()

    def test_shared_inputs_collapse(self):
        merged = merge_designs(
            "shared",
            {"a": design1(), "b": design1()},
            shared_inputs={"EN_ALL": [("a", "EN"), ("b", "EN")]},
        )
        validate_design(merged)
        assert merged.has_net("EN_ALL")
        assert not merged.has_cell("a_EN")
        assert not merged.has_cell("b_EN")
        # Both subsystems read the shared net.
        assert len(merged.net("EN_ALL").readers) >= 2

    def test_shared_input_width_mismatch_rejected(self):
        with pytest.raises(NetlistError):
            merge_designs(
                "bad",
                {"a": design1(), "b": fir_datapath()},
                shared_inputs={"MIX": [("a", "X0"), ("b", "BYP")]},
            )

    def test_unknown_instance_rejected(self):
        with pytest.raises(NetlistError):
            merge_designs(
                "bad",
                {"a": design1()},
                shared_inputs={"E": [("ghost", "EN")]},
            )


class TestSocDesign:
    def test_structure(self):
        from repro.designs import soc_datapath

        soc = soc_datapath()
        validate_design(soc)
        assert len(soc.datapath_modules) >= 40
        from repro.netlist.partition import partition_blocks

        assert len(partition_blocks(soc)) >= 10

    def test_shared_strobe(self):
        from repro.designs import soc_datapath

        soc = soc_datapath()
        readers = soc.net("SYS_EN").readers
        assert len(readers) >= 2


class TestCordic:
    def test_structure(self):
        from repro.designs import cordic_pipeline

        cordic = cordic_pipeline(stages=4)
        validate_design(cordic)
        assert len(cordic.datapath_modules) == 4 * 9  # per-stage operator count

    def test_stage_bound(self):
        from repro.designs import cordic_pipeline

        with pytest.raises(ValueError):
            cordic_pipeline(stages=99)

    def test_valid_gates_everything(self):
        from repro.core import derive_activation_functions
        from repro.boolean.bdd import BddManager
        from repro.boolean.expr import var
        from repro.designs import cordic_pipeline

        from repro.boolean.expr import and_, not_

        cordic = cordic_pipeline(stages=2)
        analysis = derive_activation_functions(cordic)
        manager = BddManager()
        # Shifters feed both the add and the sub path: active iff VALID.
        for name in ("shx0", "shy1"):
            f = analysis.of_module(cordic.cell(name))
            assert manager.equivalent(f, var("VALID"))
        # Conditional adders additionally need their steering decision.
        assert manager.equivalent(
            analysis.of_module(cordic.cell("xadd0")),
            and_(var("sgn0"), var("VALID")),
        )
        assert manager.equivalent(
            analysis.of_module(cordic.cell("xsub0")),
            and_(not_(var("sgn0")), var("VALID")),
        )

    def test_pipeline_advances_only_on_valid(self):
        from repro.designs import cordic_pipeline

        cordic = cordic_pipeline(stages=2)
        sim = Simulator(cordic)
        vec = {"X0": 1000, "Y0": 0, "Z0": 1234, "VALID": 0}
        for _ in range(5):
            sim.step(vec)
            sim.commit()
        assert sim.state[cordic.cell("rx0")] == 0  # nothing moved
        vec["VALID"] = 1
        sim.step(vec)
        sim.commit()
        assert sim.state[cordic.cell("rx0")] != 0
