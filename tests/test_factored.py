"""Unit and property tests for algebraic factoring."""

from hypothesis import given, settings

from repro.boolean.bdd import BddManager
from repro.boolean.expr import and_, not_, or_, var
from repro.boolean.factored import factor
from tests.test_expr import exprs


class TestFactoring:
    def test_common_cube_extracted(self):
        a, b, c, d, e = (var(x) for x in "abcde")
        expr = or_(and_(a, b, c), and_(a, b, d), e)
        factored = factor(expr)
        assert factored.literal_count() == 5
        assert BddManager().equivalent(expr, factored)

    def test_single_literal_division(self):
        a, b, c = var("a"), var("b"), var("c")
        expr = or_(and_(a, b), and_(a, c))
        factored = factor(expr)
        assert factored.literal_count() == 3  # a*(b + c)
        assert BddManager().equivalent(expr, factored)

    def test_absorbing_divisor(self):
        a, b = var("a"), var("b")
        expr = or_(a, and_(a, b))
        assert factor(expr) == a

    def test_non_sop_left_intact(self):
        a, b, c = var("a"), var("b"), var("c")
        nested = and_(or_(a, b), or_(a, c))  # product of sums
        assert BddManager().equivalent(factor(nested), nested)

    def test_literals_only(self):
        assert factor(var("x")) == var("x")
        assert factor(not_(var("x"))) == not_(var("x"))

    def test_paper_activation_function_already_minimal(self):
        expr = or_(
            and_(var("S2"), var("G1")),
            and_(not_(var("S0")), var("S1"), var("G0")),
        )
        factored = factor(expr)
        assert factored.literal_count() <= expr.literal_count()
        assert BddManager().equivalent(expr, factored)

    @settings(max_examples=200, deadline=None)
    @given(e=exprs())
    def test_factoring_preserves_function(self, e):
        assert BddManager().equivalent(e, factor(e))

    @settings(max_examples=200, deadline=None)
    @given(e=exprs())
    def test_factoring_never_grows(self, e):
        from repro.boolean.simplify import simplify

        assert factor(e).literal_count() <= simplify(e).literal_count()
