"""Cross-engine regression lock on the divmod div-by-zero contract.

The reference cell (netlist/arith.py) defines division by zero as
all-ones quotient and dividend-passthrough remainder, both clipped to
their output widths. The compiled engine lowers that contract into
generated Python and the bitslice engine implements it independently in
the restoring-division helper — three implementations of one convention,
held together here on directed zero-divisor vectors, ragged output
widths, and randomized streams.
"""

from __future__ import annotations

import pytest

from repro.netlist.arith import Divider
from repro.netlist.builder import DesignBuilder
from repro.netlist.design import Design
from repro.netlist.ports import PrimaryInput, PrimaryOutput
from repro.sim import SequenceStimulus, ToggleMonitor, make_simulator, random_stimulus

ENGINES = ("python", "compiled", "bitslice")


def divmod_design(width=8, yw=None, rw=None):
    """PIs X, D -> divider -> POs Q (width ``yw``), M (width ``rw``)."""
    yw = width if yw is None else yw
    rw = width if rw is None else rw
    d = Design(f"divzero_{width}_{yw}_{rw}")
    x = d.add_net("x", width)
    b = d.add_net("b", width)
    q = d.add_net("q", yw)
    m = d.add_net("m", rw)
    for name, net in (("X", x), ("D", b)):
        pi = d.add_cell(PrimaryInput(name))
        d.connect(pi, "Y", net)
    div = d.add_cell(Divider("div0"))
    d.connect(div, "A", x)
    d.connect(div, "B", b)
    d.connect(div, "Y", q)
    d.connect(div, "R", m)
    for name, net in (("Q", q), ("M", m)):
        po = d.add_cell(PrimaryOutput(name))
        d.connect(po, "A", net)
    return d


def expected(a, b, width, yw, rw):
    if b == 0:
        return (1 << yw) - 1, a & ((1 << rw) - 1)
    return (a // b) & ((1 << yw) - 1), (a % b) & ((1 << rw) - 1)


DIRECTED = [
    # (A, B) — every div-by-zero shape plus ordinary divisions around it
    (23, 0),
    (0, 0),
    (255, 0),
    (23, 5),
    (0, 7),
    (255, 1),
    (1, 255),
    (128, 0),
    (77, 0),
    (200, 13),
]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "width,yw,rw",
    [(8, 8, 8), (11, 13, 7), (4, 9, 2)],
    ids=["even", "wide_q_narrow_r", "tiny"],
)
def test_div_by_zero_contract(engine, width, yw, rw):
    """Each engine matches the documented contract cycle for cycle."""
    design = divmod_design(width, yw=yw, rw=rw)
    mask = (1 << width) - 1
    sim = make_simulator(design, engine)
    assert sim.fallback_reason is None
    q_net, m_net = design.net("q"), design.net("m")
    for a, b in DIRECTED:
        values = sim.step({"X": a & mask, "D": b & mask})
        want_q, want_m = expected(a & mask, b & mask, width, yw, rw)
        assert values[q_net] == want_q, (engine, a, b)
        assert values[m_net] == want_m, (engine, a, b)
        sim.commit()


@pytest.mark.parametrize(
    "width,yw,rw",
    [(8, 8, 8), (11, 13, 7)],
    ids=["even", "ragged"],
)
def test_div_by_zero_differential_stats(width, yw, rw):
    """Toggle/ones counts are byte-identical across all three engines.

    The stimulus interleaves random vectors with forced zero divisors so
    the div-by-zero path toggles in and out — the pattern most likely to
    expose a divergence in saturation or passthrough handling.
    """
    import random

    rng = random.Random(99)
    mask = (1 << width) - 1
    vectors = []
    for i in range(80):
        b = 0 if i % 3 == 0 else rng.randrange(mask + 1)
        vectors.append({"X": rng.randrange(mask + 1), "D": b})
    design = divmod_design(width, yw=yw, rw=rw)

    def stats(engine):
        monitor = ToggleMonitor()
        sim = make_simulator(design, engine)
        assert sim.fallback_reason is None
        sim.run(SequenceStimulus(vectors), len(vectors), monitors=[monitor])
        return (
            {net.name: count for net, count in monitor.toggles.items()},
            {net.name: count for net, count in monitor.ones.items()},
        )

    ref = stats("python")
    for engine in ("compiled", "bitslice"):
        assert stats(engine) == ref, engine


def test_div_by_zero_through_registers_random():
    """Random streams with a zero-biased divisor agree across engines,
    including downstream register state."""
    b = DesignBuilder("divreg")
    x = b.input("X", 8)
    y = b.input("Y", 8)
    en = b.input("EN", 1)
    q, r = b.divmod_(x, y, name="div0")
    b.output(b.register(q, enable=en, name="r_q"), "Q")
    b.output(b.register(r, enable=en, name="r_r"), "R")
    design = b.build()

    def stats(engine):
        monitor = ToggleMonitor()
        sim = make_simulator(design, engine)
        assert sim.fallback_reason is None
        # data_toggle_density=1.0 resamples Y every cycle, hitting zero
        # roughly every 256 cycles over the long run.
        sim.run(
            random_stimulus(design, seed=5, data_toggle_density=1.0),
            400,
            monitors=[monitor],
            warmup=4,
        )
        return (
            {net.name: count for net, count in monitor.toggles.items()},
            dict(sim.state_items()),
        )

    ref = stats("python")
    for engine in ("compiled", "bitslice"):
        assert stats(engine) == ref, engine
