"""Unit tests for net traces."""

from repro.sim.engine import simulate
from repro.sim.stimulus import SequenceStimulus
from repro.sim.trace import NetTrace


class TestNetTrace:
    def test_records_per_cycle_values(self, tiny_design):
        vectors = [
            {"A": 1, "C": 2, "S": 0, "G": 1},
            {"A": 3, "C": 4, "S": 0, "G": 1},
        ]
        trace = NetTrace([tiny_design.net("a0")])
        simulate(tiny_design, SequenceStimulus(vectors), 2, monitors=[trace])
        assert trace.values_of(tiny_design.net("a0")) == [3, 7]
        assert len(trace) == 2

    def test_csv_export(self, tiny_design):
        trace = NetTrace([tiny_design.net("A"), tiny_design.net("C")])
        simulate(
            tiny_design,
            SequenceStimulus([{"A": 5, "C": 6, "S": 0, "G": 0}]),
            2,
            monitors=[trace],
        )
        csv = trace.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "cycle,A,C"
        assert lines[1] == "0,5,6"
        assert len(lines) == 3
