"""Unit tests for repro.netlist.nets."""

import pytest

from repro.errors import NetlistError
from repro.netlist.nets import Net


class TestNetBasics:
    def test_default_width_is_one(self):
        assert Net("x").width == 1

    def test_mask_covers_width(self):
        assert Net("x", 1).mask == 1
        assert Net("x", 8).mask == 0xFF
        assert Net("x", 16).mask == 0xFFFF

    def test_clip_truncates_to_width(self):
        net = Net("x", 4)
        assert net.clip(0x1F) == 0xF
        assert net.clip(-1) == 0xF
        assert net.clip(5) == 5

    def test_zero_width_rejected(self):
        with pytest.raises(NetlistError):
            Net("x", 0)

    def test_negative_width_rejected(self):
        with pytest.raises(NetlistError):
            Net("x", -3)

    def test_is_control_only_for_one_bit(self):
        assert Net("s").is_control
        assert not Net("bus", 8).is_control

    def test_fresh_net_has_no_connections(self):
        net = Net("x", 4)
        assert net.driver is None
        assert net.readers == []

    def test_repr_mentions_name_and_width(self):
        assert "x" in repr(Net("x", 3))
        assert "3" in repr(Net("x", 3))
