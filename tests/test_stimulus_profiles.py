"""Workload profiles, stimulus specs and strict trace-replay semantics."""

import random

import pytest

from repro.designs import design1
from repro.errors import StimulusError
from repro.sim.stimulus import (
    BurstyDataStream,
    CorrelatedDataStream,
    STIMULUS_PROFILES,
    SequenceStimulus,
    make_profile,
    normalize_stimulus_spec,
    profile_names,
    register_profile,
    resolve_stimulus_spec,
    stimulus_fingerprint,
)


def stream_values(stream, cycles=4000, seed=1):
    rng = random.Random(seed)
    return [stream.next_value(rng) for _ in range(cycles)]


class TestBurstyDataStream:
    def test_idle_phases_hold_value(self):
        values = stream_values(BurstyDataStream(8, burst_len=4.0, idle_len=16.0))
        holds = sum(1 for a, b in zip(values, values[1:]) if a == b)
        # Mostly idle: the value should hold far more often than it moves.
        assert holds / len(values) > 0.6

    def test_burstier_means_more_toggling(self):
        quiet = stream_values(BurstyDataStream(8, burst_len=2.0, idle_len=32.0))
        busy = stream_values(BurstyDataStream(8, burst_len=32.0, idle_len=2.0))

        def toggle_rate(vals):
            return sum(1 for a, b in zip(vals, vals[1:]) if a != b) / len(vals)

        assert toggle_rate(busy) > 2 * toggle_rate(quiet)

    def test_values_respect_width(self):
        assert all(0 <= v < 16 for v in stream_values(BurstyDataStream(4)))

    def test_bad_lengths_rejected(self):
        with pytest.raises(StimulusError):
            BurstyDataStream(8, burst_len=0.0)
        with pytest.raises(StimulusError):
            BurstyDataStream(8, idle_len=-1.0)


class TestCorrelatedDataStream:
    def test_small_steps(self):
        values = stream_values(CorrelatedDataStream(8, max_step=3))
        deltas = [abs(b - a) for a, b in zip(values, values[1:])]
        # Steps are bounded except at the wrap-around of the 8-bit range.
        assert all(d <= 3 or d >= 253 for d in deltas)

    def test_hold_probability(self):
        values = stream_values(
            CorrelatedDataStream(8, hold_probability=0.9), cycles=2000
        )
        holds = sum(1 for a, b in zip(values, values[1:]) if a == b)
        assert holds / len(values) > 0.8

    def test_values_respect_width(self):
        assert all(0 <= v < 32 for v in stream_values(CorrelatedDataStream(5)))


class TestProfileRegistry:
    def test_shipped_profiles_registered(self):
        assert {"random", "bursty", "idle", "correlated"} <= set(profile_names())

    def test_profiles_drive_every_primary_input(self):
        design = design1()
        for name in profile_names():
            stim = make_profile(name, design, seed=1)
            vector = stim.values(0)
            assert set(vector) == {pi.name for pi in design.primary_inputs}

    def test_unknown_profile_lists_choices(self):
        with pytest.raises(StimulusError, match="bursty"):
            make_profile("nope", design1())

    def test_bad_profile_params_rejected(self):
        with pytest.raises(StimulusError):
            make_profile("bursty", design1(), no_such_param=1)

    def test_register_rejects_duplicates(self):
        with pytest.raises(StimulusError):

            @register_profile("bursty")
            def clash(design, seed=0):  # pragma: no cover - never called
                raise AssertionError

    def test_registry_is_name_to_factory(self):
        assert callable(STIMULUS_PROFILES["idle"])

    def test_profiles_differ_materially(self):
        # The point of workload profiles: different activity statistics.
        from repro.power import estimate_power
        from repro.runconfig import RunConfig

        design = design1()
        run = RunConfig(cycles=300)
        powers = {
            name: estimate_power(
                design, make_profile(name, design, seed=0), run=run
            ).total_power_mw
            for name in ("random", "idle", "bursty")
        }
        assert powers["idle"] < powers["bursty"] < powers["random"] * 1.5
        assert powers["idle"] < 0.7 * powers["random"]


class TestStrictSequence:
    def test_strict_names_the_cycle(self):
        stim = SequenceStimulus([{"A": 1}] * 3, strict=True)
        stim.values(2)
        with pytest.raises(StimulusError, match=r"ends at cycle 2.*cycle 7"):
            stim.values(7)

    def test_strict_and_wrap_are_exclusive(self):
        with pytest.raises(StimulusError):
            SequenceStimulus([{"A": 1}], wrap=True, strict=True)

    def test_warn_fires_once_then_holds(self):
        stim = SequenceStimulus([{"A": 1}, {"A": 2}], warn=True)
        with pytest.warns(RuntimeWarning):
            assert stim.values(5) == {"A": 2}
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert stim.values(6) == {"A": 2}  # no second warning

    def test_csv_default_warns_past_end(self):
        stim = SequenceStimulus.from_csv("A\n1\n2\n")
        with pytest.warns(RuntimeWarning, match="CSV trace"):
            stim.values(2)

    def test_csv_strict(self):
        stim = SequenceStimulus.from_csv("A\n1\n2\n", strict=True)
        with pytest.raises(StimulusError, match="CSV trace"):
            stim.values(2)


class TestSpecNormalization:
    def test_none_and_name_forms(self):
        assert normalize_stimulus_spec(None) is None
        assert normalize_stimulus_spec("idle") == {"profile": "idle"}

    def test_profile_params_kept_canonical(self):
        spec = normalize_stimulus_spec(
            {"profile": "bursty", "params": {"burst_len": 4.0}}
        )
        assert spec == {"profile": "bursty", "params": {"burst_len": 4.0}}

    def test_unknown_profile_rejected(self):
        with pytest.raises(StimulusError):
            normalize_stimulus_spec("nope")

    def test_unknown_fields_rejected(self):
        with pytest.raises(StimulusError):
            normalize_stimulus_spec({"profile": "idle", "extra": 1})

    def test_exactly_one_source(self):
        with pytest.raises(StimulusError):
            normalize_stimulus_spec({"profile": "idle", "csv": "A\n1\n"})
        with pytest.raises(StimulusError):
            normalize_stimulus_spec({})

    def test_wrap_and_strict_flags(self):
        spec = normalize_stimulus_spec({"csv": "A\n1\n", "strict": True})
        assert spec == {"csv": "A\n1\n", "strict": True}
        # Falsy flags are dropped from the canonical form entirely.
        assert normalize_stimulus_spec({"csv": "A\n1\n", "wrap": False}) == {
            "csv": "A\n1\n"
        }


class TestFingerprints:
    def test_default_is_literal(self):
        assert stimulus_fingerprint(None) == "default"

    def test_distinct_specs_distinct_fingerprints(self):
        specs = [
            normalize_stimulus_spec("idle"),
            normalize_stimulus_spec("bursty"),
            normalize_stimulus_spec({"profile": "bursty", "params": {"burst_len": 2}}),
            normalize_stimulus_spec({"csv": "A\n1\n"}),
            normalize_stimulus_spec({"csv": "A\n2\n"}),
        ]
        prints = [stimulus_fingerprint(s) for s in specs]
        assert len(set(prints)) == len(prints)
        assert all(len(p) == 32 for p in prints)

    def test_fingerprint_is_stable(self):
        spec = normalize_stimulus_spec({"profile": "idle", "params": {"duty": 0.2}})
        assert stimulus_fingerprint(spec) == stimulus_fingerprint(dict(spec))


class TestResolve:
    def test_resolve_default(self):
        stim = resolve_stimulus_spec(None, design1(), seed=2)
        assert callable(getattr(stim, "values", None))

    def test_resolve_profile_uses_seed(self):
        a = resolve_stimulus_spec({"profile": "bursty"}, design1(), seed=1)
        b = resolve_stimulus_spec({"profile": "bursty"}, design1(), seed=1)
        assert a.values(0) == b.values(0)

    def test_resolve_csv(self):
        design = design1()
        header = ",".join(pi.name for pi in design.primary_inputs)
        row = ",".join("1" for _ in design.primary_inputs)
        stim = resolve_stimulus_spec({"csv": f"{header}\n{row}\n"}, design)
        assert set(stim.values(0).values()) == {1}

    def test_resolve_vcd(self, tiny_design):
        from repro.sim.engine import simulate
        from repro.sim.stimulus import random_stimulus
        from repro.sim.vcd import VcdMonitor

        monitor = VcdMonitor()
        simulate(
            tiny_design, random_stimulus(tiny_design, seed=1), 8, monitors=[monitor]
        )
        stim = resolve_stimulus_spec({"vcd": monitor.dumps()}, tiny_design)
        assert set(stim.values(0)) == {pi.name for pi in tiny_design.primary_inputs}
