"""Unit tests for the simulation-driven power estimator."""

import pytest

from repro.power.estimator import PowerEstimator, estimate_power
from repro.power.report import format_power_report
from repro.sim.stimulus import ConstantStream, SequenceStimulus, random_stimulus


class TestEstimation:
    def test_zero_activity_means_zero_dynamic_power(self, tiny_design):
        stim = SequenceStimulus([{"A": 0, "C": 0, "S": 0, "G": 0}])
        breakdown = estimate_power(tiny_design, stim, 100)
        # Only static energy (registers) remains.
        lib = breakdown.library
        static = sum(lib.static_energy(c) for c in tiny_design.cells)
        assert breakdown.total_energy == pytest.approx(static)

    def test_activity_increases_power(self, tiny_design):
        quiet = estimate_power(
            tiny_design,
            random_stimulus(tiny_design, seed=0, data_toggle_density=0.05),
            500,
        )
        busy = estimate_power(
            tiny_design,
            random_stimulus(tiny_design, seed=0, data_toggle_density=0.5),
            500,
        )
        assert busy.total_power_mw > quiet.total_power_mw

    def test_module_power_dominates_glue(self, d1):
        breakdown = estimate_power(d1, random_stimulus(d1, seed=1), 500)
        module_power = sum(breakdown.module_power_mw().values())
        assert module_power > 0.5 * breakdown.total_power_mw

    def test_breakdown_covers_every_cell(self, tiny_design):
        breakdown = estimate_power(
            tiny_design, random_stimulus(tiny_design, seed=0), 200
        )
        assert set(breakdown.energy_per_cell) == set(tiny_design.cells)

    def test_group_power_roles(self, d1):
        from repro.core import IsolationConfig, isolate_design

        result = isolate_design(
            d1,
            lambda: random_stimulus(d1, seed=1, control_probability=0.2),
            IsolationConfig(cycles=300),
        )
        breakdown = estimate_power(
            result.design, random_stimulus(result.design, seed=1), 300
        )
        assert breakdown.group_power_mw("bank") > 0
        assert breakdown.overhead_power_mw < breakdown.total_power_mw

    def test_total_power_is_sum_of_cells(self, tiny_design):
        breakdown = estimate_power(
            tiny_design, random_stimulus(tiny_design, seed=0), 200
        )
        assert breakdown.total_power_mw == pytest.approx(
            sum(breakdown.cell_power_mw(c) for c in tiny_design.cells)
        )

    def test_report_formatting(self, d1):
        breakdown = estimate_power(d1, random_stimulus(d1, seed=1), 200)
        text = format_power_report(d1, breakdown)
        assert "total power" in text
        assert "mul0" in text  # hottest cells listed


class TestAreaReport:
    def test_groups_by_kind(self, d1, library):
        from repro.power import format_area_report

        text = format_area_report(d1, library)
        assert "total area" in text
        assert "mul" in text and "reg" in text

    def test_overhead_section_after_isolation(self, d1, library):
        from repro.core import IsolationConfig, isolate_design
        from repro.power import format_area_report

        result = isolate_design(
            d1,
            lambda: random_stimulus(d1, seed=1, control_probability=0.2),
            IsolationConfig(cycles=300),
        )
        text = format_area_report(result.design, library)
        assert "isolation overhead" in text
        assert "bank" in text


class TestGlitchModel:
    def run_both(self, design):
        from repro.power.estimator import PowerEstimator
        from repro.sim.engine import Simulator
        from repro.sim.monitor import ToggleMonitor

        monitor = ToggleMonitor()
        Simulator(design).run(
            random_stimulus(design, seed=2), 300, monitors=[monitor]
        )
        plain = PowerEstimator().breakdown(design, monitor)
        glitchy = PowerEstimator(glitch_model=True).breakdown(design, monitor)
        return plain, glitchy

    def test_glitch_model_adds_power(self, d1):
        plain, glitchy = self.run_both(d1)
        assert glitchy.total_power_mw > plain.total_power_mw

    def test_depth_one_cells_unchanged(self, d1):
        from repro.netlist.traversal import logic_depths

        plain, glitchy = self.run_both(d1)
        depths = logic_depths(d1)
        for cell, depth in depths.items():
            if depth == 1:
                assert glitchy.energy_per_cell[cell] == pytest.approx(
                    plain.energy_per_cell[cell]
                )

    def test_sequential_cells_never_scaled(self, d1):
        plain, glitchy = self.run_both(d1)
        for cell in d1.registers:
            assert glitchy.energy_per_cell[cell] == pytest.approx(
                plain.energy_per_cell[cell]
            )


class TestLogicDepths:
    def test_depths_follow_topology(self, fig1):
        from repro.netlist.traversal import logic_depths

        depths = logic_depths(fig1)
        assert depths[fig1.cell("a1")] == 1  # fed by PIs
        assert depths[fig1.cell("m0")] == 2  # behind a1
        assert depths[fig1.cell("m1")] == 3
        assert depths[fig1.cell("a0")] == 4

    def test_only_combinational_cells(self, fig1):
        from repro.netlist.traversal import logic_depths

        depths = logic_depths(fig1)
        assert set(depths) == set(fig1.combinational_cells)
