#!/usr/bin/env python3
"""System-scale scenario: isolating a composite SoC datapath.

Flattens four subsystems (a PI-gated datapath, an FSM-phased block, a
bypassable FIR and a valid-gated CORDIC pipeline) into one netlist with
a shared system strobe, then runs the full isolation algorithm. Shows
the per-subsystem power breakdown before and after, and the iteration
log of the per-block greedy loop.

Run:  python examples/soc_system.py
"""

from collections import defaultdict

from repro.core import IsolationConfig, isolate_design
from repro.designs import soc_datapath
from repro.power import PowerEstimator
from repro.sim import ControlStream, random_stimulus
from repro.sim.engine import Simulator
from repro.sim.monitor import ToggleMonitor
from repro.verify import assert_observable_equivalence

CYCLES = 1500


def stimulus_for(design):
    # The system strobe is low 85 % of the time; the FIR is bypassed 80 %.
    return random_stimulus(
        design,
        seed=4,
        control_probability=0.3,
        overrides={
            "SYS_EN": ControlStream(0.15, 0.05),
            "fir_BYP": ControlStream(0.8, 0.05),
        },
    )


def subsystem_power(design):
    """Power per instance prefix, measured under the shared stimulus."""
    monitor = ToggleMonitor()
    Simulator(design).run(stimulus_for(design), CYCLES, monitors=[monitor], warmup=16)
    breakdown = PowerEstimator().breakdown(design, monitor)
    per_prefix = defaultdict(float)
    for cell, energy in breakdown.energy_per_cell.items():
        prefix = cell.name.split("_", 1)[0]
        per_prefix[prefix] += breakdown.library.power_mw(energy)
    return dict(per_prefix), breakdown.total_power_mw


def main() -> None:
    design = soc_datapath(width=12)
    stats = design.stats()
    print(
        f"SoC design: {stats['cells']} cells, {stats['modules']} candidate "
        f"modules, {stats['registers']} registers\n"
    )

    before, total_before = subsystem_power(design)
    result = isolate_design(
        design, lambda: stimulus_for(design), IsolationConfig(cycles=1000)
    )
    after, total_after = subsystem_power(result.design)

    print(f"{'subsystem':<10} {'before mW':>10} {'after mW':>10} {'%red':>7}")
    for prefix in sorted(before):
        b = before[prefix]
        if b < 1e-9:
            continue  # boundary cells (shared strobe etc.) draw nothing
        a = after.get(prefix, 0.0)
        print(f"{prefix:<10} {b:>10.3f} {a:>10.3f} {1 - a / b:>7.1%}")
    print(f"{'TOTAL':<10} {total_before:>10.3f} {total_after:>10.3f} "
          f"{1 - total_after / total_before:>7.1%}\n")

    print("Iteration log:")
    for record in result.iterations:
        if record.isolated:
            print(f"  iteration {record.index}: isolated {', '.join(record.isolated)}")
    print()
    print(result.summary())

    assert_observable_equivalence(design, result.design, stimulus_for(design), 1500)
    print("\nObservable equivalence verified over 1500 cycles.")


if __name__ == "__main__":
    main()
