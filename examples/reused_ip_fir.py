#!/usr/bin/env python3
"""Reused-IP scenario: an FIR filter that is mostly bypassed.

The paper's introduction motivates operand isolation with "re-used
designs of which only part of the functionality is being used". Here a
4-tap FIR filter sits behind a bypass mux; the surrounding system keeps
it in bypass most of the time, so its four multipliers and adder tree
compute redundantly almost every cycle.

The script sweeps the bypass duty cycle and reports, for each point, the
power of the original design, the automatically isolated design, and the
three Section-2 baselines — showing where each technique's coverage
breaks down.

Run:  python examples/reused_ip_fir.py
"""

from repro.baselines import enable_gating, guarded_evaluation, manual_mux_isolation
from repro.core import IsolationConfig, isolate_design
from repro.designs import fir_datapath
from repro.power import estimate_power
from repro.sim import ControlStream, random_stimulus
from repro.verify import assert_observable_equivalence

CYCLES = 2000


def make_stimulus(design, bypass_duty: float):
    """Data streaming in every cycle; BYP high ``bypass_duty`` of the time."""
    return random_stimulus(
        design,
        seed=2024,
        overrides={"BYP": ControlStream(bypass_duty, min(0.05, 2 * bypass_duty * (1 - bypass_duty)))},
    )


def main() -> None:
    design = fir_datapath(width=12)
    print(f"Design: {design.name} — {design.stats()}")
    print(f"{'BYP duty':>9} {'orig mW':>9} {'isolated':>9} {'%red':>7} "
          f"{'manual':>8} {'guarded':>8} {'kapadia':>8}")

    for duty in (0.0, 0.5, 0.8, 0.95):
        stimulus = lambda: make_stimulus(design, duty)
        base = estimate_power(design, stimulus(), CYCLES).total_power_mw

        result = isolate_design(
            design, stimulus, IsolationConfig(style="and", cycles=1500)
        )
        assert_observable_equivalence(design, result.design, stimulus(), 1000)

        rows = [result.final.power_mw]
        for transform in (manual_mux_isolation, guarded_evaluation, enable_gating):
            variant = transform(design).design
            rows.append(estimate_power(variant, stimulus(), CYCLES).total_power_mw)

        iso, man, grd, kap = rows
        print(
            f"{duty:>9.0%} {base:>9.3f} {iso:>9.3f} {1 - iso / base:>7.1%} "
            f"{man:>8.3f} {grd:>8.3f} {kap:>8.3f}"
        )

    print(
        "\nThe automated RTL isolation tracks the bypass duty; the manual\n"
        "mux rule catches only the final adder, guarded evaluation finds no\n"
        "existing signal implying ¬BYP, and enable gating reaches only the\n"
        "single exclusively-owned delay register."
    )


if __name__ == "__main__":
    main()
