#!/usr/bin/env python3
"""What-if analysis: rank candidates and compare against the oracle.

Before committing to any netlist change, a power engineer wants to know:
which modules are worth isolating, what would each cost, and how much of
the total power is redundant computation at all? This script answers all
three on the FSM-controlled design2:

1. the **oracle bound** — per-module idle-cycle energy, the savings a
   zero-cost perfect isolation could reach;
2. the **ranked what-if table** — predicted net savings, overhead, area
   and the h(c) score per candidate, without transforming anything;
3. the **achieved** result of actually running Algorithm 1, as a
   fraction of the bound.

Run:  python examples/what_if_analysis.py
"""

from repro.core import IsolationConfig, format_ranking, isolate_design, rank_candidates
from repro.core.oracle import potential_savings
from repro.designs import design2
from repro.sim import random_stimulus

CYCLES = 2000


def main() -> None:
    design = design2(width=16)

    def stimulus():
        return random_stimulus(design, seed=11)

    # --- 1. The oracle bound --------------------------------------------
    oracle = potential_savings(design, stimulus(), cycles=CYCLES)
    print(f"Total power: {oracle.total_power_mw:.3f} mW; "
          f"redundant computation: {oracle.oracle_savings_mw:.3f} mW "
          f"({oracle.oracle_fraction:.0%} of total)\n")
    print(f"{'module':<10} {'idle power [mW]':>16}")
    for name, power in sorted(
        oracle.idle_power_mw.items(), key=lambda item: -item[1]
    ):
        print(f"{name:<10} {power:>16.4f}")
    print()

    # --- 2. The ranked what-if table --------------------------------------
    ranked = rank_candidates(design, stimulus(), cycles=CYCLES)
    print(format_ranking(ranked))
    print()

    # --- 3. Commit and compare to the bound --------------------------------
    result = isolate_design(design, stimulus, IsolationConfig(cycles=CYCLES))
    measured = result.baseline.power_mw - result.final.power_mw
    print(result.summary())
    print(
        f"\nachieved {measured:.3f} mW of the {oracle.oracle_savings_mw:.3f} mW "
        f"bound ({oracle.achieved_fraction(measured):.0%})"
    )


if __name__ == "__main__":
    main()
