#!/usr/bin/env python3
"""The paper's Section 6 sweep: savings vs activation-signal statistics.

design1's first-stage activation signal is the primary input ``EN``, so
its static probability and toggle rate can be set from the testbench —
exactly the experiment the paper runs: "we generated a set of
testbenches ranging between low and high static probabilities and toggle
rates of the activation signal", observing average reductions between
19 % and 31 % and extremes of roughly 5 % (worst) to 70 % (best).

Run:  python examples/activation_statistics_sweep.py
"""

from repro.core import IsolationConfig, isolate_design
from repro.designs import design1
from repro.sim import ControlStream, random_stimulus


def main() -> None:
    design = design1(width=12)
    print(f"Design: {design.name} — {design.stats()}\n")
    print(f"{'Pr(EN)':>7} {'Tr(EN)':>7} {'orig mW':>9} {'isolated':>9} {'%red':>7}")

    reductions = []
    for probability in (0.1, 0.3, 0.5, 0.8):
        max_rate = 2 * min(probability, 1 - probability)
        for rate in (0.2 * max_rate, 0.8 * max_rate):
            def stimulus():
                return random_stimulus(
                    design,
                    seed=99,
                    control_probability=0.4,
                    overrides={"EN": ControlStream(probability, rate)},
                )

            result = isolate_design(
                design, stimulus, IsolationConfig(style="and", cycles=1500)
            )
            reductions.append(result.power_reduction)
            print(
                f"{probability:>7.2f} {rate:>7.3f} "
                f"{result.baseline.power_mw:>9.3f} "
                f"{result.final.power_mw:>9.3f} {result.power_reduction:>7.1%}"
            )

    print(
        f"\nReduction range: {min(reductions):.1%} (worst) … "
        f"{max(reductions):.1%} (best); mean {sum(reductions)/len(reductions):.1%}"
    )
    print("Compare the paper: ≈5 % worst, ≈70 % best, averages 19–31 %.")


if __name__ == "__main__":
    main()
