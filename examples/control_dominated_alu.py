#!/usr/bin/env python3
"""Control-dominated design: an FSM-sequenced ALU.

The paper's other motivating workload class: arithmetic used in only a
few FSM states. The `alu_ctrl` design runs a 4-state IDLE→LOAD→EXEC→
STORE machine; its adder/subtractor/multiplier produce observable
results only in EXEC (one quarter of the busy cycles), and only the unit
selected by OP matters even then.

The script runs the full Algorithm-1 flow for each isolation style,
prints the per-iteration candidate scores (the h(c) cost function in
action) and the final Table-1-style comparison.

Run:  python examples/control_dominated_alu.py
"""

from repro.core import (
    IsolationConfig,
    compare_styles,
    format_comparison_table,
    isolate_design,
)
from repro.designs import alu_control_dominated
from repro.sim import ControlStream, random_stimulus
from repro.verify import assert_observable_equivalence


def main() -> None:
    design = alu_control_dominated(width=16)
    print(f"Design: {design.name} — {design.stats()}\n")

    # GO pulses start a 4-state run; between runs the machine idles.
    def stimulus():
        return random_stimulus(
            design,
            seed=5,
            overrides={"GO": ControlStream(0.3, 0.2)},
        )

    # --- Watch one run in detail ----------------------------------------
    result = isolate_design(
        design, stimulus, IsolationConfig(style="and", cycles=2000)
    )
    print("Iteration log (style=and):")
    for record in result.iterations:
        print(f"  iteration {record.index}: measured {record.total_power_mw:.3f} mW")
        for score in record.scores:
            s = score.savings
            print(
                f"    {score.candidate.name:<10} h={score.h:+.4f} "
                f"idle={s.idle_probability:.2f} "
                f"ΔPp={s.primary_mw:.4f} ΔPs={s.secondary_mw:.4f} "
                f"Pi={s.overhead_mw:.4f} mW"
            )
        if record.isolated:
            print(f"    -> isolated: {', '.join(record.isolated)}")
    print()
    print(result.summary())
    assert_observable_equivalence(design, result.design, stimulus(), 2000)
    print("Observable equivalence verified.\n")

    # --- All three styles -------------------------------------------------
    comparison = compare_styles(design, stimulus, IsolationConfig(cycles=1500))
    print(format_comparison_table(comparison))


if __name__ == "__main__":
    main()
