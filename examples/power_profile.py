#!/usr/bin/env python3
"""Power over time: seeing operand isolation work.

Drives design1 with a bursty activation signal (long idle stretches
between bursts of work) and plots — as ASCII sparklines — the power
waveform of the original design, the isolated design, and the activation
signal itself.

The original design's power is nearly flat: its multipliers churn
whether or not EN is high (the redundant computation the paper targets).
The isolated design's waveform tracks EN: full power during bursts, a
fraction of it during idle.

Run:  python examples/power_profile.py
"""

from repro.core import IsolationConfig, isolate_design
from repro.designs import design1
from repro.power.profile import PowerProfileMonitor
from repro.sim import ControlStream, NetTrace, random_stimulus
from repro.sim.engine import Simulator

CYCLES = 1024
WINDOW = 16


def stimulus_for(design):
    # Long bursts: mean dwell ≈ 40 cycles per state.
    return random_stimulus(
        design,
        seed=13,
        control_probability=0.4,
        overrides={"EN": ControlStream(0.4, 0.024)},
    )


def profile(design):
    monitor = PowerProfileMonitor(window=WINDOW)
    trace = NetTrace([design.net("EN")])
    Simulator(design).run(stimulus_for(design), CYCLES, monitors=[monitor, trace])
    return monitor, trace


def en_sparkline(trace, design):
    values = trace.values_of(design.net("EN"))
    buckets = [
        sum(values[i : i + WINDOW]) / WINDOW
        for i in range(0, len(values), WINDOW)
    ]
    return "".join(" .:-=+*#%@"[min(9, int(v * 9))] for v in buckets)


def main() -> None:
    design = design1(width=12)
    result = isolate_design(
        design, lambda: stimulus_for(design), IsolationConfig(cycles=1000)
    )

    base_profile, base_trace = profile(design)
    iso_profile, _ = profile(result.design)

    print(f"design1, {CYCLES} cycles, {WINDOW}-cycle windows\n")
    print(f"EN (activation): {en_sparkline(base_trace, design)}")
    print(f"original power : {base_profile.sparkline()}")
    print(f"isolated power : {iso_profile.sparkline()}")
    print()
    print(f"original: mean {base_profile.mean_mw:.3f} mW, peak {base_profile.peak_mw:.3f} mW")
    print(f"isolated: mean {iso_profile.mean_mw:.3f} mW, peak {iso_profile.peak_mw:.3f} mW")
    print(f"mean reduction: {1 - iso_profile.mean_mw / base_profile.mean_mw:.1%}")
    low_orig = min(base_profile.windows_mw)
    low_iso = min(iso_profile.windows_mw)
    print(
        f"quietest window: original {low_orig:.3f} mW vs isolated "
        f"{low_iso:.3f} mW — isolation lets the design actually rest."
    )


if __name__ == "__main__":
    main()
