#!/usr/bin/env python3
"""Quickstart: operand isolation on the paper's Figure 1 circuit.

Walks the complete flow of the library on the exact example the paper
uses to explain the technique:

1. build the two-adder / three-mux / two-register circuit of Figure 1;
2. derive the activation functions and check they match the paper's
   Section 3 result (``AS_a0 = G0``, ``AS_a1 = S2·G1 + S̄0·S1·G0``);
3. run the automated isolation algorithm;
4. measure power before/after, verify observable equivalence, and dump
   the isolated netlist as Verilog.

Run:  python examples/quickstart.py
"""

from repro.boolean import BddManager, and_, not_, or_, var
from repro.core import IsolationConfig, derive_activation_functions, isolate_design
from repro.designs import paper_example
from repro.netlist.verilog import to_verilog
from repro.sim import ControlStream, random_stimulus
from repro.verify import assert_observable_equivalence


def main() -> None:
    design = paper_example(width=8)
    print(f"Design: {design.name} — {design.stats()}\n")

    # --- Step 1: activation functions (paper Section 3) ----------------
    analysis = derive_activation_functions(design)
    f_a0 = analysis.of_module(design.cell("a0"))
    f_a1 = analysis.of_module(design.cell("a1"))
    print(f"AS_a0 = {f_a0}")
    print(f"AS_a1 = {f_a1}")

    manager = BddManager()
    expected_a1 = or_(
        and_(var("S2"), var("G1")),
        and_(not_(var("S0")), var("S1"), var("G0")),
    )
    assert manager.equivalent(f_a0, var("G0")), "AS_a0 should equal G0"
    assert manager.equivalent(f_a1, expected_a1), "AS_a1 mismatch vs paper"
    print("…both match the paper's formulas exactly.\n")

    # --- Step 2: the automated algorithm --------------------------------
    # Registers load rarely (the design idles a lot): Pr(G) = 0.15 with
    # long bursts, the regime the paper's introduction describes.
    def stimulus():
        return random_stimulus(
            design,
            seed=42,
            control_probability=0.15,
            control_toggle_rate=0.08,
        )

    result = isolate_design(design, stimulus, IsolationConfig(style="and", cycles=3000))
    print(result.summary())

    # --- Step 3: correctness --------------------------------------------
    assert_observable_equivalence(design, result.design, stimulus(), 3000)
    print("\nObservable equivalence verified over 3000 cycles.")

    # --- Step 4: export ---------------------------------------------------
    verilog = to_verilog(result.design)
    print(f"\nIsolated netlist ({len(verilog.splitlines())} lines of Verilog); excerpt:")
    for line in verilog.splitlines()[:18]:
        print("  " + line)
    print("  ...")


if __name__ == "__main__":
    main()
