"""`repro.rewrite` — power-driven structural rewriting of datapaths.

Rule finders and plans live in :mod:`repro.rewrite.rules`; exact
trace-replay scoring in :mod:`repro.rewrite.scoring`. The optimizer
integration (the ``"rewrite"`` pass) is
:class:`repro.opt.rewriting.RewritePass`. See ``docs/rewriting.md``.
"""

from repro.rewrite.rules import (
    MAX_SHIFT_TERMS,
    RewritePlan,
    find_mux_hoist,
    find_mux_push,
    find_reassociation,
    find_rewrites,
    find_strength_reduction,
)
from repro.rewrite.scoring import (
    MIN_GAIN_MW,
    RateView,
    RewriteScore,
    ValueTrace,
    replay_graft,
    score_rewrite,
)

__all__ = [
    "MAX_SHIFT_TERMS",
    "MIN_GAIN_MW",
    "RateView",
    "RewritePlan",
    "RewriteScore",
    "ValueTrace",
    "find_mux_hoist",
    "find_mux_push",
    "find_reassociation",
    "find_rewrites",
    "find_strength_reduction",
    "replay_graft",
    "score_rewrite",
]
