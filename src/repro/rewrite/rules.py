"""The three rewrite rule families of the datapath rewriter.

Each finder scans a design for one structural pattern and emits
:class:`RewritePlan` objects. A plan is *pure data plus a build recipe*:
it names the cells the rewrite would delete, the boundary nets the
replacement reads (``sources``), the output net whose readers get
spliced, and a ``build`` function that constructs the replacement logic
through a :class:`~repro.netlist.splice.GraftBuilder` given *any*
mapping of the source nets. The same recipe therefore builds twice —
once into a scratch design for exact power scoring against the traced
input values, once into the working design when the plan wins selection
— guaranteeing the scored and applied structures are identical.

Rule families (all exact under the netlist's mod-2^w semantics):

* ``strength_reduction`` — ``A * K`` with a constant operand becomes a
  shift-add tree over the set bits of ``K`` (bits at or above the
  output width drop out of the residue and are discarded).
* ``reassociation`` — a single-reader chain of same-kind adds or muls
  is re-shaped into a Huffman tree over the leaf toggle rates, so the
  quietest operands combine deepest (mod-2^w ``+``/``*`` are fully
  associative and commutative). The leaf order is fixed per iteration
  from the shared estimation run via :meth:`RewritePlan.prepare`.
* ``mux_hoist`` / ``mux_push`` — a shared operator is hoisted out of
  the arms of a mux (``mux(s, x+y0, x+y1) -> x + mux(s, y0, y1)``), or
  a two-way mux is pushed behind an operator (the inverse), shrinking
  or conditioning the active cone. The two directions would undo each
  other, so the finders never target cells the opposite rule created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.netlist.arith import Adder, ArithModule, Multiplier, Subtractor
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.netlist.logic import Mux
from repro.netlist.nets import Net
from repro.netlist.ports import Constant
from repro.netlist.splice import GraftBuilder

#: Strength reduction caps the shift-add fan-in: past this many set bits
#: the adder tree costs more than the multiplier under any activity, so
#: enumerating the candidate is wasted scoring work.
MAX_SHIFT_TERMS = 6

#: Kinds whose chains reassociate exactly under mod-2^w arithmetic.
_ASSOCIATIVE_KINDS = ("add", "mul")

#: Kinds mux rules move through (two-operand modules only).
_MUXABLE_KINDS = {"add": Adder, "sub": Subtractor, "mul": Multiplier}


@dataclass
class RewritePlan:
    """One candidate rewrite: what it deletes, reads, and builds.

    ``build(graft, sources)`` receives nets positionally aligned with
    :attr:`sources` (in the scratch design these are stand-in primary
    inputs carrying the traced values of the real nets) and returns the
    replacement output net. ``prepare`` — when set — is called once per
    iteration with the shared toggle monitor before any scoring, letting
    activity-dependent plans (reassociation) fix their shape from
    measured rates; the shape is then frozen for score *and* apply.
    """

    rule: str
    target: str
    removed: List[Cell]
    sources: List[Net]
    out_net: Net
    build: Callable[[GraftBuilder, Sequence[Net]], Net]
    detail: dict = field(default_factory=dict)
    prepare: Optional[Callable[["RewritePlan", object], None]] = None


# ----------------------------------------------------------------------
# Family 1: mul-by-constant strength reduction
# ----------------------------------------------------------------------
def _constant_operand(cell: ArithModule) -> Optional[str]:
    """The port of ``cell`` driven by a constant, preferring B."""
    for port in ("B", "A"):
        driver = cell.net(port).driver
        if driver is not None and isinstance(driver.cell, Constant):
            return port
    return None


def find_strength_reduction(design: Design) -> List[RewritePlan]:
    """``A * K`` -> shift-add tree over the set bits of ``K``."""
    plans: List[RewritePlan] = []
    for cell in sorted(design.cells, key=lambda c: c.name):
        if not isinstance(cell, Multiplier):
            continue
        const_port = _constant_operand(cell)
        if const_port is None:
            continue
        var_port = "A" if const_port == "B" else "B"
        const_net = cell.net(const_port)
        const_cell = const_net.driver.cell
        out_net = cell.net("Y")
        width = out_net.width
        # Bits of K at or above the output width shift every bit of A
        # past the truncation boundary; they cannot affect Y mod 2^w.
        k = const_net.clip(const_cell.value) & out_net.mask
        bits = [s for s in range(width) if (k >> s) & 1]
        if len(bits) > MAX_SHIFT_TERMS:
            continue
        var_net = cell.net(var_port)

        def build(
            graft: GraftBuilder,
            sources: Sequence[Net],
            bits: List[int] = bits,
            width: int = width,
        ) -> Net:
            (a,) = sources
            if not bits:
                return graft.const(0, width)
            terms = []
            for s in bits:
                if s == 0 and a.width == width:
                    terms.append(a)
                else:
                    terms.append(graft.shift(a, s, width))
            return graft.balanced_tree("add", terms, width)

        plans.append(
            RewritePlan(
                rule="strength_reduction",
                target=cell.name,
                removed=[cell],
                sources=[var_net],
                out_net=out_net,
                build=build,
                detail={"coefficient": k, "shift_terms": bits},
            )
        )
    return plans


# ----------------------------------------------------------------------
# Family 2: reassociation / balancing of add/mul chains
# ----------------------------------------------------------------------
def _collect_chain(root: ArithModule, width: int):
    """Leaves and cells of the maximal same-kind chain under ``root``.

    A chain extends through an operand net when it is driven by another
    cell of the same kind, has exactly one reader (the intermediate
    value is unobservable elsewhere), and the driver computes at the
    chain width — every operand and output net at ``width`` is the
    condition under which any reassociation is exact mod 2^w. Anything
    else (different kind, shared fanout, width change) is a leaf.
    Returns ``(leaves, cells)`` or None for degenerate chains (< 3
    leaves).
    """
    kind = root.kind
    if root.net("A").width != width or root.net("B").width != width:
        return None
    leaves: List[Net] = []
    cells: List[Cell] = []

    def extends(net: Net) -> bool:
        driver = net.driver
        return (
            driver is not None
            and isinstance(driver.cell, ArithModule)
            and driver.cell.kind == kind
            and len(net.readers) == 1
            and driver.cell.net("A").width == width
            and driver.cell.net("B").width == width
        )

    def walk(cell: ArithModule) -> None:
        cells.append(cell)
        for port in ("A", "B"):
            net = cell.net(port)
            if extends(net):
                walk(net.driver.cell)
            else:
                leaves.append(net)

    walk(root)
    if len(leaves) < 3:
        return None
    return leaves, cells


def _balanced_shape(n: int) -> object:
    """Default tree over leaf indices 0..n-1 (adjacent pairs first)."""
    level: List[object] = list(range(n))
    while len(level) > 1:
        paired: List[object] = []
        for i in range(0, len(level) - 1, 2):
            paired.append([level[i], level[i + 1]])
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def _huffman_shape(rates: List[float]) -> object:
    """Tree over leaf indices combining the two quietest terms first.

    Classic Huffman over toggle rates: minimising ``Σ rate·depth`` is
    minimising the total pin-charge the operand stream pays on its way
    through the tree — the noisiest operands enter last.
    """
    import heapq

    heap = [(rate, i, i) for i, rate in enumerate(rates)]
    heapq.heapify(heap)
    counter = len(rates)
    nodes: Dict[int, object] = {i: i for i in range(len(rates))}
    while len(heap) > 1:
        r1, _, n1 = heapq.heappop(heap)
        r2, _, n2 = heapq.heappop(heap)
        nodes[counter] = [nodes[n1], nodes[n2]]
        heapq.heappush(heap, (r1 + r2, counter, counter))
        counter += 1
    return nodes[heap[0][2]]


def find_reassociation(design: Design) -> List[RewritePlan]:
    """Re-shape single-reader add/mul chains by measured operand activity."""
    plans: List[RewritePlan] = []
    in_chain: set = set()
    for cell in sorted(design.cells, key=lambda c: c.name):
        if not isinstance(cell, ArithModule) or cell.kind not in _ASSOCIATIVE_KINDS:
            continue
        if cell.name in in_chain:
            continue  # interior of a larger chain already claimed
        out_net = cell.net("Y")
        # Only chain *roots*: a same-kind single-reader parent would
        # extend the chain upward, so this cell is interior, not a root.
        if (
            len(out_net.readers) == 1
            and isinstance(out_net.readers[0].cell, ArithModule)
            and out_net.readers[0].cell.kind == cell.kind
            and out_net.readers[0].cell.net("Y").width == out_net.width
        ):
            continue
        width = out_net.width
        chain = _collect_chain(cell, width)
        if chain is None:
            continue
        leaves, removed = chain
        in_chain.update(c.name for c in removed)
        kind = cell.kind

        def build(
            graft: GraftBuilder,
            sources: Sequence[Net],
            plan_detail: dict = None,
            kind: str = kind,
            width: int = width,
        ) -> Net:
            def emit(node: object) -> Net:
                if isinstance(node, int):
                    return sources[node]
                left, right = node
                return graft.binop(kind, emit(left), emit(right), width)

            return emit(plan_detail["tree"])

        def prepare(plan: RewritePlan, monitor: object) -> None:
            rates = [monitor.toggle_rate(net) for net in plan.sources]
            plan.detail["tree"] = _huffman_shape(rates)

        detail = {
            "kind": kind,
            "leaves": [net.name for net in leaves],
            "tree": _balanced_shape(len(leaves)),
        }
        plans.append(
            RewritePlan(
                rule="reassociation",
                target=cell.name,
                removed=removed,
                sources=list(leaves),
                out_net=out_net,
                build=lambda g, s, d=detail, b=build: b(g, s, plan_detail=d),
                detail=detail,
                prepare=prepare,
            )
        )
    return plans


# ----------------------------------------------------------------------
# Family 3: mux-pushing through arithmetic
# ----------------------------------------------------------------------
def find_mux_hoist(
    design: Design, skip_cells: Optional[set] = None
) -> List[RewritePlan]:
    """``mux(s, op(x, y0), op(x, y1), ...) -> op(x, mux(s, y0, y1, ...))``.

    All arms must be distinct same-kind two-operand modules, each read
    only by the mux, sharing one operand net ``x`` — on the *same* port
    for the non-commutative subtractor, on either port for add/mul. One
    operator replaces N; the mux moves to the (often narrower-activity)
    free operands.
    """
    skip_cells = skip_cells or set()
    plans: List[RewritePlan] = []
    for mux in sorted(design.cells, key=lambda c: c.name):
        if not isinstance(mux, Mux):
            continue
        arms = []
        for port in mux.data_ports():
            driver = mux.net(port).driver
            if (
                driver is None
                or driver.cell.kind not in _MUXABLE_KINDS
                or not isinstance(driver.cell, ArithModule)
                or len(driver.cell.net("Y").readers) != 1
            ):
                arms = None
                break
            arms.append(driver.cell)
        if not arms:
            continue
        kinds = {arm.kind for arm in arms}
        if len(kinds) != 1 or len({arm.name for arm in arms}) != len(arms):
            continue
        if any(arm.name in skip_cells for arm in arms):
            continue
        kind = arms[0].kind

        # Find the shared operand and the per-arm free operands.
        shared: Optional[Net] = None
        shared_port: Optional[str] = None
        if kind == "sub":
            for port in ("A", "B"):
                net = arms[0].net(port)
                if all(arm.net(port) is net for arm in arms):
                    shared, shared_port = net, port
                    break
        else:
            for net in (arms[0].net("A"), arms[0].net("B")):
                if all(arm.net("A") is net or arm.net("B") is net for arm in arms):
                    shared = net
                    break
        if shared is None:
            continue
        free: List[Net] = []
        for arm in arms:
            if kind == "sub":
                free.append(arm.net("B" if shared_port == "A" else "A"))
            else:
                free.append(arm.net("B") if arm.net("A") is shared else arm.net("A"))
        if len({net.width for net in free} | {shared.width}) != 1:
            continue

        sel = mux.net("S")
        out_net = mux.net("Y")
        width = out_net.width
        operand_width = shared.width

        def build(
            graft: GraftBuilder,
            sources: Sequence[Net],
            kind: str = kind,
            shared_port: Optional[str] = shared_port,
            width: int = width,
            operand_width: int = operand_width,
        ) -> Net:
            x, sel = sources[0], sources[1]
            ym = graft.mux(sel, sources[2:], operand_width)
            if kind == "sub" and shared_port == "B":
                return graft.binop(kind, ym, x, width)
            return graft.binop(kind, x, ym, width)

        plans.append(
            RewritePlan(
                rule="mux_hoist",
                target=mux.name,
                removed=list(arms) + [mux],
                sources=[shared, sel] + free,
                out_net=out_net,
                build=build,
                detail={
                    "kind": kind,
                    "arms": [arm.name for arm in arms],
                    "shared": shared.name,
                },
            )
        )
    return plans


def find_mux_push(
    design: Design, skip_cells: Optional[set] = None
) -> List[RewritePlan]:
    """``op(mux(s, d0, d1), c) -> mux(s, op(d0, c), op(d1, c))``.

    Profitable when the mux output is much noisier than either arm
    (select churn multiplies toggles into the operator); the duplicated
    operators each see only their own arm's activity, and the structure
    exposes per-arm isolation candidates downstream.
    """
    skip_cells = skip_cells or set()
    plans: List[RewritePlan] = []
    for cell in sorted(design.cells, key=lambda c: c.name):
        if (
            not isinstance(cell, ArithModule)
            or cell.kind not in _MUXABLE_KINDS
            or cell.name in skip_cells
        ):
            continue
        for port in ("A", "B"):
            net = cell.net(port)
            driver = net.driver
            if (
                driver is None
                or not isinstance(driver.cell, Mux)
                or driver.cell.n_inputs != 2
                or len(net.readers) != 1
            ):
                continue
            mux = driver.cell
            d0, d1, sel = mux.net("D0"), mux.net("D1"), mux.net("S")
            other = cell.net("B" if port == "A" else "A")
            out_net = cell.net("Y")
            width = out_net.width
            kind = cell.kind

            def build(
                graft: GraftBuilder,
                sources: Sequence[Net],
                kind: str = kind,
                port: str = port,
                width: int = width,
            ) -> Net:
                d0, d1, sel, other = sources
                if port == "A":
                    t0 = graft.binop(kind, d0, other, width)
                    t1 = graft.binop(kind, d1, other, width)
                else:
                    t0 = graft.binop(kind, other, d0, width)
                    t1 = graft.binop(kind, other, d1, width)
                return graft.mux(sel, [t0, t1], width)

            plans.append(
                RewritePlan(
                    rule="mux_push",
                    target=cell.name,
                    removed=[cell, mux],
                    sources=[d0, d1, sel, other],
                    out_net=out_net,
                    build=build,
                    detail={"kind": kind, "mux": mux.name, "port": port},
                )
            )
            break  # one push per operator; re-enumerated next iteration
    return plans


# ----------------------------------------------------------------------
def find_rewrites(
    design: Design, created_by: Optional[Mapping[str, str]] = None
) -> List[RewritePlan]:
    """All candidate rewrites of ``design``, across the three families.

    ``created_by`` maps cell names to the rule that grafted them earlier
    in the same run; it keeps the two mux directions from unwinding each
    other's work (hoist never consumes push products and vice versa).
    """
    created_by = created_by or {}
    hoist_skip = {n for n, rule in created_by.items() if rule == "mux_push"}
    push_skip = {n for n, rule in created_by.items() if rule == "mux_hoist"}
    plans = find_strength_reduction(design)
    plans += find_reassociation(design)
    plans += find_mux_hoist(design, skip_cells=hoist_skip)
    plans += find_mux_push(design, skip_cells=push_skip)
    return plans
