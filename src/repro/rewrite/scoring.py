"""Power scoring of candidate rewrites against the shared estimation run.

The rewriter never pays a second simulation to evaluate a candidate.
Instead a :class:`ValueTrace` monitor rides along on the iteration's
single estimation run (the same run that feeds every other pass) and
records the per-cycle values of every candidate's boundary nets. Scoring
a plan then:

1. builds the replacement logic into a throwaway scratch design, with
   stand-in primary inputs for the boundary nets and as many dummy
   readers on the replacement output as the real output has (fanout
   parity for the output-energy term);
2. replays the traced boundary values through the scratch cells — graft
   creation order is topological — giving the *exact* toggle counts
   every new net would have shown in the measured run (the rewrite is
   value-preserving, so boundary values are unchanged by applying it);
3. prices the removed cells with the shared
   :class:`~repro.power.estimator.PowerEstimator` and measured rates,
   and the replacement cells with the same estimator over the replayed
   rates (:class:`RateView` adapts the rate table to the monitor
   interface);
4. folds the mW delta and the library-area delta into the same
   ``h(c) = ω_p·rP − ω_a·rA`` merit every pass competes under.

Because the scratch build and the real apply run the *same* plan.build
recipe, the scored structure is the applied structure by construction —
and a rewrite that reproduces the existing structure scores an exact
0.0 mW, which the pass filters out, so rewriting always terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.netlist.design import Design
from repro.netlist.nets import Net
from repro.netlist.ports import PrimaryInput, PrimaryOutput
from repro.netlist.splice import GraftBuilder
from repro.power.estimator import PowerEstimator
from repro.rewrite.rules import RewritePlan
from repro.sim.monitor import Monitor, popcount

#: Predicted gains at or below this are treated as "no gain": they are
#: either exact no-ops (rebuilding the same structure) or within noise,
#: and applying them would let the greedy loop spin without converging.
MIN_GAIN_MW = 1e-9


class ValueTrace(Monitor):
    """Records per-cycle values of selected nets during an estimation run.

    Observes the same post-warmup window as the power monitor, so toggle
    counts recomputed from the trace agree exactly with
    :class:`~repro.sim.monitor.ToggleMonitor` over the same nets.
    """

    def __init__(self, nets: Iterable[Net]) -> None:
        self._nets: List[Net] = list(dict.fromkeys(nets))
        self.values: Dict[Net, List[int]] = {}

    def begin(self, design: Design) -> None:
        self.values = {net: [] for net in self._nets}

    def observe(self, cycle: int, values: Mapping[Net, int]) -> None:
        for net in self._nets:
            self.values[net].append(values[net])

    @property
    def cycles(self) -> int:
        if not self.values:
            return 0
        return len(next(iter(self.values.values())))


class RateView:
    """A fixed net→rate table behind the ToggleMonitor scoring interface.

    Lets :meth:`PowerEstimator.cell_energy` price hypothetical cells
    whose nets were never simulated. Grafted cells are never
    clock-gated, so ``one_probability`` is unused; it returns 0.0 for
    interface completeness.
    """

    def __init__(self, rates: Dict[Net, float]) -> None:
        self._rates = rates

    def toggle_rate(self, net: Net) -> float:
        return self._rates[net]

    def one_probability(self, net: Net) -> float:
        return 0.0


@dataclass
class RewriteScore:
    """Scored candidate rewrite; ``h`` competes under the shared budget."""

    plan: RewritePlan
    before_mw: float
    after_mw: float
    net_mw: float
    area_delta: float
    cells_added: int
    relative_power: float
    relative_area: float
    h: float

    @property
    def target(self) -> str:
        return self.plan.target

    @property
    def rule(self) -> str:
        return self.plan.rule


def replay_graft(
    graft: GraftBuilder, source_values: Dict[Net, List[int]], cycles: int
) -> Dict[Net, float]:
    """Toggle rates of every graft-created net from traced input values.

    Evaluates the grafted cells in creation order (topological) for each
    traced cycle and counts bit toggles between consecutive cycles,
    matching the ToggleMonitor convention ``toggles / (cycles - 1)``.
    """
    env: Dict[Net, int] = {}
    previous: Dict[Net, int] = {}
    toggles: Dict[Net, int] = {}
    for cell in graft.cells:
        for pin in cell.output_pins:
            toggles[pin.net] = 0
    for t in range(cycles):
        for net, samples in source_values.items():
            env[net] = samples[t]
        for cell in graft.cells:
            inputs = {pin.port: env[pin.net] for pin in cell.input_pins}
            for port, value in cell.evaluate(inputs).items():
                net = cell.net(port)
                if t > 0:
                    toggles[net] += popcount(previous[net] ^ value)
                previous[net] = value
                env[net] = value
    if cycles <= 1:
        return {net: 0.0 for net in toggles}
    return {net: count / (cycles - 1) for net, count in toggles.items()}


def score_rewrite(
    plan: RewritePlan,
    trace: ValueTrace,
    monitor,
    total_power_mw: float,
    total_area: float,
    weights,
    library,
    estimator: Optional[PowerEstimator] = None,
) -> RewriteScore:
    """Score one plan from the shared run; see the module docstring."""
    estimator = estimator or PowerEstimator(library)

    # 1. Scratch build: stand-in PIs for boundary nets, fanout parity POs.
    scratch = Design(f"rwscore_{plan.target}")
    stand_in: Dict[Net, Net] = {}
    for i, net in enumerate(plan.sources):
        if net in stand_in:
            continue
        pi = PrimaryInput(f"src{i}")
        scratch.add_cell(pi)
        stand_in[net] = scratch.add_net(f"src{i}_n", net.width)
        scratch.connect(pi, "Y", stand_in[net])
    graft = GraftBuilder(scratch)
    new_out = plan.build(graft, [stand_in[net] for net in plan.sources])
    for j in range(len(plan.out_net.readers)):
        po = PrimaryOutput(f"ro{j}")
        scratch.add_cell(po)
        scratch.connect(po, "A", new_out)

    # 2./3. Replay the trace; price old and new cones with one estimator.
    source_values = {
        stand_in[net]: trace.values[net] for net in plan.sources
    }
    rates = replay_graft(graft, source_values, trace.cycles)
    for net in plan.sources:
        rates[stand_in[net]] = monitor.toggle_rate(net)
    view = RateView(rates)
    before_pj = sum(estimator.cell_energy(cell, monitor) for cell in plan.removed)
    after_pj = sum(estimator.cell_energy(cell, view) for cell in graft.cells)
    before_mw = library.power_mw(before_pj)
    after_mw = library.power_mw(after_pj)
    net_mw = before_mw - after_mw

    # 4. The shared cost merit (negative area delta raises h: a rewrite
    # that shrinks the design is rewarded, the mirror of the isolation
    # overhead penalty).
    before_area = sum(library.area(cell) for cell in plan.removed)
    after_area = sum(library.area(cell) for cell in graft.cells)
    area_delta = after_area - before_area
    relative_power = net_mw / total_power_mw if total_power_mw else 0.0
    relative_area = area_delta / total_area if total_area else 0.0
    h = weights.omega_p * relative_power - weights.omega_a * relative_area
    return RewriteScore(
        plan=plan,
        before_mw=before_mw,
        after_mw=after_mw,
        net_mw=net_mw,
        area_delta=area_delta,
        cells_added=len(graft.cells),
        relative_power=relative_power,
        relative_area=relative_area,
        h=h,
    )
