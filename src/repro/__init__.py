"""repro — automated RT-level operand isolation for low-power datapaths.

A faithful, self-contained reproduction of M. Münch, B. Wurth, R. Mehra,
J. Sproch and N. Wehn, "Automating RT-Level Operand Isolation to Minimize
Power Consumption in Datapaths", DATE 2000 — including the RTL netlist
substrate, a cycle-based power-aware simulator, macro power models,
static timing, the activation-function derivation, the savings model and
the iterative isolation algorithm, plus the baseline techniques the paper
compares against.

Quickstart::

    from repro import api, designs
    session = api.Session(designs.design1(),
                          run=api.RunConfig(engine="compiled"))
    print(session.isolate(style="auto").summary())

The :mod:`repro.api` facade bundles the whole surface; the per-package
deep imports (``repro.core``, ``repro.sim``, ...) remain available.
"""

__version__ = "1.0.0"

from repro import (
    api,
    baselines,
    boolean,
    core,
    designs,
    netlist,
    obs,
    parallel,
    power,
    sim,
    timing,
    verify,
)
from repro.runconfig import ENGINES, RunConfig

__all__ = [
    "api",
    "netlist",
    "boolean",
    "sim",
    "power",
    "timing",
    "core",
    "designs",
    "baselines",
    "obs",
    "parallel",
    "verify",
    "RunConfig",
    "ENGINES",
]
