"""repro — automated RT-level operand isolation for low-power datapaths.

A faithful, self-contained reproduction of M. Münch, B. Wurth, R. Mehra,
J. Sproch and N. Wehn, "Automating RT-Level Operand Isolation to Minimize
Power Consumption in Datapaths", DATE 2000 — including the RTL netlist
substrate, a cycle-based power-aware simulator, macro power models,
static timing, the activation-function derivation, the savings model and
the iterative isolation algorithm, plus the baseline techniques the paper
compares against.

Quickstart::

    from repro import designs, core
    design = designs.paper_example()
    result = core.isolate_design(design, style="and")
    print(result.summary())
"""

__version__ = "1.0.0"

from repro import baselines, boolean, core, designs, netlist, power, sim, timing, verify

__all__ = [
    "netlist",
    "boolean",
    "sim",
    "power",
    "timing",
    "core",
    "designs",
    "baselines",
    "verify",
]
