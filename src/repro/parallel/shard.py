"""Sharded Monte-Carlo batch simulation (the data-parallel axis).

The batch engine's replications are i.i.d. by construction, which makes
them embarrassingly parallel: split the ``batch_size`` lanes into
**shards**, simulate each shard in its own process with its own
deterministically derived stimulus seed, and merge the per-lane *count*
statistics afterwards. Because the merge concatenates integer counters
keyed by shard index (never averages floats), the merged statistics are
**bit-exact** regardless of worker count or completion order: running a
plan with ``workers=1``, ``workers=2`` or ``workers=8`` yields the same
arrays.

Two invariants make that guarantee hold:

* the shard plan depends only on ``(seed, batch_size, n_shards)`` —
  never on the worker count (workers only schedule shards);
* each shard's stimulus seed comes from :func:`derive_shard_seed`, a
  keyed hash of ``(seed, shard_index)``, so no two shards (or two base
  seeds) share a stimulus stream.

Typical use::

    run = run_batch_sharded(design, batch_size=32, cycles=500,
                            seed=7, workers=4,
                            probes={"en": var("EN")})
    mean, half = run.stats.toggle_rate_ci(design.net("X"))
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.netlist.design import Design
from repro.parallel.pool import ParallelReport, WorkerPool
from repro.sim.batch import (
    BatchProbe,
    BatchRandomStimulus,
    BatchSimulator,
    BatchToggleMonitor,
    cross_lane_ci,
)

#: Default maximum lanes per shard: small enough that a 32-lane batch
#: spreads over 4+ workers, large enough to amortize per-shard setup.
DEFAULT_MAX_LANES_PER_SHARD = 8


def derive_shard_seed(seed: int, shard_index: int) -> int:
    """Deterministic 63-bit stimulus seed for one shard of one run.

    A keyed blake2b hash of the ``(seed, shard_index)`` pair: distinct
    pairs map to distinct streams (collisions need ~2^31 pairs), the
    mapping is stable across processes and platforms, and nearby seeds
    or shard indices share no stream structure. Injectivity over
    practical domains is property-tested in
    ``tests/test_parallel_properties.py``.
    """
    if shard_index < 0:
        raise SimulationError(f"shard_index must be >= 0, got {shard_index}")
    message = f"repro-shard:{int(seed)}:{int(shard_index)}".encode("ascii")
    digest = hashlib.blake2b(message, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1  # 63 bits: numpy-friendly


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded batch run: its lanes and stimulus seed."""

    index: int
    lanes: int
    seed: int


def plan_shards(
    batch_size: int,
    seed: int = 0,
    n_shards: Optional[int] = None,
    max_lanes_per_shard: int = DEFAULT_MAX_LANES_PER_SHARD,
) -> Tuple[ShardSpec, ...]:
    """Split ``batch_size`` lanes into a worker-count-independent plan.

    ``n_shards`` defaults to ``ceil(batch_size / max_lanes_per_shard)``;
    lane counts across shards differ by at most one. The plan is a pure
    function of ``(seed, batch_size, n_shards)`` so the same request
    shards identically no matter how many workers later execute it.
    """
    if batch_size < 1:
        raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
    if max_lanes_per_shard < 1:
        raise SimulationError(
            f"max_lanes_per_shard must be >= 1, got {max_lanes_per_shard}"
        )
    if n_shards is None:
        n_shards = math.ceil(batch_size / max_lanes_per_shard)
    if not 1 <= n_shards <= batch_size:
        raise SimulationError(
            f"n_shards must be in [1, batch_size={batch_size}], got {n_shards}"
        )
    base, extra = divmod(batch_size, n_shards)
    specs = []
    for index in range(n_shards):
        lanes = base + (1 if index < extra else 0)
        specs.append(
            ShardSpec(index=index, lanes=lanes, seed=derive_shard_seed(seed, index))
        )
    return tuple(specs)


# ----------------------------------------------------------------------
# Per-shard statistics and their order-independent merge
# ----------------------------------------------------------------------
@dataclass
class ShardStats:
    """Raw per-lane counters of one executed shard.

    Everything is keyed by *name* (net / probe), holds integer counts
    (not rates), and is plain picklable data — the exchange format
    between worker processes and the merging parent.
    """

    shard_index: int
    lanes: int
    cycles: int
    toggle_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    probe_true: Dict[str, np.ndarray] = field(default_factory=dict)
    probe_cycles: int = 0
    elapsed_s: float = 0.0


class MergedBatchStats:
    """Cross-shard statistics with the :class:`BatchToggleMonitor` API.

    Lanes are concatenated in shard-index order, so the merged arrays
    are independent of both the order shards finished in and the order
    they were merged in (see the property tests). Accepts nets or net
    names interchangeably.
    """

    def __init__(self, shards: Sequence[ShardStats]) -> None:
        ordered = sorted(shards, key=lambda s: s.shard_index)
        indices = [s.shard_index for s in ordered]
        if len(set(indices)) != len(indices):
            raise SimulationError(f"duplicate shard indices in merge: {indices}")
        if not ordered:
            raise SimulationError("cannot merge zero shards")
        cycle_counts = {s.cycles for s in ordered}
        if len(cycle_counts) != 1:
            raise SimulationError(
                f"shards observed different cycle counts: {sorted(cycle_counts)}"
            )
        key_sets = {frozenset(s.toggle_counts) for s in ordered}
        if len(key_sets) != 1:
            raise SimulationError("shards watched different net sets")
        self.shards: Tuple[ShardStats, ...] = tuple(ordered)
        self.cycles = ordered[0].cycles
        self.probe_cycles = ordered[0].probe_cycles
        self.batch_size = sum(s.lanes for s in ordered)
        self.toggles: Dict[str, np.ndarray] = {
            name: np.concatenate([s.toggle_counts[name] for s in ordered])
            for name in ordered[0].toggle_counts
        }
        self.probe_true: Dict[str, np.ndarray] = {
            name: np.concatenate([s.probe_true[name] for s in ordered])
            for name in ordered[0].probe_true
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _name(net: Union[str, object]) -> str:
        return net if isinstance(net, str) else net.name

    def per_lane_rates(self, net: Union[str, object]) -> np.ndarray:
        """Toggle rate of every replication, all shards concatenated."""
        counts = self.toggles[self._name(net)]
        if self.cycles <= 1:
            return np.zeros(self.batch_size)
        return counts.astype(np.float64) / (self.cycles - 1)

    def toggle_rate(self, net: Union[str, object]) -> float:
        return float(self.per_lane_rates(net).mean())

    def toggle_rate_ci(
        self, net: Union[str, object], z: float = 1.96
    ) -> Tuple[float, float]:
        return cross_lane_ci(self.per_lane_rates(net), z)

    # ------------------------------------------------------------------
    def probe_per_lane(self, name: str) -> np.ndarray:
        counts = self.probe_true[name]
        if self.probe_cycles == 0:
            return np.zeros(self.batch_size)
        return counts / self.probe_cycles

    def probe_probability(self, name: str) -> float:
        return float(self.probe_per_lane(name).mean())

    def probe_probability_ci(self, name: str, z: float = 1.96) -> Tuple[float, float]:
        return cross_lane_ci(self.probe_per_lane(name), z)


def merge_shard_stats(
    *groups: Union[ShardStats, MergedBatchStats, Iterable[ShardStats]],
) -> MergedBatchStats:
    """Merge shard statistics, order-independently.

    Accepts bare :class:`ShardStats`, previously merged
    :class:`MergedBatchStats` and iterables of either, in any order and
    grouping — the operation is associative and commutative because the
    result is canonicalised by shard index (property-tested).
    """
    flat: List[ShardStats] = []
    for group in groups:
        if isinstance(group, ShardStats):
            flat.append(group)
        elif isinstance(group, MergedBatchStats):
            flat.extend(group.shards)
        else:
            for item in group:
                if isinstance(item, MergedBatchStats):
                    flat.extend(item.shards)
                else:
                    flat.append(item)
    return MergedBatchStats(flat)


# ----------------------------------------------------------------------
# Shard execution
# ----------------------------------------------------------------------
def run_shard(
    design: Design,
    spec: ShardSpec,
    cycles: int,
    warmup: int = 0,
    engine: str = "python",
    probes: Optional[Mapping[str, object]] = None,
    stimulus_kwargs: Optional[Mapping[str, object]] = None,
    nets: Optional[Sequence[str]] = None,
    checkpoint_every: Optional[int] = None,
    lane_width: Optional[int] = None,
) -> ShardStats:
    """Execute one shard and return its raw counters.

    This is the function worker processes run; it is also directly
    usable for manual shard execution (e.g. the checkpoint/resume
    determinism tests drive single shards through it and resume them
    with :class:`~repro.sim.batch.BatchCheckpoint`).
    """
    with obs.span(
        "shard.run",
        "sim",
        design=design.name,
        shard=spec.index,
        lanes=spec.lanes,
        cycles=cycles,
    ):
        start = time.perf_counter()
        restrict = (
            [design.net(name) for name in nets] if nets is not None else None
        )
        monitor = BatchToggleMonitor(restrict)
        probe_monitors = [
            BatchProbe(name, expr) for name, expr in sorted((probes or {}).items())
        ]
        # stacklevel=3: attribute a bitslice->compiled degradation warning
        # to whoever invoked run_shard, not to this wrapper.
        simulator = BatchSimulator(
            design,
            batch_size=spec.lanes,
            engine=engine,
            lane_width=lane_width,
            stacklevel=3,
        )
        stimulus = BatchRandomStimulus(
            design, batch_size=spec.lanes, seed=spec.seed, **dict(stimulus_kwargs or {})
        )
        monitors = simulator.run(
            stimulus,
            cycles,
            monitors=[monitor] + probe_monitors,
            warmup=warmup,
            checkpoint_every=checkpoint_every,
        )
        return shard_stats_from_monitors(spec, monitors, time.perf_counter() - start)


def shard_stats_from_monitors(
    spec: ShardSpec, monitors: Sequence[object], elapsed_s: float = 0.0
) -> ShardStats:
    """Convert live monitors of one shard run into picklable counters."""
    toggle_counts: Dict[str, np.ndarray] = {}
    probe_true: Dict[str, np.ndarray] = {}
    cycles = 0
    probe_cycles = 0
    for monitor in monitors:
        if isinstance(monitor, BatchToggleMonitor):
            cycles = monitor.cycles
            for net, counts in monitor.toggles.items():
                toggle_counts[net.name] = counts.copy()
        elif isinstance(monitor, BatchProbe):
            probe_cycles = monitor.cycles
            probe_true[monitor.name] = monitor.true_counts.copy()
    return ShardStats(
        shard_index=spec.index,
        lanes=spec.lanes,
        cycles=cycles,
        toggle_counts=toggle_counts,
        probe_true=probe_true,
        probe_cycles=probe_cycles,
        elapsed_s=elapsed_s,
    )


def _run_shard_payload(payload: dict) -> ShardStats:
    """Module-level worker shim for :class:`~repro.parallel.pool.WorkerPool`."""
    return run_shard(
        payload["design"],
        payload["spec"],
        payload["cycles"],
        warmup=payload["warmup"],
        engine=payload["engine"],
        probes=payload["probes"],
        stimulus_kwargs=payload["stimulus_kwargs"],
        nets=payload["nets"],
        checkpoint_every=payload["checkpoint_every"],
        lane_width=payload.get("lane_width"),
    )


@dataclass
class ShardedRun:
    """Everything :func:`run_batch_sharded` produces."""

    stats: MergedBatchStats
    report: ParallelReport
    plan: Tuple[ShardSpec, ...]

    @property
    def shard_timings(self) -> List[Tuple[int, float]]:
        """(shard index, seconds) pairs, for the ``--json`` reports."""
        return [(s.shard_index, s.elapsed_s) for s in self.stats.shards]


def run_batch_sharded(
    design: Design,
    batch_size: int,
    cycles: int,
    warmup: int = 0,
    seed: int = 0,
    workers: int = 1,
    n_shards: Optional[int] = None,
    max_lanes_per_shard: int = DEFAULT_MAX_LANES_PER_SHARD,
    engine: str = "python",
    probes: Optional[Mapping[str, object]] = None,
    stimulus_kwargs: Optional[Mapping[str, object]] = None,
    nets: Optional[Sequence[str]] = None,
    checkpoint_every: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    lane_width: Optional[int] = None,
) -> ShardedRun:
    """Shard a batch Monte-Carlo run over a process pool and merge it.

    The result is bit-exact across worker counts: the shard plan and
    per-shard seeds depend only on ``(seed, batch_size, n_shards)``, and
    the merge concatenates integer counters in shard-index order.
    ``pool`` lets callers reuse a :class:`WorkerPool` across runs; pool
    failures degrade to in-process execution and are recorded in the
    returned report's ``fallback_reason``.
    """
    plan = plan_shards(
        batch_size,
        seed=seed,
        n_shards=n_shards,
        max_lanes_per_shard=max_lanes_per_shard,
    )
    payloads = [
        {
            "design": design,
            "spec": spec,
            "cycles": cycles,
            "warmup": warmup,
            "engine": engine,
            "probes": dict(probes or {}),
            "stimulus_kwargs": dict(stimulus_kwargs or {}),
            "nets": list(nets) if nets is not None else None,
            "checkpoint_every": checkpoint_every,
            "lane_width": lane_width,
        }
        for spec in plan
    ]
    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(workers)
    try:
        shard_results = pool.map(_run_shard_payload, payloads)
    finally:
        if own_pool:
            pool.close()
    return ShardedRun(
        stats=merge_shard_stats(shard_results),
        report=pool.report(),
        plan=plan,
    )
