"""Multi-worker execution layer: sharded simulation + pooled scoring.

Two independent axes of parallelism, both deterministic by construction:

* **Data parallelism** (:mod:`repro.parallel.shard`) — the Monte-Carlo
  batch engine's replications are split into shards with
  deterministically derived seeds, simulated across a process pool and
  merged by concatenating integer counters in shard-index order. The
  merged statistics are bit-exact regardless of worker count.
* **Task parallelism** (:mod:`repro.parallel.scoring`) — the
  per-candidate cost evaluations of Algorithm 1 (and the what-if
  explorer, and ``compare_styles``'s per-style runs) are dispatched to
  the pool; workers return identity-free numeric records that the
  parent re-binds to its live candidate objects, so greedy selection
  order is identical to serial.

The shared pool (:mod:`repro.parallel.pool`) degrades gracefully: any
infrastructure failure drops to inline execution with a recorded
``fallback_reason``, mirroring the compiled-engine degradation story.

Entry points thread a single ``workers`` knob through
:class:`~repro.runconfig.RunConfig`, ``IsolationConfig``, the
:class:`~repro.api.Session` facade and the CLI's ``--workers`` flag
(``0``/``auto`` = one worker per CPU; the ``REPRO_WORKERS`` env var sets
the default). See ``docs/parallelism.md`` for the worker model and the
determinism guarantees.
"""

from repro.parallel.pool import (
    ParallelReport,
    WorkerPool,
    available_cpus,
    default_workers,
    resolve_workers,
)
from repro.parallel.scoring import (
    ScoreRecord,
    chunk_tasks,
    isolate_styles,
    score_candidates,
)
from repro.parallel.shard import (
    DEFAULT_MAX_LANES_PER_SHARD,
    MergedBatchStats,
    ShardSpec,
    ShardStats,
    ShardedRun,
    derive_shard_seed,
    merge_shard_stats,
    plan_shards,
    run_batch_sharded,
    run_shard,
    shard_stats_from_monitors,
)

__all__ = [
    "ParallelReport",
    "WorkerPool",
    "available_cpus",
    "default_workers",
    "resolve_workers",
    "ScoreRecord",
    "chunk_tasks",
    "isolate_styles",
    "score_candidates",
    "DEFAULT_MAX_LANES_PER_SHARD",
    "MergedBatchStats",
    "ShardSpec",
    "ShardStats",
    "ShardedRun",
    "derive_shard_seed",
    "merge_shard_stats",
    "plan_shards",
    "run_batch_sharded",
    "run_shard",
    "shard_stats_from_monitors",
]
