"""Parallel candidate evaluation (the task-parallel axis).

Algorithm 1 and the what-if explorer both score candidates against a
*calibrated* :class:`~repro.core.cost.CostModel` — pure computation per
``(candidate, style)`` pair, independent across pairs. These helpers
dispatch those evaluations to a :class:`~repro.parallel.pool.WorkerPool`
in chunks, while guaranteeing that the caller's greedy selection sees
exactly the numbers a serial loop would have produced:

* the same :meth:`CostModel.evaluate` code runs in the worker (on a
  pickled copy of the calibrated model) — identical IEEE arithmetic,
  and pickling round-trips floats losslessly;
* workers return plain numeric records; the parent re-binds them to its
  *own* candidate objects by name, so downstream netlist transforms
  (``isolate_candidate``) keep operating on the live design.

``score_candidates`` therefore commutes with serial evaluation
bit-for-bit, which is what ``tests/test_parallel_determinism.py``
locks down.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.cost import CandidateCost, CostModel
from repro.core.savings import SavingsEstimate
from repro.parallel.pool import WorkerPool

#: One scoring task: (candidate name, isolation style).
ScoreTask = Tuple[str, str]


@dataclass(frozen=True)
class ScoreRecord:
    """Numbers of one ``(candidate, style)`` evaluation, identity-free."""

    name: str
    style: str
    primary_mw: float
    secondary_mw: float
    overhead_mw: float
    idle_probability: float
    area: float
    relative_power: float
    relative_area: float
    h: float
    accepted: bool


def _record_of(cost: CandidateCost) -> ScoreRecord:
    return ScoreRecord(
        name=cost.candidate.name,
        style=cost.savings.style,
        primary_mw=cost.savings.primary_mw,
        secondary_mw=cost.savings.secondary_mw,
        overhead_mw=cost.savings.overhead_mw,
        idle_probability=cost.savings.idle_probability,
        area=cost.area,
        relative_power=cost.relative_power,
        relative_area=cost.relative_area,
        h=cost.h,
        accepted=cost.accepted,
    )


def _cost_of(record: ScoreRecord, candidate) -> CandidateCost:
    """Re-bind a worker's numbers to the parent's candidate object."""
    cost = CandidateCost(
        candidate=candidate,
        savings=SavingsEstimate(
            candidate=candidate,
            style=record.style,
            primary_mw=record.primary_mw,
            secondary_mw=record.secondary_mw,
            overhead_mw=record.overhead_mw,
            idle_probability=record.idle_probability,
        ),
        area=record.area,
        relative_power=record.relative_power,
        relative_area=record.relative_area,
        h=record.h,
    )
    cost._accepted = record.accepted
    return cost


def _score_chunk(payload: dict) -> List[ScoreRecord]:
    """Worker: evaluate a chunk of (name, style) tasks on a model copy."""
    cost_model: CostModel = payload["cost_model"]
    refined: bool = payload["refined"]
    by_name = {c.name: c for c in cost_model.savings_model.candidates}
    return [
        _score_one(cost_model, by_name[name], style, refined)
        for name, style in payload["tasks"]
    ]


def _score_one(cost_model: CostModel, candidate, style: str, refined: bool) -> ScoreRecord:
    """One traced ``(candidate, style)`` evaluation (worker or serial)."""
    with obs.span(
        "score.candidate", "score", candidate=candidate.name, style=style
    ) as span:
        cost = cost_model.evaluate(candidate, style, refined=refined)
        span.set(accepted=cost.accepted, h=cost.h)
        obs.counter(
            "score.evaluations", accepted=str(cost.accepted).lower()
        ).inc()
    return _record_of(cost)


def chunk_tasks(tasks: Sequence, chunks: int) -> List[List]:
    """Split tasks into at most ``chunks`` contiguous, near-even chunks."""
    chunks = max(1, min(chunks, len(tasks)))
    base, extra = divmod(len(tasks), chunks)
    out, cursor = [], 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        out.append(list(tasks[cursor : cursor + size]))
        cursor += size
    return out


def score_candidates(
    cost_model: CostModel,
    tasks: Sequence[ScoreTask],
    refined: bool = True,
    pool: Optional[WorkerPool] = None,
) -> Dict[ScoreTask, CandidateCost]:
    """Evaluate every ``(candidate, style)`` task, serially or pooled.

    Returns a dict keyed by task whose :class:`CandidateCost` values
    reference the *caller's* candidate objects. Serial and pooled
    execution produce bit-identical numbers.
    """
    by_name = {c.name: c for c in cost_model.savings_model.candidates}
    with obs.span("score.batch", "score", tasks=len(tasks)):
        if pool is None or not pool.active or len(tasks) <= 1:
            return {
                (name, style): _cost_of(
                    _score_one(cost_model, by_name[name], style, refined),
                    by_name[name],
                )
                for name, style in tasks
            }
        payloads = [
            {"cost_model": cost_model, "refined": refined, "tasks": chunk}
            for chunk in chunk_tasks(tasks, pool.workers)
        ]
        results: Dict[ScoreTask, CandidateCost] = {}
        for records in pool.map(_score_chunk, payloads):
            for record in records:
                results[(record.name, record.style)] = _cost_of(
                    record, by_name[record.name]
                )
        return results


# ----------------------------------------------------------------------
# What-if ranking parallelism for rank_candidates
# ----------------------------------------------------------------------
def _rank_chunk(payload: dict) -> List:
    """Worker: full what-if assessment of a chunk of candidates.

    The whole payload is pickled as one unit, so the cost model, design
    and timing analysis keep sharing one object graph in the worker —
    candidate cells resolve against the same design copy.
    """
    from repro.core.explore import assess_candidate

    cost_model = payload["cost_model"]
    by_name = {c.name: c for c in cost_model.savings_model.candidates}
    return [
        assess_candidate(
            by_name[name],
            cost_model,
            payload["design"],
            payload["style"],
            payload["library"],
            payload["timing"],
        )
        for name in payload["names"]
    ]


def rank_chunked(
    cost_model,
    names: Sequence[str],
    design,
    style: str,
    library,
    timing,
    pool: Optional[WorkerPool],
) -> Dict[str, object]:
    """Assess candidates by name, serially or pooled; bit-exact either way.

    Returns ``{name: RankedCandidate}``; :class:`RankedCandidate` carries
    only plain values, so workers return it directly.
    """
    from repro.core.explore import assess_candidate

    if pool is None or not pool.active or len(names) <= 1:
        by_name = {c.name: c for c in cost_model.savings_model.candidates}
        return {
            name: assess_candidate(
                by_name[name], cost_model, design, style, library, timing
            )
            for name in names
        }
    payloads = [
        {
            "cost_model": cost_model,
            "design": design,
            "style": style,
            "library": library,
            "timing": timing,
            "names": chunk,
        }
        for chunk in chunk_tasks(names, pool.workers)
    ]
    return {
        ranked.name: ranked
        for records in pool.map(_rank_chunk, payloads)
        for ranked in records
    }


# ----------------------------------------------------------------------
# Style-level parallelism for compare_styles
# ----------------------------------------------------------------------
def _isolate_style(payload: dict):
    """Worker: one full Algorithm-1 run for one style."""
    from repro.core.algorithm import isolate_design

    return isolate_design(
        payload["design"],
        payload["stimulus"],
        payload["config"],
        payload["library"],
    )


def isolate_styles(
    design,
    stimulus_of,
    configs: Sequence,
    library,
    pool: Optional[WorkerPool] = None,
) -> List:
    """Run ``isolate_design`` once per style config, serially or pooled.

    ``stimulus_of`` is a zero-argument factory producing one fresh
    stimulus per style (workers receive a materialised stimulus object,
    which ``isolate_design`` deep-copies per estimation run — identical
    statistics to the serial factory path for deterministic factories).
    Nested pools are avoided by forcing ``workers=1`` in shipped
    configs. Results keep referencing the caller's original design.
    """
    from repro.core.algorithm import isolate_design

    if pool is None or not pool.active or len(configs) <= 1:
        return [
            isolate_design(design, stimulus_of(), config, library)
            for config in configs
        ]
    payloads = [
        {
            "design": design,
            "stimulus": copy.deepcopy(stimulus_of()),
            "config": replace(config, workers=1),
            "library": library,
        }
        for config in configs
    ]
    results = pool.map(_isolate_style, payloads)
    for result in results:
        result.original = design  # re-bind identity lost in pickling
    return results
