"""Process-pool plumbing shared by every parallel entry point.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the three behaviours the rest of :mod:`repro.parallel` relies on:

* **Determinism** — :meth:`WorkerPool.map` returns results in payload
  order regardless of completion order, so callers merge them exactly as
  a serial loop would.
* **Graceful degradation** — any pool-infrastructure failure (a worker
  crash, a pickling problem, fork being unavailable) permanently drops
  the pool to inline execution; the reason is recorded and surfaced as
  ``fallback_reason`` in reports/stage timings, mirroring the
  compiled-engine degradation of :func:`repro.sim.engine.make_simulator`.
  Task-level :class:`~repro.errors.ReproError`\\ s are *not* pool
  failures: they propagate unchanged, as they would on any backend.
* **Accounting** — per-task busy seconds and per-map wall seconds feed
  the :class:`ParallelReport` worker-utilization numbers shown by the
  CLI's ``--json`` reports.

``workers`` semantics everywhere in the library: ``1`` means serial
(no pool), ``0`` means *auto* (one worker per available CPU), ``n > 1``
means a pool of exactly ``n`` processes. The ``REPRO_WORKERS``
environment variable supplies the default where a config leaves it
unset.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.errors import ReproError


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """Default worker count: the ``REPRO_WORKERS`` env var, else 1 (serial).

    ``REPRO_WORKERS=auto`` resolves to the machine's CPU count; CI uses
    ``REPRO_WORKERS=2`` to run whole suites under the pool.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 1
    return value if value >= 0 else 1


def resolve_workers(workers: int) -> int:
    """Map the ``workers`` knob to a concrete process count (``0`` = auto)."""
    if workers == 0:
        return available_cpus()
    if workers < 0:
        raise ReproError(f"workers must be >= 0, got {workers}")
    return workers


@dataclass
class ParallelReport:
    """Utilization record of one parallel execution."""

    workers: int
    tasks: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    fallback_reason: Optional[str] = None
    task_seconds: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool: Σ task time / (workers × wall time)."""
        denominator = self.workers * self.wall_seconds
        if denominator <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / denominator)

    def to_dict(self) -> dict:
        payload = {
            "workers": self.workers,
            "tasks": self.tasks,
            "busy_seconds": self.busy_seconds,
            "wall_seconds": self.wall_seconds,
            "utilization": self.utilization,
        }
        if self.fallback_reason is not None:
            payload["fallback_reason"] = self.fallback_reason
        return payload


def _timed_call(args):
    """Module-level worker shim: run ``fn(payload)`` and time it.

    When the parent had observability enabled at dispatch time, ``args``
    carries a capture flag and a track label: the task then runs under a
    fresh per-task recorder whose finished spans and metric snapshot ride
    back with the result, for the parent to merge in payload order. The
    same shim runs on the inline path, so serial and pooled executions
    produce structurally identical traces.
    """
    fn, payload = args[0], args[1]
    capture = args[2] if len(args) > 2 else False
    if not capture:
        start = time.perf_counter()
        value = fn(payload)
        return value, time.perf_counter() - start, None, None
    track = args[3] if len(args) > 3 else obs.MAIN_TRACK
    recorder = obs.Recorder(track=track)
    with obs.use(recorder):
        with obs.span("pool.task", "pool", track=track):
            start = time.perf_counter()
            value = fn(payload)
            seconds = time.perf_counter() - start
    return value, seconds, recorder.trace_payload(), recorder.metrics


class WorkerPool:
    """A lazily created, degradation-aware process pool.

    The executor is created on first :meth:`map` call and reused until
    :meth:`close` (cheap to keep across the iterations of
    :func:`~repro.core.algorithm.isolate_design`). After any
    infrastructure failure the pool is permanently degraded: every
    subsequent map runs inline, and :attr:`fallback_reason` records why.
    """

    def __init__(self, workers: int) -> None:
        self.workers = resolve_workers(workers)
        self.fallback_reason: Optional[str] = None
        self.tasks = 0
        self.busy_seconds = 0.0
        self.wall_seconds = 0.0
        self.task_seconds: List[float] = []
        self._executor = None

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while tasks are actually dispatched to worker processes."""
        return self.workers > 1 and self.fallback_reason is None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the executor down; a failing shutdown is recorded, not lost.

        A teardown error (e.g. a poisoned worker wedging the executor)
        lands in :attr:`fallback_reason` — and from there in
        ``StageTimings.pool_fallback_reason`` / report payloads — and
        bumps the ``pool.teardown_errors`` counter, instead of being
        silently swallowed.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception as exc:
            reason = (
                f"worker pool shutdown failed ({type(exc).__name__}: {exc})"
            )
            if self.fallback_reason is None:
                self.fallback_reason = reason
            obs.counter("pool.teardown_errors").inc()

    def __del__(self) -> None:  # belt and braces for exceptional exits
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Heal a degraded pool: clear the fallback and start fresh.

        Degradation is deliberately permanent *within* a pool lifetime
        (one crashed fork should not flap between pool and inline on
        every map); a supervisor that has reason to believe the fault
        has passed calls this to tear the old executor down, clear
        :attr:`fallback_reason`, and let the next :meth:`map` lazily
        create a new executor. Utilization accounting carries over.
        """
        self.close()
        if self.fallback_reason is not None:
            self.fallback_reason = None
            obs.counter("pool.restarts").inc()

    def pids(self) -> List[int]:
        """PIDs of the live worker processes (empty when inline/lazy).

        The chaos harness uses this to pick kill targets; operators can
        correlate them with OS-level accounting.
        """
        executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return sorted(processes.keys())

    # ------------------------------------------------------------------
    def _pool_map(self, fn: Callable, payloads: Sequence) -> List:
        """One round through the executor; raises on infrastructure faults."""
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing

        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        futures = [
            self._executor.submit(_timed_call, task) for task in self._tasks_of(fn, payloads)
        ]
        return [future.result() for future in futures]

    def _inline_map(self, fn: Callable, payloads: Sequence) -> List:
        return [_timed_call(task) for task in self._tasks_of(fn, payloads)]

    def _tasks_of(self, fn: Callable, payloads: Sequence) -> List[tuple]:
        if not obs.enabled():
            return [(fn, payload) for payload in payloads]
        base = self.tasks
        return [
            (fn, payload, True, f"task-{base + index}")
            for index, payload in enumerate(payloads)
        ]

    def map(self, fn: Callable, payloads: Sequence) -> List:
        """Run ``fn`` over ``payloads``; results come back in payload order.

        ``fn`` must be a module-level function and every payload/result
        picklable. Pool-infrastructure failures degrade this pool to
        inline execution for the rest of its life;
        :class:`~repro.errors.ReproError` raised by a task propagates.
        """
        recorder = obs.current()
        with recorder.span(
            "pool.map", "pool", tasks=len(payloads), workers=self.workers
        ) as map_span:
            start = time.perf_counter()
            if not self.active or len(payloads) <= 1:
                mode = "inline"
                outcomes = self._inline_map(fn, payloads)
            else:
                mode = "pool"
                try:
                    outcomes = self._pool_map(fn, payloads)
                except ReproError:
                    raise
                except Exception as exc:  # infrastructure failure: degrade
                    self.fallback_reason = (
                        f"worker pool failed ({type(exc).__name__}: {exc}); "
                        f"degraded to serial execution"
                    )
                    recorder.counter("pool.degradations").inc()
                    self.close()
                    mode = "inline"
                    outcomes = self._inline_map(fn, payloads)
            wall = time.perf_counter() - start
            map_span.set(mode=mode)
            self.wall_seconds += wall
            values = []
            # Outcomes arrive in payload order, so adopting each task's
            # spans here yields a deterministic merged tree no matter
            # which worker finished first.
            for value, seconds, trace_payload, task_metrics in outcomes:
                values.append(value)
                self.tasks += 1
                self.busy_seconds += seconds
                self.task_seconds.append(seconds)
                recorder.absorb(trace_payload, task_metrics)
                recorder.counter("pool.tasks", mode=mode).inc()
                recorder.histogram("pool.task_seconds").observe(seconds)
            recorder.counter("pool.maps").inc()
            recorder.gauge("pool.workers").set(self.workers)
            recorder.gauge("pool.busy_seconds_total").set(self.busy_seconds)
            recorder.gauge("pool.wall_seconds_total").set(self.wall_seconds)
            if self.workers and self.wall_seconds:
                recorder.gauge("pool.utilization").set(
                    min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))
                )
        return values

    # ------------------------------------------------------------------
    def report(self) -> ParallelReport:
        return ParallelReport(
            workers=self.workers,
            tasks=self.tasks,
            busy_seconds=self.busy_seconds,
            wall_seconds=self.wall_seconds,
            fallback_reason=self.fallback_reason,
            task_seconds=list(self.task_seconds),
        )
