"""Static timing analysis and isolation slack-impact estimation.

Operand isolation affects timing three ways (paper Section 5.1): the
isolation banks add delay on operand paths, the activation logic creates
new paths merging at the banks, and the activation logic loads the
control signals it taps. :mod:`repro.timing.sta` measures all of this
exactly on a (possibly transformed) netlist; :mod:`repro.timing.impact`
predicts it cheaply *before* a transform, which is what Algorithm 1's
slack-rejection filter uses.
"""

from repro.timing.sta import TimingReport, analyze_timing
from repro.timing.impact import IsolationTimingImpact, estimate_isolation_impact

__all__ = [
    "TimingReport",
    "analyze_timing",
    "IsolationTimingImpact",
    "estimate_isolation_impact",
]
