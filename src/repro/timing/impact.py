"""Pre-transform estimation of isolation's timing impact.

Algorithm 1 rejects a candidate *before* doing any work when isolating it
would drop its slack below a threshold. This module predicts the
post-isolation slack of a candidate from the original design's timing
report, without building the transformed netlist:

* operand paths gain one bank delay;
* the activation signal arrives at ``max(arrival of tapped control nets)
  + tree_depth · gate_delay`` and merges into the bank — it can become
  the new dominant path;
* tapped control nets see extra load (one gate input per literal).

The estimate is intentionally slightly conservative (it assumes the
worst-case activation tree depth); the exact number comes from re-running
:func:`repro.timing.sta.analyze_timing` on the transformed design, which
the benchmarks do for their reported slack columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.boolean.expr import Expr
from repro.netlist.banks import AndBank, LatchBank, OrBank
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.power.library import TechnologyLibrary
from repro.timing.sta import TimingReport

_BANK_DELAY_KIND = {"and": "andbank", "or": "orbank", "latch": "latbank"}

#: Unloaded delays for the gates an activation tree is built from; keyed
#: off the library at call time, these are only the tree-depth weights.
_ACT_GATE_DEPTH_DELAY = 0.12


@dataclass
class IsolationTimingImpact:
    """Predicted timing consequences of isolating one candidate."""

    candidate: Cell
    style: str
    bank_delay: float
    activation_arrival: float
    new_output_arrival: float
    estimated_slack: float

    def violates(self, slack_threshold: float) -> bool:
        """True if the candidate should be rejected (Algorithm 1, line 7)."""
        return self.estimated_slack < slack_threshold


def _activation_depth(expr: Expr) -> int:
    """Balanced-tree depth of the synthesized activation logic.

    A bare variable needs no gates at all (the existing control net *is*
    the activation signal); a single negated literal costs one inverter.
    """
    from repro.boolean.expr import Var

    if isinstance(expr, Var):
        return 0
    literals = max(1, expr.literal_count())
    return 1 + math.ceil(math.log2(literals)) if literals > 1 else 1


def estimate_isolation_impact(
    design: Design,
    candidate: Cell,
    activation: Expr,
    style: str,
    library: TechnologyLibrary,
    report: TimingReport,
) -> IsolationTimingImpact:
    """Predict the candidate's slack if it were isolated with ``style``."""
    bank_kind = _BANK_DELAY_KIND[style]
    probe = {"and": AndBank, "or": OrBank, "latch": LatchBank}[style]("__probe__")
    bank_delay = library.params(probe).delay_fixed

    # Activation signal arrival: tapped control nets + gate tree depth.
    from repro.netlist.bitref import parse_bitref

    support_arrival = 0.0
    for name in activation.support():
        net, _bit = parse_bitref(design, name)
        support_arrival = max(support_arrival, report.arrival.get(net, 0.0))
    act_arrival = support_arrival + _activation_depth(activation) * _ACT_GATE_DEPTH_DELAY

    # Operand arrival after the bank: max over data inputs and the AS path.
    operand_arrival = 0.0
    for pin in candidate.input_pins:
        if not pin.is_control:
            operand_arrival = max(operand_arrival, report.arrival.get(pin.net, 0.0))
    gated_arrival = max(operand_arrival, act_arrival) + bank_delay

    out_net = candidate.net("Y")
    old_out_arrival = report.arrival.get(out_net, 0.0)
    old_in_arrival = operand_arrival
    new_out_arrival = gated_arrival + (old_out_arrival - old_in_arrival)

    old_slack = report.slack(out_net)
    estimated_slack = old_slack - (new_out_arrival - old_out_arrival)
    return IsolationTimingImpact(
        candidate=candidate,
        style=style,
        bank_delay=bank_delay,
        activation_arrival=act_arrival,
        new_output_arrival=new_out_arrival,
        estimated_slack=estimated_slack,
    )
