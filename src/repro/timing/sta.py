"""Levelized static timing analysis.

Zero-skew single-clock model: every register launches at time 0 and
captures at ``clock_period``. Arrival times propagate forward through the
combinational cells in topological order (cell delay + fanout load
delay); required times propagate backward from register/PO sinks. Slack
of a net is ``required - arrival``; the design's worst slack is the
minimum over all nets with timing sinks.

Transparent latches are treated as combinational delay elements (their
worst case is the transparent phase), which is conservative and exactly
what we need for evaluating LAT isolation overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.netlist.nets import Net
from repro.netlist.ports import PrimaryOutput
from repro.netlist.traversal import combinational_order
from repro.power.library import TechnologyLibrary, default_library


@dataclass
class TimingReport:
    """Result of one STA run."""

    clock_period: float
    arrival: Dict[Net, float] = field(default_factory=dict)
    required: Dict[Net, float] = field(default_factory=dict)
    worst_slack: float = math.inf
    critical_path: List[str] = field(default_factory=list)

    def slack(self, net: Net) -> float:
        """Slack of ``net`` (inf if no timing sink is reachable)."""
        return self.required.get(net, math.inf) - self.arrival.get(net, 0.0)

    @property
    def worst_arrival(self) -> float:
        return max(self.arrival.values(), default=0.0)

    @property
    def meets_timing(self) -> bool:
        return self.worst_slack >= 0.0


def analyze_timing(
    design: Design,
    library: Optional[TechnologyLibrary] = None,
    clock_period: Optional[float] = None,
) -> TimingReport:
    """Run STA over ``design``.

    With ``clock_period=None`` the period is set to the longest path
    (zero worst slack), which gives later runs of the *same* design
    family a common reference — benchmark flows analyse the original
    design first and reuse its period for the isolated variants.
    """
    library = library or default_library()
    order = combinational_order(design)

    arrival: Dict[Net, float] = {}
    for net in design.nets:
        driver = net.driver
        if driver is None or driver.cell.is_sequential or driver.cell.kind in ("pi", "const"):
            arrival[net] = 0.0

    for cell in order:
        in_arrival = max(
            (arrival[pin.net] for pin in cell.input_pins), default=0.0
        )
        for pin in cell.output_pins:
            arrival[pin.net] = (
                in_arrival + library.delay(cell) + library.load_delay(pin.net)
            )

    # Collect sink nets (register inputs, PO nets).
    sink_nets: List[Net] = []
    for cell in design.cells:
        if cell.is_sequential:
            sink_nets.extend(pin.net for pin in cell.input_pins)
        elif isinstance(cell, PrimaryOutput):
            sink_nets.append(cell.net("A"))

    if clock_period is None:
        clock_period = max((arrival.get(net, 0.0) for net in sink_nets), default=0.0)
    if clock_period < 0:
        raise TimingError(f"clock period must be non-negative, got {clock_period}")

    required: Dict[Net, float] = {}
    for net in sink_nets:
        required[net] = min(required.get(net, math.inf), clock_period)
    for cell in reversed(order):
        out_required = min(
            (
                required.get(pin.net, math.inf) - library.load_delay(pin.net)
                for pin in cell.output_pins
            ),
            default=math.inf,
        )
        if math.isinf(out_required):
            continue
        in_required = out_required - library.delay(cell)
        for pin in cell.input_pins:
            required[pin.net] = min(required.get(pin.net, math.inf), in_required)

    report = TimingReport(
        clock_period=clock_period, arrival=arrival, required=required
    )
    worst_net: Optional[Net] = None
    worst = math.inf
    for net in required:
        slack = required[net] - arrival.get(net, 0.0)
        if slack < worst:
            worst = slack
            worst_net = net
    report.worst_slack = worst if worst_net is not None else clock_period
    if worst_net is not None:
        report.critical_path = _trace_critical_path(worst_net, arrival)
    return report


def _trace_critical_path(net: Net, arrival: Dict[Net, float]) -> List[str]:
    """Walk backward along maximal-arrival inputs from ``net``."""
    path = [net.name]
    current = net
    for _ in range(10_000):  # cycle guard; combinational logic is a DAG
        driver = current.driver
        if driver is None or driver.cell.is_sequential or driver.cell.kind in (
            "pi",
            "const",
        ):
            break
        pins = driver.cell.input_pins
        if not pins:
            break
        current = max(pins, key=lambda pin: arrival.get(pin.net, 0.0)).net
        path.append(current.name)
    path.reverse()
    return path
