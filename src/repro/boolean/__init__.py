"""Boolean function substrate.

Activation functions (paper Section 3) and multiplexing functions
(Section 4.1) are Boolean functions over one-bit control nets. This
package provides:

* :mod:`repro.boolean.expr` — immutable expression trees in factored
  form, with smart constructors that fold constants and flatten;
* :mod:`repro.boolean.simplify` — algebraic simplification (absorption,
  complementation, idempotence);
* :mod:`repro.boolean.bdd` — a reduced ordered BDD package for canonical
  comparison and exact probability evaluation;
* :mod:`repro.boolean.probability` — signal probabilities of expressions;
* :mod:`repro.boolean.synth` — mapping expressions onto netlist gates
  (the *activation logic* of the paper).
"""

from repro.boolean.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    and_,
    not_,
    or_,
    var,
)
from repro.boolean.simplify import simplify
from repro.boolean.bdd import BddManager
from repro.boolean.probability import probability_bounds, signal_probability
from repro.boolean.synth import synthesize_expression

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "var",
    "not_",
    "and_",
    "or_",
    "simplify",
    "BddManager",
    "signal_probability",
    "probability_bounds",
    "synthesize_expression",
]
