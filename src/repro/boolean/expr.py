"""Immutable Boolean expression trees (factored form).

Expressions are built with the smart constructors :func:`var`,
:func:`not_`, :func:`and_` and :func:`or_`, which perform cheap local
normalisation: constant folding, flattening of nested conjunctions/
disjunctions, duplicate removal, and complement detection (``x·x̄ = 0``,
``x + x̄ = 1``). The resulting trees are hashable and structurally
comparable, and their :meth:`Expr.literal_count` is the paper's area
proxy for activation logic (Section 5.1: "the literal count of the
activation function, which by construction is given in factored form").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple


class Expr:
    """Base class of all Boolean expression nodes."""

    __slots__ = ()

    # -- queries --------------------------------------------------------
    def support(self) -> FrozenSet[str]:
        """Names of all variables appearing in the expression."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int]) -> bool:
        """Evaluate under an assignment of truth values to variables.

        ``env`` maps variable names to ints/bools; missing variables
        raise ``KeyError`` (callers must supply the full support).
        """
        raise NotImplementedError

    def literal_count(self) -> int:
        """Number of literal occurrences (factored-form area proxy)."""
        raise NotImplementedError

    # -- transforms -----------------------------------------------------
    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Replace variables by expressions (simultaneous substitution)."""
        raise NotImplementedError

    def cofactor(self, name: str, value: bool) -> "Expr":
        """Shannon cofactor with respect to ``name = value``."""
        return self.substitute({name: TRUE if value else FALSE})

    # -- operators ------------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return and_(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return or_(self, other)

    def __invert__(self) -> "Expr":
        return not_(self)

    @property
    def is_true(self) -> bool:
        return isinstance(self, Const) and self.value

    @property
    def is_false(self) -> bool:
        return isinstance(self, Const) and not self.value


class Const(Expr):
    """The constants 0 and 1."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Const is immutable")

    def __reduce__(self):
        # Slotted immutable nodes need explicit pickling support (the
        # default protocol restores state via the blocked __setattr__);
        # expressions cross process boundaries in repro.parallel.
        return (Const, (self.value,))

    def support(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return self.value

    def literal_count(self) -> int:
        return 0

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return "1" if self.value else "0"


TRUE = Const(True)
FALSE = Const(False)


class Var(Expr):
    """A Boolean variable, named after the control net it samples."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Var is immutable")

    def __reduce__(self):
        return (Var, (self.name,))

    def support(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return bool(env[self.name])

    def literal_count(self) -> int:
        return 1

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return self.name


class Not(Expr):
    """Negation. The smart constructor guarantees the child is not a
    constant and not another negation."""

    __slots__ = ("child",)

    def __init__(self, child: Expr) -> None:
        object.__setattr__(self, "child", child)

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Not is immutable")

    def __reduce__(self):
        return (Not, (self.child,))

    def support(self) -> FrozenSet[str]:
        return self.child.support()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return not self.child.evaluate(env)

    def literal_count(self) -> int:
        return self.child.literal_count()

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return not_(self.child.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        return hash(("not", self.child))

    def __repr__(self) -> str:
        if isinstance(self.child, Var):
            return f"!{self.child!r}"
        return f"!({self.child!r})"


class _NaryOp(Expr):
    """Shared implementation of n-ary AND / OR."""

    __slots__ = ("args",)
    _identity: bool
    _symbol: str

    def __init__(self, args: Tuple[Expr, ...]) -> None:
        object.__setattr__(self, "args", args)

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("expression nodes are immutable")

    def __reduce__(self):
        return (type(self), (self.args,))

    def support(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for arg in self.args:
            result |= arg.support()
        return result

    def literal_count(self) -> int:
        return sum(arg.literal_count() for arg in self.args)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.args == other.args

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.args))

    def __repr__(self) -> str:
        parts = []
        for arg in self.args:
            text = repr(arg)
            if isinstance(arg, _NaryOp):
                text = f"({text})"
            parts.append(text)
        return self._symbol.join(parts)


class And(_NaryOp):
    """Conjunction of two or more factors."""

    __slots__ = ()
    _identity = True
    _symbol = "*"

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return all(arg.evaluate(env) for arg in self.args)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return and_(*(arg.substitute(mapping) for arg in self.args))


class Or(_NaryOp):
    """Disjunction of two or more terms."""

    __slots__ = ()
    _identity = False
    _symbol = " + "

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return any(arg.evaluate(env) for arg in self.args)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return or_(*(arg.substitute(mapping) for arg in self.args))


# ----------------------------------------------------------------------
# Smart constructors
# ----------------------------------------------------------------------
def var(name: str) -> Var:
    """A variable literal."""
    return Var(name)


def not_(operand: Expr) -> Expr:
    """Negation with double-negation and constant elimination."""
    if isinstance(operand, Const):
        return FALSE if operand.value else TRUE
    if isinstance(operand, Not):
        return operand.child
    return Not(operand)


def _flatten(cls: type, operands: Iterable[Expr]) -> Tuple[Expr, ...]:
    flat = []
    for operand in operands:
        if isinstance(operand, cls):
            flat.extend(operand.args)
        else:
            flat.append(operand)
    return tuple(flat)


def _normalise(
    cls: type, annihilator: Const, identity: Const, operands: Iterable[Expr]
) -> Expr:
    seen: Dict[Expr, None] = {}
    for operand in _flatten(cls, operands):
        if operand == annihilator:
            return annihilator
        if operand == identity:
            continue
        if operand not in seen:
            seen[operand] = None
    unique = tuple(seen)
    for operand in unique:
        if not_(operand) in seen:
            return annihilator
    if not unique:
        return identity
    if len(unique) == 1:
        return unique[0]
    return cls(unique)


def and_(*operands: Expr) -> Expr:
    """Conjunction with folding: ``and_()`` is 1, absorbing 0, x·x̄ = 0."""
    return _normalise(And, FALSE, TRUE, operands)


def or_(*operands: Expr) -> Expr:
    """Disjunction with folding: ``or_()`` is 0, absorbing 1, x + x̄ = 1."""
    return _normalise(Or, TRUE, FALSE, operands)
