"""A compact reduced ordered binary decision diagram (ROBDD) package.

Used for two things the expression layer cannot do reliably:

* canonical equivalence / tautology checks (e.g. verifying that
  simplification and isolation rewrites preserve activation functions);
* exact probability evaluation under variable independence
  (:meth:`BddManager.probability`), which seeds the savings model before
  any simulation data exists.

Nodes are integers indexing into the manager's node table; 0 and 1 are
the terminals. The variable order is the order of first use, extendable
with :meth:`BddManager.declare`.

BDD size is worst-case exponential in the variable count, so a manager
accepts an optional **node-count budget** (``max_nodes``): once the node
table would grow past it, every further node creation raises
:class:`~repro.errors.BudgetExceededError` instead of consuming
unbounded memory/time. Callers that can tolerate approximation fall
back to factored-form probability bounds
(:func:`repro.boolean.probability.probability_bounds`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.boolean.expr import And, Const, Expr, Not, Or, Var
from repro.errors import BooleanError, BudgetExceededError

_Node = int


class BddManager:
    """Owns the node table, unique table and operation caches.

    Parameters
    ----------
    max_nodes:
        Optional budget on the total node-table size (terminals
        included). ``None`` (default) means unbounded, matching the
        historical behaviour.
    """

    FALSE: _Node = 0
    TRUE: _Node = 1

    def __init__(self, max_nodes: Optional[int] = None) -> None:
        if max_nodes is not None and max_nodes < 2:
            raise BooleanError(
                f"max_nodes must allow at least the two terminals, got {max_nodes}"
            )
        self.max_nodes = max_nodes
        # Node table: index -> (level, low, high). Terminals get a level
        # beyond every variable.
        self._nodes: List[Tuple[int, _Node, _Node]] = [
            (1 << 30, 0, 0),
            (1 << 30, 1, 1),
        ]
        self._unique: Dict[Tuple[int, _Node, _Node], _Node] = {}
        self._ite_cache: Dict[Tuple[_Node, _Node, _Node], _Node] = {}
        self._var_level: Dict[str, int] = {}
        self._level_var: List[str] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def declare(self, name: str) -> _Node:
        """Ensure ``name`` has a level; return its positive-literal node."""
        if name not in self._var_level:
            self._var_level[name] = len(self._level_var)
            self._level_var.append(name)
        level = self._var_level[name]
        return self._mk(level, self.FALSE, self.TRUE)

    @property
    def variables(self) -> List[str]:
        return list(self._level_var)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: _Node, high: _Node) -> _Node:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if self.max_nodes is not None and len(self._nodes) >= self.max_nodes:
                obs.counter("bdd.budget_hits").inc()
                raise BudgetExceededError(
                    f"BDD node budget exhausted: {len(self._nodes)} nodes "
                    f"(budget {self.max_nodes}); use a larger budget or an "
                    f"approximate fallback",
                    budget=self.max_nodes,
                    used=len(self._nodes),
                )
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _level(self, node: _Node) -> int:
        return self._nodes[node][0]

    def _cofactors(self, node: _Node, level: int) -> Tuple[_Node, _Node]:
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    def ite(self, cond: _Node, then: _Node, other: _Node) -> _Node:
        """If-then-else — the universal BDD operation."""
        if cond == self.TRUE:
            return then
        if cond == self.FALSE:
            return other
        if then == other:
            return then
        if then == self.TRUE and other == self.FALSE:
            return cond
        key = (cond, then, other)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(cond), self._level(then), self._level(other))
        c0, c1 = self._cofactors(cond, level)
        t0, t1 = self._cofactors(then, level)
        e0, e1 = self._cofactors(other, level)
        result = self._mk(level, self.ite(c0, t0, e0), self.ite(c1, t1, e1))
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def apply_and(self, a: _Node, b: _Node) -> _Node:
        return self.ite(a, b, self.FALSE)

    def apply_or(self, a: _Node, b: _Node) -> _Node:
        return self.ite(a, self.TRUE, b)

    def apply_xor(self, a: _Node, b: _Node) -> _Node:
        return self.ite(a, self.apply_not(b), b)

    def apply_not(self, a: _Node) -> _Node:
        return self.ite(a, self.FALSE, self.TRUE)

    # ------------------------------------------------------------------
    # Expression bridge
    # ------------------------------------------------------------------
    def from_expr(self, expr: Expr) -> _Node:
        """Compile an expression tree into a BDD node."""
        if isinstance(expr, Const):
            return self.TRUE if expr.value else self.FALSE
        if isinstance(expr, Var):
            return self.declare(expr.name)
        if isinstance(expr, Not):
            return self.apply_not(self.from_expr(expr.child))
        if isinstance(expr, And):
            node = self.TRUE
            for arg in expr.args:
                node = self.apply_and(node, self.from_expr(arg))
            return node
        if isinstance(expr, Or):
            node = self.FALSE
            for arg in expr.args:
                node = self.apply_or(node, self.from_expr(arg))
            return node
        raise BooleanError(f"cannot compile {type(expr).__name__} to a BDD")

    def equivalent(self, a: Expr, b: Expr) -> bool:
        """Canonical equivalence check of two expressions."""
        result = self.from_expr(a) == self.from_expr(b)
        obs.gauge("bdd.nodes").set(len(self._nodes))
        return result

    def is_tautology(self, expr: Expr) -> bool:
        result = self.from_expr(expr) == self.TRUE
        obs.gauge("bdd.nodes").set(len(self._nodes))
        return result

    def is_contradiction(self, expr: Expr) -> bool:
        return self.from_expr(expr) == self.FALSE

    def implies(self, a: Expr, b: Expr) -> bool:
        """True iff ``a → b`` is a tautology."""
        na, nb = self.from_expr(a), self.from_expr(b)
        return self.apply_and(na, self.apply_not(nb)) == self.FALSE

    # ------------------------------------------------------------------
    # Quantitative queries
    # ------------------------------------------------------------------
    def probability(self, node: _Node, probs: Mapping[str, float]) -> float:
        """Pr[f = 1] assuming independent variables with given one-probs.

        Variables missing from ``probs`` default to 0.5.
        """
        cache: Dict[_Node, float] = {self.FALSE: 0.0, self.TRUE: 1.0}

        def walk(n: _Node) -> float:
            if n in cache:
                return cache[n]
            level, low, high = self._nodes[n]
            p = probs.get(self._level_var[level], 0.5)
            result = (1.0 - p) * walk(low) + p * walk(high)
            cache[n] = result
            return result

        return walk(node)

    def expr_probability(self, expr: Expr, probs: Mapping[str, float]) -> float:
        return self.probability(self.from_expr(expr), probs)

    def count_nodes(self, node: _Node) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in (self.FALSE, self.TRUE) or current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return len(seen)
