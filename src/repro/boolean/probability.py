"""Signal probabilities of Boolean expressions.

:func:`signal_probability` gives the exact probability that an expression
evaluates to 1 when its variables are independent with known one-
probabilities — computed on a BDD, so reconvergent fanout inside the
expression (the same variable appearing several times) is handled
exactly.

Exact BDD evaluation is worst-case exponential in the variable count, so
a node budget (``max_nodes``) may be supplied: when the BDD blows past
it, :func:`signal_probability` degrades gracefully to the midpoint of
:func:`probability_bounds`, a linear-time Fréchet-style interval
propagation over the factored expression that is guaranteed to bracket
the exact probability.

This is the *analytical* fallback; the paper measures probabilities such
as ``Pr(AS_i · AS_j · g)`` during simulation precisely because control
signals are usually *not* independent. The simulation-measured
counterpart lives in :mod:`repro.sim.probes`.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Optional, Tuple

from repro import obs
from repro.boolean.bdd import BddManager
from repro.boolean.expr import And, Const, Expr, Not, Or, Var
from repro.boolean.factored import factor
from repro.errors import BooleanError, BudgetExceededError


def probability_bounds(
    expr: Expr,
    probs: Optional[Mapping[str, float]] = None,
) -> Tuple[float, float]:
    """Guaranteed ``(low, high)`` bounds on Pr[expr = 1].

    Uses Fréchet inequalities propagated bottom-up over the factored
    expression, which costs linear time in the expression size instead
    of the worst-case exponential BDD build:

    * ``And(a₁..aₙ)`` → ``[max(0, Σpᵢ − (n−1)), min pᵢ]``
    * ``Or(a₁..aₙ)``  → ``[max pᵢ, min(1, Σpᵢ)]``
    * ``Not(a)``      → ``[1 − high, 1 − low]``

    The bounds hold for *any* dependence structure between subterms, so
    in particular for the independent-variable model used by
    :func:`signal_probability`; they are loose where the same variable
    reconverges. Factoring first (:func:`repro.boolean.factored.factor`)
    shares common literals and tightens the interval. Variables missing
    from ``probs`` default to 0.5.
    """
    probs = probs or {}

    def walk(node: Expr) -> Tuple[float, float]:
        if isinstance(node, Const):
            p = 1.0 if node.value else 0.0
            return (p, p)
        if isinstance(node, Var):
            p = probs.get(node.name, 0.5)
            return (p, p)
        if isinstance(node, Not):
            low, high = walk(node.child)
            return (1.0 - high, 1.0 - low)
        if isinstance(node, And):
            bounds = [walk(arg) for arg in node.args]
            low = max(0.0, sum(b[0] for b in bounds) - (len(bounds) - 1))
            high = min(b[1] for b in bounds)
            return (low, max(low, high))
        if isinstance(node, Or):
            bounds = [walk(arg) for arg in node.args]
            low = max(b[0] for b in bounds)
            high = min(1.0, sum(b[1] for b in bounds))
            return (min(low, high), high)
        raise BooleanError(
            f"cannot bound probability of {type(node).__name__} node"
        )

    return walk(factor(expr))


def signal_probability(
    expr: Expr,
    probs: Optional[Mapping[str, float]] = None,
    manager: Optional[BddManager] = None,
    max_nodes: Optional[int] = None,
) -> float:
    """Pr[expr = 1] under variable independence.

    Parameters
    ----------
    probs:
        One-probability per variable name; missing names default to 0.5.
    manager:
        Reuse an existing :class:`BddManager` (helpful when evaluating
        many expressions over the same control signals).
    max_nodes:
        Optional BDD node budget. When the exact computation exceeds it
        (raising :class:`~repro.errors.BudgetExceededError` internally),
        the result degrades to the midpoint of
        :func:`probability_bounds` and a :class:`RuntimeWarning` is
        emitted. Without a budget the computation is exact but may be
        exponential in the variable count.
    """
    if manager is None:
        manager = BddManager(max_nodes=max_nodes)
    try:
        return manager.expr_probability(expr, probs or {})
    except BudgetExceededError as exc:
        obs.counter("bdd.probability_fallbacks").inc()
        low, high = probability_bounds(expr, probs)
        warnings.warn(
            f"signal_probability fell back to interval bounds "
            f"[{low:.4f}, {high:.4f}] after the BDD budget was exceeded "
            f"({exc.used}/{exc.budget} nodes)",
            RuntimeWarning,
            stacklevel=2,
        )
        return (low + high) / 2.0
