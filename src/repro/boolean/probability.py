"""Signal probabilities of Boolean expressions.

:func:`signal_probability` gives the exact probability that an expression
evaluates to 1 when its variables are independent with known one-
probabilities — computed on a BDD, so reconvergent fanout inside the
expression (the same variable appearing several times) is handled
exactly.

This is the *analytical* fallback; the paper measures probabilities such
as ``Pr(AS_i · AS_j · g)`` during simulation precisely because control
signals are usually *not* independent. The simulation-measured
counterpart lives in :mod:`repro.sim.probes`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.boolean.bdd import BddManager
from repro.boolean.expr import Expr


def signal_probability(
    expr: Expr,
    probs: Optional[Mapping[str, float]] = None,
    manager: Optional[BddManager] = None,
) -> float:
    """Exact Pr[expr = 1] under variable independence.

    Parameters
    ----------
    probs:
        One-probability per variable name; missing names default to 0.5.
    manager:
        Reuse an existing :class:`BddManager` (helpful when evaluating
        many expressions over the same control signals).
    """
    manager = manager or BddManager()
    return manager.expr_probability(expr, probs or {})
