"""Algebraic simplification of Boolean expressions.

The smart constructors in :mod:`repro.boolean.expr` already fold constants
and flatten; :func:`simplify` adds the classic factored-form cleanups that
matter for activation-logic area:

* **absorption** — ``x + x·y = x`` and ``x·(x + y) = x``;
* **subsumption between terms** — a term of an OR that implies another
  term is dropped (``a·b + a·b·c = a·b``); dual for AND;
* **single-literal unit simplification** — inside ``x·f``, occurrences of
  ``x`` in ``f`` are replaced by 1 (and ``x̄`` by 0); dual for OR.

The routine runs to a fixed point. It is deliberately not a full
minimiser (the paper only assumes a factored form); BDD-based checks in
:mod:`repro.boolean.bdd` guarantee we never change the function.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from repro.boolean.expr import And, Const, Expr, Not, Or, Var, and_, not_, or_


def _literals(term: Expr) -> FrozenSet[Expr]:
    """The literal factors of a product term (or the term itself)."""
    if isinstance(term, And):
        return frozenset(term.args)
    return frozenset((term,))


def _drop_subsumed(args: Tuple[Expr, ...], outer_is_or: bool) -> Tuple[Expr, ...]:
    """Remove OR terms subsumed by shorter ones (dually for AND).

    In an OR, term T1 subsumes T2 when literals(T1) ⊆ literals(T2): then
    T2 is redundant. In an AND the subset relation keeps the *larger*
    factor... dually, a factor whose literal set is a superset of another
    factor's is the redundant one as well, so the same rule applies.
    """
    literal_sets = [_literals(arg) for arg in args]
    keep = []
    for i, arg in enumerate(args):
        subsumed = False
        for j, other in enumerate(args):
            if i == j:
                continue
            if literal_sets[j] < literal_sets[i]:
                subsumed = True
                break
            if literal_sets[j] == literal_sets[i] and j < i:
                subsumed = True
                break
        if not subsumed:
            keep.append(arg)
    return tuple(keep)


def _propagate_literal(expr: Expr, literal: Expr, value: bool) -> Expr:
    """Replace occurrences of ``literal`` in ``expr`` by ``value``.

    Handles positive and negative literals (``x`` / ``x̄``).
    """
    if expr == literal:
        from repro.boolean.expr import FALSE, TRUE

        return TRUE if value else FALSE
    if isinstance(expr, Not) and expr.child == literal:
        from repro.boolean.expr import FALSE, TRUE

        return FALSE if value else TRUE
    if isinstance(expr, And):
        return and_(*(_propagate_literal(a, literal, value) for a in expr.args))
    if isinstance(expr, Or):
        return or_(*(_propagate_literal(a, literal, value) for a in expr.args))
    if isinstance(expr, Not):
        return not_(_propagate_literal(expr.child, literal, value))
    return expr


def _is_literal(expr: Expr) -> bool:
    return isinstance(expr, Var) or (isinstance(expr, Not) and isinstance(expr.child, Var))


def _simplify_once(expr: Expr) -> Expr:
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        return not_(_simplify_once(expr.child))
    if isinstance(expr, (And, Or)):
        is_or = isinstance(expr, Or)
        args = tuple(_simplify_once(a) for a in expr.args)
        rebuilt = or_(*args) if is_or else and_(*args)
        if not isinstance(rebuilt, (And, Or)):
            return rebuilt
        args = _drop_subsumed(rebuilt.args, is_or)
        # Unit propagation: literal factors fix their value inside siblings.
        unit_literals = [a for a in args if _is_literal(a)]
        if unit_literals:
            fixed_value = not is_or  # x·f -> x is 1 inside f; x + f -> x is 0
            new_args = []
            for arg in args:
                if _is_literal(arg):
                    new_args.append(arg)
                    continue
                for lit in unit_literals:
                    base = lit.child if isinstance(lit, Not) else lit
                    positive = not isinstance(lit, Not)
                    arg = _propagate_literal(arg, base, positive == fixed_value)
                new_args.append(arg)
            args = tuple(new_args)
        return or_(*args) if is_or else and_(*args)
    return expr


def simplify(expr: Expr, max_passes: int = 8) -> Expr:
    """Simplify ``expr`` to a fixed point (bounded by ``max_passes``)."""
    current = expr
    for _ in range(max_passes):
        reduced = _simplify_once(current)
        if reduced == current:
            return reduced
        current = reduced
    return current
