"""Factoring: reducing the literal count of activation functions.

The paper implements activation logic "either [as] a direct
implementation or an optimized version thereof" and uses the factored-
form literal count as its area proxy. This module provides classic
algebraic factoring — literal/cube division in the style of Brayton's
quick_factor — so multi-term activation functions synthesize into fewer
gates.

Example: ``a·b·c + a·b·d + e`` factors to ``a·b·(c + d) + e`` — five
literals instead of seven.

Factoring never changes the function (property-tested against BDDs); it
only restructures the tree, so :func:`factor` can be applied to any
activation function right before synthesis.
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, List, Optional, Tuple

from repro.boolean.expr import And, Const, Expr, Not, Or, Var, and_, not_, or_
from repro.boolean.simplify import simplify


def _is_literal(expr: Expr) -> bool:
    return isinstance(expr, Var) or (
        isinstance(expr, Not) and isinstance(expr.child, Var)
    )


def _cubes(expr: Expr) -> Optional[List[FrozenSet[Expr]]]:
    """View an expression as a sum of cubes (sets of literals).

    Returns None when the expression is not in simple SOP shape (deeply
    nested factors are left alone — they are already factored).
    """
    if _is_literal(expr):
        return [frozenset((expr,))]
    if isinstance(expr, And):
        if all(_is_literal(arg) for arg in expr.args):
            return [frozenset(expr.args)]
        return None
    if isinstance(expr, Or):
        cubes: List[FrozenSet[Expr]] = []
        for term in expr.args:
            sub = _cubes(term)
            if sub is None or len(sub) != 1:
                return None
            cubes.extend(sub)
        return cubes
    return None


def _rebuild(cube: FrozenSet[Expr]) -> Expr:
    return and_(*sorted(cube, key=repr))


def _most_common_literal(cubes: List[FrozenSet[Expr]]) -> Optional[Expr]:
    counts: Counter = Counter()
    for cube in cubes:
        for literal in cube:
            counts[literal] += 1
    if not counts:
        return None
    literal, count = counts.most_common(1)[0]
    return literal if count >= 2 else None


def _factor_cubes(cubes: List[FrozenSet[Expr]]) -> Expr:
    """Recursive literal-division factoring of a cube list."""
    if not cubes:
        from repro.boolean.expr import FALSE

        return FALSE
    if len(cubes) == 1:
        return _rebuild(cubes[0])
    divisor = _most_common_literal(cubes)
    if divisor is None:
        return or_(*(_rebuild(cube) for cube in cubes))
    quotient = [cube - {divisor} for cube in cubes if divisor in cube]
    remainder = [cube for cube in cubes if divisor not in cube]
    # If dividing leaves an empty cube, the divisor absorbs those terms
    # entirely: d + d·x = d — handled by the smart constructors below.
    quotient_expr = _factor_cubes([c for c in quotient if c]) if any(quotient) else None
    if any(not c for c in quotient):
        factored = divisor  # divisor alone appears as a term
    elif quotient_expr is not None:
        factored = and_(divisor, quotient_expr)
    else:
        factored = divisor
    if remainder:
        return or_(factored, _factor_cubes(remainder))
    return factored


def factor(expr: Expr) -> Expr:
    """Algebraically factor ``expr``; returns it unchanged if not SOP.

    The result computes the same function with a literal count no larger
    than the input's.
    """
    simplified = simplify(expr)
    cubes = _cubes(simplified)
    if cubes is None:
        return simplified
    factored = _factor_cubes(cubes)
    if factored.literal_count() <= simplified.literal_count():
        return factored
    return simplified
