"""Synthesis of Boolean expressions into netlist gates.

This implements the paper's *activation logic*: "either a direct
implementation or an optimized version" of the activation function. The
mapper builds balanced binary AND/OR trees and inverters over one-bit
control nets, sharing structurally identical subexpressions so that e.g.
``S2·G1 + S̄0·S1·G0`` costs one inverter, three ANDs and one OR.

The returned :class:`SynthesisResult` records the created cells so cost
models can attribute their area/power to the isolation transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.boolean.expr import And, Const, Expr, Not, Or, Var
from repro.errors import BooleanError
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.netlist.logic import AndGate, NotGate, OrGate
from repro.netlist.nets import Net
from repro.netlist.ports import Constant


@dataclass
class SynthesisResult:
    """Outcome of mapping one expression onto gates."""

    output: Net
    cells: List[Cell] = field(default_factory=list)

    @property
    def gate_count(self) -> int:
        return len(self.cells)


class ExpressionSynthesizer:
    """Maps expressions into a design, sharing common subexpressions.

    One synthesizer instance may be reused for several expressions over
    the same design (its memo table then shares logic *between*
    activation functions too, as a real synthesis flow would).
    """

    def __init__(
        self,
        design: Design,
        variable_nets: Mapping[str, Net],
        name_prefix: str = "act",
    ) -> None:
        self.design = design
        self.variable_nets = dict(variable_nets)
        self.name_prefix = name_prefix
        self._memo: Dict[Expr, Net] = {}
        # Net-level CSE: n-ary operators are flattened in expression form,
        # so a shared a·b inside a·b·c is only recoverable at the gate
        # level — memoize each emitted (gate, operand nets) combination.
        self._gate_memo: Dict[tuple, Net] = {}
        self.created_cells: List[Cell] = []

    # ------------------------------------------------------------------
    def synthesize(self, expr: Expr) -> SynthesisResult:
        """Map ``expr``; returns its output net and the new cells."""
        created_before = len(self.created_cells)
        output = self._emit(expr)
        return SynthesisResult(
            output=output, cells=self.created_cells[created_before:]
        )

    # ------------------------------------------------------------------
    def _emit(self, expr: Expr) -> Net:
        memoised = self._memo.get(expr)
        if memoised is not None:
            return memoised
        if isinstance(expr, Var):
            try:
                net = self.variable_nets[expr.name]
            except KeyError:
                raise BooleanError(
                    f"no net bound for activation variable {expr.name!r}"
                ) from None
            if net.width != 1:
                raise BooleanError(
                    f"activation variable {expr.name!r} is bound to a "
                    f"{net.width}-bit net; control nets must be one bit"
                )
        elif isinstance(expr, Const):
            net = self._emit_const(expr.value)
        elif isinstance(expr, Not):
            net = self._emit_gate(NotGate, [self._emit(expr.child)])
        elif isinstance(expr, (And, Or)):
            gate = AndGate if isinstance(expr, And) else OrGate
            nets = [self._emit(arg) for arg in expr.args]
            net = self._reduce_tree(gate, nets)
        else:
            raise BooleanError(f"cannot synthesize {type(expr).__name__}")
        self._memo[expr] = net
        return net

    def _emit_const(self, value: bool) -> Net:
        name = self.design.fresh_cell_name(f"{self.name_prefix}_const")
        cell = self.design.add_cell(Constant(name, int(value)))
        net = self.design.add_net(self.design.fresh_net_name(name), 1)
        self.design.connect(cell, "Y", net)
        self.created_cells.append(cell)
        return net

    def _emit_gate(self, gate_cls: type, inputs: Sequence[Net]) -> Net:
        key = (gate_cls.kind,) + tuple(sorted(id(net) for net in inputs))
        cached = self._gate_memo.get(key)
        if cached is not None:
            return cached
        name = self.design.fresh_cell_name(f"{self.name_prefix}_{gate_cls.kind}")
        cell = self.design.add_cell(gate_cls(name))
        ports = ["A", "B"] if len(inputs) == 2 else ["A"]
        for port, net in zip(ports, inputs):
            self.design.connect(cell, port, net)
        out = self.design.add_net(self.design.fresh_net_name(name), 1)
        self.design.connect(cell, "Y", out)
        self.created_cells.append(cell)
        self._gate_memo[key] = out
        return out

    def _reduce_tree(self, gate_cls: type, nets: List[Net]) -> Net:
        """Balanced binary reduction of >= 2 operand nets."""
        layer = list(nets)
        while len(layer) > 1:
            next_layer = []
            for i in range(0, len(layer) - 1, 2):
                next_layer.append(self._emit_gate(gate_cls, layer[i : i + 2]))
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        return layer[0]


def synthesize_expression(
    design: Design,
    expr: Expr,
    variable_nets: Mapping[str, Net],
    name_prefix: str = "act",
) -> SynthesisResult:
    """One-shot convenience wrapper around :class:`ExpressionSynthesizer`."""
    return ExpressionSynthesizer(design, variable_nets, name_prefix).synthesize(expr)
