"""Derivation of activation functions (paper Section 3).

The activation function ``f_c`` of a module ``c`` evaluates to 1 exactly
when ``c`` performs a **non-redundant** computation — its result is
observable somewhere downstream. We compute ``f_c`` by a structural
observability traversal of the transitive fanout of ``c``'s output,
confined to the module's combinational block:

* a net feeding a **primary output** is always observed (condition 1);
* a net feeding a **register D input** is observed iff the register
  loads: condition ``G`` (its enable), with the register's own
  forward-looking activation ``f_r⁺`` *defined constant 1* — the paper's
  key simplification that avoids cross-cycle look-ahead and FSM analysis
  and makes the whole derivation O(|V|+|E|);
* through a **multiplexor data input** ``Dk``: the select condition
  ``S == k`` AND the mux output's activation;
* through a **gate**: the side inputs at non-controlling values (the
  "degenerated multiplexor" view) AND the gate output's activation —
  conservatively 1 when the side inputs are not one-bit control nets;
* through a **transparent latch / isolation bank**: its gate/enable AND
  the output's activation (this is what makes re-derivation compose
  across isolation iterations);
* through another **arithmetic module**: that module's own activation
  function (toggles at its inputs are assumed observable at its output),
  exactly reproducing the paper's ``f_a1 = S2·G1 + S̄0·S1·f_a0`` chain;
* any **control pin** (mux select, register/latch/bank enable) makes the
  net unconditionally observed: steering a decision is a use.

Conservatism note: every approximation above errs toward *more*
observability (f = 1), never less — so isolation driven by these
functions can lose savings but can never block a needed computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.boolean.expr import TRUE, Expr, and_, not_, or_, var
from repro.boolean.simplify import simplify
from repro.errors import IsolationError
from repro.netlist.banks import _BankBase
from repro.netlist.cells import Cell, Pin
from repro.netlist.design import Design
from repro.netlist.logic import BitSelect, Buffer, Gate2, Mux, NotGate
from repro.netlist.nets import Net
from repro.netlist.bitref import format_bitref
from repro.netlist.ports import PrimaryOutput
from repro.netlist.seq import Register, TransparentLatch


def select_condition(mux: Mux, index: int) -> Expr:
    """Boolean condition under which ``mux`` steers input ``Dindex``.

    For a one-bit select this is ``S`` / ``S̄``; for wider selects it is
    the product over select bits of the binary encoding of ``index``
    (values beyond ``n_inputs - 1`` wrap in simulation, but no condition
    is generated for them — conservatively those cycles count as
    unobserved only if no generated condition holds, which over-blocks
    never: see module docstring).
    """
    select_net = mux.net("S")
    factors: List[Expr] = []
    for bit in range(select_net.width):
        literal = var(format_bitref(select_net, bit if select_net.width > 1 else None))
        if (index >> bit) & 1:
            factors.append(literal)
        else:
            factors.append(not_(literal))
    return and_(*factors)


def enable_condition(cell: Cell, port: str) -> Expr:
    """Condition expression for a one-bit enable/gate net on ``cell.port``."""
    net = cell.net(port)
    return var(format_bitref(net))


def gate_side_condition(gate: Gate2, port: str) -> Expr:
    """Observability of ``gate.port`` through the other input.

    AND-like gates need the side input at 1, OR-like at 0, XOR-like are
    always transparent. Expressible only when the side input is a one-bit
    net; otherwise conservatively 1.
    """
    if gate.CONTROLLING is None:
        return TRUE
    conditions: List[Expr] = []
    for side in gate.side_ports(port):
        side_net = gate.net(side)
        if side_net.width != 1:
            return TRUE
        literal = var(format_bitref(side_net))
        # Observable when the side input is at the NON-controlling value.
        conditions.append(not_(literal) if gate.CONTROLLING == 1 else literal)
    return and_(*conditions)


@dataclass
class ActivationAnalysis:
    """Activation functions for every net and module of one design."""

    design: Design
    net_functions: Dict[Net, Expr] = field(default_factory=dict)
    module_functions: Dict[Cell, Expr] = field(default_factory=dict)

    def of_module(self, cell: Cell) -> Expr:
        try:
            return self.module_functions[cell]
        except KeyError:
            raise IsolationError(
                f"{cell.name!r} is not a datapath module of design "
                f"{self.design.name!r}"
            ) from None

    def of_net(self, net: Net) -> Expr:
        return self.net_functions[net]


class _ActivationDeriver:
    """Memoized backward-from-sinks observability computation.

    ``register_lookahead`` optionally supplies a pre-computed next-cycle
    activation function ``f_r⁺`` per register (see
    :mod:`repro.core.lookahead`); registers not in the mapping use the
    paper's constant-1 simplification.
    """

    def __init__(
        self,
        design: Design,
        register_lookahead: Optional[Dict[Cell, Expr]] = None,
    ) -> None:
        self.design = design
        self.register_lookahead = register_lookahead or {}
        self._memo: Dict[Net, Expr] = {}
        self._in_progress: set = set()

    def net_function(self, net: Net) -> Expr:
        cached = self._memo.get(net)
        if cached is not None:
            return cached
        if net in self._in_progress:
            # A combinational cycle would already have failed validation;
            # this guards latch feedback structures conservatively.
            return TRUE
        self._in_progress.add(net)
        terms = [self._reader_condition(pin) for pin in net.readers]
        result = or_(*terms)
        self._in_progress.discard(net)
        self._memo[net] = result
        return result

    # ------------------------------------------------------------------
    def _reader_condition(self, pin: Pin) -> Expr:
        cell = pin.cell
        # Any control use (select, enable) is an unconditional observation.
        if pin.is_control:
            return TRUE
        if isinstance(cell, PrimaryOutput):
            return TRUE
        if isinstance(cell, Register):
            # G · f_r+ — f_r+ := 1 (the Section 3 simplification) unless a
            # look-ahead function was supplied for this register.
            f_r_next = self.register_lookahead.get(cell, TRUE)
            if cell.has_enable:
                return and_(enable_condition(cell, "EN"), f_r_next)
            return f_r_next
        if isinstance(cell, TransparentLatch):
            return and_(enable_condition(cell, "G"), self.net_function(cell.net("Q")))
        if isinstance(cell, _BankBase):
            return and_(enable_condition(cell, "EN"), self.net_function(cell.net("Y")))
        if isinstance(cell, Mux):
            index = int(pin.port[1:])  # port name "D<k>"
            return and_(
                select_condition(cell, index), self.net_function(cell.net("Y"))
            )
        if isinstance(cell, Gate2):
            return and_(
                gate_side_condition(cell, pin.port),
                self.net_function(cell.net("Y")),
            )
        if isinstance(cell, (NotGate, Buffer, BitSelect)):
            return self.net_function(cell.net("Y"))
        if cell.is_datapath_module:
            # Toggles at a module input are observable at its output; the
            # module's own activation then gates further observability.
            return self.net_function(cell.net("Y"))
        # Unknown combinational cell: conservative.
        return TRUE


def net_activation_function(design: Design, net: Net, simplified: bool = True) -> Expr:
    """Activation function of a single net (1 = its value is observed)."""
    expr = _ActivationDeriver(design).net_function(net)
    return simplify(expr) if simplified else expr


def derive_activation_functions(
    design: Design,
    simplified: bool = True,
    register_lookahead: Optional[Dict[Cell, Expr]] = None,
) -> ActivationAnalysis:
    """Activation functions of every net and every datapath module.

    One breadth-first-equivalent memoized pass: O(|V|+|E|) traversal with
    shared subexpressions, as in the paper. ``register_lookahead`` plugs
    in next-cycle register activation functions (the Section 3 extension
    implemented in :mod:`repro.core.lookahead`); without it every
    register uses ``f_r⁺ = 1``.
    """
    with obs.span(
        "activation",
        "stage",
        design=design.name,
        modules=len(design.datapath_modules),
    ) as span:
        deriver = _ActivationDeriver(design, register_lookahead)
        analysis = ActivationAnalysis(design=design)
        for module in design.datapath_modules:
            for pin in module.output_pins:
                expr = deriver.net_function(pin.net)
                combined = analysis.module_functions.get(module)
                expr = expr if combined is None else or_(combined, expr)
                analysis.module_functions[module] = expr
            if simplified:
                analysis.module_functions[module] = simplify(
                    analysis.module_functions[module]
                )
        # Register outputs' activation functions feed the look-ahead extension.
        for register in design.registers:
            deriver.net_function(register.net("Q"))
        for net, expr in deriver._memo.items():
            analysis.net_functions[net] = simplify(expr) if simplified else expr
        span.set(nets=len(analysis.net_functions))
        return analysis
