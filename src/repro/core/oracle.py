"""Oracle analysis: the upper bound on what isolation can save.

A *perfect* isolation of module ``c`` — zero-overhead, zero-area,
blocking every toggle in every redundant cycle — would save exactly the
energy ``c`` burns during its ``f_c = 0`` cycles. Measuring that per
module gives an upper bound against which Algorithm 1's achieved savings
can be judged, and a per-module "how much is left on the table" figure
for reports.

Measurement uses conditional toggle monitors: each module pin's toggles
are split by the truth of the module's activation function in the cycle
the new value appears, and idle-cycle toggles are priced with the same
library coefficients as the power estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.boolean.expr import not_
from repro.core.activation import ActivationAnalysis, derive_activation_functions
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.power.estimator import PowerEstimator
from repro.power.library import TechnologyLibrary, default_library
from repro.sim.engine import Simulator
from repro.sim.monitor import ConditionalToggleMonitor, ToggleMonitor
from repro.sim.stimulus import Stimulus


@dataclass
class OracleReport:
    """Idle-cycle energy per module and in total."""

    total_power_mw: float
    idle_power_mw: Dict[str, float] = field(default_factory=dict)

    @property
    def oracle_savings_mw(self) -> float:
        """Total power a zero-cost perfect isolation could remove."""
        return sum(self.idle_power_mw.values())

    @property
    def oracle_fraction(self) -> float:
        """Share of total power that is redundant computation."""
        if self.total_power_mw <= 0:
            return 0.0
        return self.oracle_savings_mw / self.total_power_mw

    def achieved_fraction(self, measured_savings_mw: float) -> float:
        """How close a real transform came to the oracle."""
        bound = self.oracle_savings_mw
        if bound <= 0:
            return 1.0
        return measured_savings_mw / bound


def potential_savings(
    design: Design,
    stimulus: Stimulus,
    cycles: int = 2000,
    library: Optional[TechnologyLibrary] = None,
    analysis: Optional[ActivationAnalysis] = None,
    warmup: int = 16,
) -> OracleReport:
    """Measure every module's idle-cycle energy under ``stimulus``."""
    library = library or default_library()
    analysis = analysis or derive_activation_functions(design)

    conditionals: Dict[Cell, List[ConditionalToggleMonitor]] = {}
    monitors: List = [ToggleMonitor()]
    for module in design.datapath_modules:
        activation = analysis.of_module(module)
        if activation.is_true:
            conditionals[module] = []
            continue
        idle = not_(activation)
        pins = []
        for pin in module.input_pins:
            if not pin.is_control:
                pins.append(ConditionalToggleMonitor(pin.net, idle))
        for pin in module.output_pins:
            pins.append(ConditionalToggleMonitor(pin.net, idle))
        conditionals[module] = pins
        monitors.extend(pins)

    Simulator(design).run(stimulus, cycles, monitors=monitors, warmup=warmup)
    toggle_monitor = monitors[0]
    total = PowerEstimator(library).breakdown(design, toggle_monitor).total_power_mw

    report = OracleReport(total_power_mw=total)
    for module, pins in conditionals.items():
        if not pins:
            report.idle_power_mw[module.name] = 0.0
            continue
        e_in = library.input_toggle_energy(module)
        energy = 0.0
        n_inputs = len(module.data_input_ports)
        for index, monitor in enumerate(pins):
            rate = monitor.toggles_true / max(1, toggle_monitor.cycles - 1)
            if index < n_inputs:
                energy += e_in * rate
            else:
                energy += library.output_toggle_energy(module, monitor.net) * rate
        report.idle_power_mw[module.name] = library.power_mw(energy)
    return report
