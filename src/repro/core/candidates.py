"""Isolation candidates and their fanin/fanout structure (Section 4.1).

An :class:`IsolationCandidate` bundles everything the savings and cost
models need about one datapath module:

* its activation function ``f_c``;
* per data input, the **fanin candidates** ``C⁻(c)`` — other modules
  whose outputs can reach that input through the combinational logic
  network ``L`` — each with its **multiplexing function** ``g`` (the
  condition on control signals under which the connection is configured,
  e.g. ``g_{a1,A}^{a0} = S̄0·S1`` in the paper's example);
* per data input, the **environment sources** — registers, primary
  inputs and constants feeding the input, with their conditions (the
  paper neglects these for savings, we track them to decompose measured
  toggle rates);
* the **fanout candidates** ``C⁺(c)`` — the inverse relation, used for
  secondary savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.boolean.expr import TRUE, Expr, and_, or_
from repro.boolean.simplify import simplify
from repro.core.activation import (
    ActivationAnalysis,
    derive_activation_functions,
    gate_side_condition,
    enable_condition,
    select_condition,
)
from repro.netlist.banks import _BankBase
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.netlist.logic import BitSelect, Buffer, Gate2, Mux, NotGate
from repro.netlist.nets import Net
from repro.netlist.partition import CombinationalBlock, partition_blocks
from repro.netlist.seq import TransparentLatch


@dataclass
class FaninLink:
    """A module reachable upstream of one candidate input."""

    source: Cell  #: the fanin candidate c_k
    net: Net  #: which output net of c_k reaches the input (multi-output aware)
    condition: Expr  #: multiplexing function g — when the path is configured


@dataclass
class EnvironmentSource:
    """A non-module source (register/PI/constant) of one candidate input."""

    net: Net  #: the boundary net (register Q, PI net, constant)
    condition: Expr  #: condition under which it is steered to the input


@dataclass
class FanoutLink:
    """A module downstream of the candidate's output."""

    sink: Cell  #: the fanout candidate c_j
    port: str  #: which data input of c_j the output reaches
    source_net: Net  #: which output net of the candidate feeds it
    condition: Expr  #: multiplexing function of the connecting network


@dataclass
class IsolationCandidate:
    """One datapath module considered for operand isolation."""

    cell: Cell
    block: CombinationalBlock
    activation: Expr
    fanin: Dict[str, List[FaninLink]] = field(default_factory=dict)
    environment: Dict[str, List[EnvironmentSource]] = field(default_factory=dict)
    fanout: List[FanoutLink] = field(default_factory=list)
    #: The paper's decision variable z: set once the module is isolated.
    isolated: bool = False
    #: Style of the existing isolation ("and"/"or"/"latch"), when detected.
    isolation_style: Optional[str] = None

    @property
    def name(self) -> str:
        return self.cell.name

    @property
    def always_active(self) -> bool:
        """True when f_c ≡ 1 — isolation can never save anything."""
        return self.activation.is_true

    @property
    def isolable_bits(self) -> int:
        """Total operand bits an isolation bank would gate (area proxy)."""
        return sum(
            self.cell.net(port).width for port in self.cell.data_input_ports
        )

    def fanin_candidates(self, port: str) -> List[Cell]:
        """The paper's ``C⁻_port(c)``."""
        return [link.source for link in self.fanin.get(port, [])]

    def fanout_candidates(self) -> List[Cell]:
        """The paper's ``C⁺(c)``."""
        return [link.sink for link in self.fanout]

    def __repr__(self) -> str:
        return f"IsolationCandidate({self.cell.name!r}, f={self.activation!r})"


def _trace_sources(
    net: Net,
    condition: Expr,
    links: List[Tuple[Tuple[Cell, Net], Expr]],
    env: List[Tuple[Net, Expr]],
) -> None:
    """Walk backward through the logic network accumulating conditions."""
    driver = net.driver
    if driver is None:
        env.append((net, condition))
        return
    cell = driver.cell
    if cell.is_datapath_module:
        links.append(((cell, net), condition))
        return
    if cell.is_sequential or cell.kind in ("pi", "const"):
        env.append((net, condition))
        return
    if isinstance(cell, Mux):
        for index, port in enumerate(cell.data_ports()):
            _trace_sources(
                cell.net(port),
                and_(condition, select_condition(cell, index)),
                links,
                env,
            )
        return
    if isinstance(cell, Gate2):
        for port in ("A", "B"):
            _trace_sources(
                cell.net(port),
                and_(condition, gate_side_condition(cell, port)),
                links,
                env,
            )
        return
    if isinstance(cell, (NotGate, Buffer, BitSelect)):
        _trace_sources(cell.net("A"), condition, links, env)
        return
    if isinstance(cell, TransparentLatch):
        _trace_sources(
            cell.net("D"), and_(condition, enable_condition(cell, "G")), links, env
        )
        return
    if isinstance(cell, _BankBase):
        _trace_sources(
            cell.net("D"), and_(condition, enable_condition(cell, "EN")), links, env
        )
        return
    # Unknown combinational cell: treat its output as an environment source.
    env.append((net, condition))


def _merge_conditions(pairs: List[Tuple[object, Expr]]) -> List[Tuple[object, Expr]]:
    """OR together conditions of duplicate sources, preserving order."""
    order: List[object] = []
    merged: Dict[object, Expr] = {}
    for source, condition in pairs:
        if source in merged:
            merged[source] = or_(merged[source], condition)
        else:
            merged[source] = condition
            order.append(source)
    return [(source, simplify(merged[source])) for source in order]


def find_candidates(
    design: Design,
    analysis: Optional[ActivationAnalysis] = None,
    blocks: Optional[List[CombinationalBlock]] = None,
) -> List[IsolationCandidate]:
    """Identify every isolation candidate with its full link structure.

    Candidates are returned in deterministic (name) order. Modules whose
    operands are already gated by isolation banks are flagged
    ``isolated=True`` (relevant when analysing a transformed design).
    """
    analysis = analysis or derive_activation_functions(design)
    blocks = blocks if blocks is not None else partition_blocks(design)
    block_by_cell = {cell: block for block in blocks for cell in block.cells}

    candidates: List[IsolationCandidate] = []
    by_cell: Dict[Cell, IsolationCandidate] = {}
    for module in sorted(design.datapath_modules, key=lambda c: c.name):
        candidate = IsolationCandidate(
            cell=module,
            block=block_by_cell[module],
            activation=analysis.of_module(module),
        )
        for port in module.data_input_ports:
            links: List[Tuple[Tuple[Cell, Net], Expr]] = []
            env: List[Tuple[Net, Expr]] = []
            _trace_sources(module.net(port), TRUE, links, env)
            candidate.fanin[port] = [
                FaninLink(source=source, net=source_net, condition=condition)
                for (source, source_net), condition in _merge_conditions(links)
            ]
            candidate.environment[port] = [
                EnvironmentSource(net=net, condition=condition)
                for net, condition in _merge_conditions(env)
            ]
            driver = module.net(port).driver
            if driver is not None and isinstance(driver.cell, _BankBase):
                candidate.isolated = True
                candidate.isolation_style = {
                    "andbank": "and",
                    "orbank": "or",
                    "latbank": "latch",
                }.get(driver.cell.kind)
        candidates.append(candidate)
        by_cell[module] = candidate

    # Fanout links are the inverse of fanin links.
    for candidate in candidates:
        for port, links in candidate.fanin.items():
            for link in links:
                source = by_cell.get(link.source)
                if source is not None:
                    source.fanout.append(
                        FanoutLink(
                            sink=candidate.cell,
                            port=port,
                            source_net=link.net,
                            condition=link.condition,
                        )
                    )
    return candidates
