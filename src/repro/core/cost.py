"""Candidate cost evaluation (paper Section 5.1, Eq. 6).

``h(c) = ω_p · rP(c) − ω_a · rA(c)`` where

* ``rP(c) = (ΔP_p + ΔP_s − P_i) / P_t`` — relative power change,
* ``rA(c) = A(c) / A_t`` — relative area increase from the isolation
  banks (one gated bit per operand bit) and the activation logic
  (approximated by its literal count, as in the paper).

The quotient ``ω_p / ω_a`` sets how much power reduction must come with a
given area increase; a candidate is isolated only when ``h(c) ≥ h_min``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.candidates import IsolationCandidate
from repro.core.savings import SavingsEstimate, SavingsModel
from repro.power.library import TechnologyLibrary


@dataclass(frozen=True)
class CostWeights:
    """The ω_p / ω_a trade-off and acceptance threshold of Algorithm 1."""

    omega_p: float = 1.0
    omega_a: float = 0.25
    h_min: float = 0.0


@dataclass
class CandidateCost:
    """Scored candidate: savings estimate + area + the scalar h(c)."""

    candidate: IsolationCandidate
    savings: SavingsEstimate
    area: float
    relative_power: float
    relative_area: float
    h: float

    @property
    def accepted(self) -> bool:
        return self._accepted

    _accepted: bool = False


class CostModel:
    """Evaluates h(c) for candidates of one design snapshot."""

    def __init__(
        self,
        savings_model: SavingsModel,
        library: TechnologyLibrary,
        total_power_mw: float,
        total_area: float,
        weights: Optional[CostWeights] = None,
    ) -> None:
        self.savings_model = savings_model
        self.library = library
        self.total_power_mw = max(total_power_mw, 1e-12)
        self.total_area = max(total_area, 1e-12)
        self.weights = weights or CostWeights()

    # ------------------------------------------------------------------
    def isolation_area(self, candidate: IsolationCandidate, style: str) -> float:
        """Area of the would-be banks + activation logic, in µm²."""
        bank_kind = {"and": "andbank", "or": "orbank", "latch": "latbank"}[style]
        per_bit = self.library.params_by_kind(bank_kind).area_per_bit
        bank_area = per_bit * candidate.isolable_bits
        # Activation logic area ≈ literal count × a two-input gate's area
        # (the paper's factored-form literal-count proxy).
        gate_area = self.library.params_by_kind("and2").area_per_bit
        act_area = candidate.activation.literal_count() * gate_area
        return bank_area + act_area

    def evaluate(
        self, candidate: IsolationCandidate, style: str, refined: bool = True
    ) -> CandidateCost:
        """Score one candidate: Eq. (6)."""
        savings = self.savings_model.estimate(candidate, style, refined=refined)
        area = self.isolation_area(candidate, style)
        relative_power = savings.net_mw / self.total_power_mw
        relative_area = area / self.total_area
        h = (
            self.weights.omega_p * relative_power
            - self.weights.omega_a * relative_area
        )
        cost = CandidateCost(
            candidate=candidate,
            savings=savings,
            area=area,
            relative_power=relative_power,
            relative_area=relative_area,
            h=h,
        )
        cost._accepted = h >= self.weights.h_min
        return cost
