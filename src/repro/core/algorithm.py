"""Algorithm 1: iterative automated operand isolation (paper Section 5.3).

:func:`isolate_design` drives the whole flow on a *copy* of the input
design:

1. partition the RT structure into combinational blocks;
2. identify isolation candidates and reject those whose estimated
   post-isolation slack falls below the threshold;
3. repeat until no candidate is isolated:

   a. simulate the current design, measuring toggle rates and the signal
      statistics (``estimate_power`` + ``Pr(·)`` of Algorithm 1 line 16);
   b. score every remaining candidate with ``h(c) = ω_p·rP − ω_a·rA``;
   c. in each combinational block, isolate the best candidate if it
      clears ``h_min``.

The result records every iteration's scores and the before/after power,
area and worst-slack metrics measured with the *same* stimulus and clock
period, i.e. the quantities of the paper's Tables 1 and 2.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Union

from repro import obs
from repro.core.cost import CandidateCost, CostWeights
from repro.core.isolate import IsolationInstance
from repro.errors import IsolationError
from repro.netlist.design import Design
from repro.power.estimator import PowerEstimator
from repro.power.library import TechnologyLibrary, default_library
from repro.runconfig import ENGINES, RunConfig, resolve_run_config
from repro.sim.engine import make_simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import Stimulus

StimulusSource = Union[Stimulus, Callable[[], Stimulus]]


def _default_workers() -> int:
    # Lazy import: repro.parallel imports core submodules and would
    # cycle back here if imported at module scope.
    from repro.parallel.pool import default_workers

    return default_workers()


@dataclass(frozen=True)
class IsolationConfig:
    """Knobs of Algorithm 1.

    Attributes
    ----------
    style:
        Isolation style: ``"and"``, ``"or"``, ``"latch"`` — or ``"auto"``,
        which scores every candidate under all three styles each
        iteration and isolates with whichever maximises ``h(c)`` (so e.g.
        short-idle-burst candidates get latches while long-burst ones get
        cheap AND gates, see Ablation A).
    weights:
        The ω_p/ω_a/h_min cost trade-off (Section 5.1).
    cycles / warmup:
        Simulation length per estimation run.
    clock_period:
        Timing constraint in ns. ``None`` sets it from the original
        design's critical path times ``period_margin`` (the paper's
        designs met their constraints with margin to spare).
    period_margin:
        Multiplier applied to the critical path when deriving the period.
    slack_threshold:
        Candidates whose *estimated* post-isolation slack would fall
        below this are rejected up front (Algorithm 1, lines 5–10).
    refined_savings:
        Use the refined per-source primary-savings model (default) or
        the plain Eq. (1) approximation.
    lookahead_depth:
        Rounds of one-cycle register look-ahead when deriving activation
        functions (:mod:`repro.core.lookahead`). 0 (default) is the
        paper's baseline ``f_r⁺ = 1``. With look-ahead enabled,
        free-running pipeline registers may capture blocked values in
        provably-unconsumed cycles, so verify the result with
        ``compare_registers=False``.
    max_iterations:
        Safety bound on the main loop; the loop normally exits because
        no candidate clears ``h_min``.
    engine:
        Simulation backend for every estimation run: ``"python"`` (the
        reference interpreter), ``"compiled"`` (the pre-bound kernel
        backend of :mod:`repro.sim.compile`; bit-exact, much faster) or
        ``"checked"`` (compiled + reference in lockstep with periodic
        cross-comparison; raises on any divergence).
    workers:
        Process-pool width for the per-candidate scoring stage
        (:mod:`repro.parallel`): ``1`` = serial, ``0`` = auto (one
        worker per CPU), ``n > 1`` = a pool of ``n`` workers. Defaults
        to the ``REPRO_WORKERS`` environment variable (else 1). Greedy
        selection is bit-identical across worker counts; pool failures
        degrade to serial with a recorded
        ``StageTimings.pool_fallback_reason``.
    """

    style: str = "and"
    weights: CostWeights = field(default_factory=CostWeights)
    cycles: int = 2000
    warmup: int = 32
    clock_period: Optional[float] = None
    period_margin: float = 1.25
    slack_threshold: float = 0.0
    refined_savings: bool = True
    lookahead_depth: int = 0
    max_iterations: int = 25
    engine: str = "python"
    workers: int = field(default_factory=_default_workers)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise IsolationError(
                f"unknown engine {self.engine!r}; choose one of {ENGINES}"
            )
        if self.workers < 0:
            raise IsolationError(
                f"workers must be >= 0 (0 = auto), got {self.workers}"
            )


@dataclass
class DesignMetrics:
    """Power / area / slack snapshot of one design state."""

    power_mw: float
    area: float
    worst_slack: float
    clock_period: float


@dataclass
class StageTimings:
    """Wall-clock seconds spent per stage of one :func:`isolate_design` run.

    ``simulate_s`` covers the estimation runs (baseline, per-iteration
    and final), ``score_s`` the analysis between them (partitioning,
    activation derivation, timing, cost evaluation) and ``transform_s``
    the netlist rewrites (``isolate_candidate``).

    ``fallback_reason`` is set when a requested compiled backend could
    not be built and the run gracefully degraded to the python
    reference engine (see :func:`repro.sim.engine.make_simulator`);
    ``engine`` then still names what was *requested*. Likewise
    ``pool_fallback_reason`` is set when a requested worker pool failed
    and candidate scoring degraded to serial execution
    (:class:`repro.parallel.WorkerPool`); ``workers`` still names the
    resolved request.

    ``parallel_tasks`` / ``parallel_busy_s`` / ``parallel_wall_s``
    account for pooled scoring work: tasks dispatched, summed in-worker
    seconds, and wall-clock seconds the parent spent waiting on the
    pool. ``worker_utilization`` is busy / (workers × wall).
    """

    simulate_s: float = 0.0
    score_s: float = 0.0
    transform_s: float = 0.0
    simulations: int = 0
    engine: str = "python"
    fallback_reason: Optional[str] = None
    workers: int = 1
    parallel_tasks: int = 0
    parallel_busy_s: float = 0.0
    parallel_wall_s: float = 0.0
    pool_fallback_reason: Optional[str] = None

    @property
    def total_s(self) -> float:
        return self.simulate_s + self.score_s + self.transform_s

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's capacity kept busy (0 when unused)."""
        if self.workers <= 1 or self.parallel_wall_s <= 0.0:
            return 0.0
        return self.parallel_busy_s / (self.workers * self.parallel_wall_s)

    def to_dict(self) -> dict:
        payload = {
            "simulate_s": self.simulate_s,
            "score_s": self.score_s,
            "transform_s": self.transform_s,
            "total_s": self.total_s,
            "simulations": self.simulations,
            "engine": self.engine,
            "workers": self.workers,
        }
        if self.fallback_reason is not None:
            payload["fallback_reason"] = self.fallback_reason
        if self.workers > 1 or self.parallel_tasks:
            payload["parallel"] = {
                "tasks": self.parallel_tasks,
                "busy_s": self.parallel_busy_s,
                "wall_s": self.parallel_wall_s,
                "utilization": self.worker_utilization,
            }
        if self.pool_fallback_reason is not None:
            payload["pool_fallback_reason"] = self.pool_fallback_reason
        return payload

    @classmethod
    def from_spans(cls, spans) -> "StageTimings":
        """Derive stage timings from a recorded span forest.

        The span tree is the primary record when tracing is on; this is
        the backward-compatible flat view: ``simulate_s`` sums the
        ``power.estimate`` spans, ``transform_s`` the ``bank.insert``
        (and ``clock.gate``) spans, and ``score_s`` is the remainder of
        the root ``isolate`` — or ``optimize`` — span: the same
        decomposition the accumulating counters produce.
        """
        isolate = obs.find_spans(spans, "isolate") or obs.find_spans(
            spans, "optimize"
        )
        estimates = obs.find_spans(spans, "power.estimate")
        transforms = obs.find_spans(spans, "bank.insert") + obs.find_spans(
            spans, "clock.gate"
        )
        timings = cls(
            simulate_s=sum(s.duration_s for s in estimates),
            transform_s=sum(s.duration_s for s in transforms),
            simulations=len(estimates),
        )
        if isolate:
            root = isolate[0]
            timings.engine = str(root.attrs.get("engine", timings.engine))
            timings.workers = int(root.attrs.get("workers", timings.workers))
            timings.score_s = max(
                0.0, root.duration_s - timings.simulate_s - timings.transform_s
            )
        return timings


@dataclass
class IterationRecord:
    """What happened in one pass of the main loop."""

    index: int
    total_power_mw: float
    scores: List[CandidateCost] = field(default_factory=list)
    isolated: List[str] = field(default_factory=list)
    rejected_slack: List[str] = field(default_factory=list)


@dataclass
class IsolationResult:
    """Everything :func:`isolate_design` produces."""

    original: Design
    design: Design
    config: IsolationConfig
    baseline: DesignMetrics
    final: DesignMetrics
    instances: List[IsolationInstance] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def isolated_names(self) -> List[str]:
        return [inst.candidate.name for inst in self.instances]

    @property
    def power_reduction(self) -> float:
        """Fractional power reduction (positive = saved power)."""
        if self.baseline.power_mw <= 0:
            return 0.0
        return 1.0 - self.final.power_mw / self.baseline.power_mw

    @property
    def area_increase(self) -> float:
        """Fractional area increase."""
        if self.baseline.area <= 0:
            return 0.0
        return self.final.area / self.baseline.area - 1.0

    @property
    def slack_reduction(self) -> float:
        """Fractional worst-slack reduction (positive = slack got worse)."""
        if self.baseline.worst_slack <= 0:
            return 0.0
        return 1.0 - self.final.worst_slack / self.baseline.worst_slack

    def to_dict(self) -> dict:
        """JSON-serialisable record of the run (for tooling/dashboards)."""
        return {
            "design": self.original.name,
            "style": self.config.style,
            "isolated": self.isolated_names,
            "power_mw": {
                "before": self.baseline.power_mw,
                "after": self.final.power_mw,
                "reduction": self.power_reduction,
            },
            "area_um2": {
                "before": self.baseline.area,
                "after": self.final.area,
                "increase": self.area_increase,
            },
            "slack_ns": {
                "before": self.baseline.worst_slack,
                "after": self.final.worst_slack,
                "clock_period": self.baseline.clock_period,
            },
            "timings": self.timings.to_dict(),
            "iterations": [
                {
                    "index": record.index,
                    "measured_power_mw": record.total_power_mw,
                    "isolated": record.isolated,
                    "rejected_slack": record.rejected_slack,
                    "scores": [
                        {
                            "candidate": score.candidate.name,
                            "h": score.h,
                            "net_mw": score.savings.net_mw,
                            "idle_probability": score.savings.idle_probability,
                        }
                        for score in record.scores
                    ],
                }
                for record in self.iterations
            ],
        }

    def summary(self) -> str:
        lines = [
            f"Operand isolation of {self.original.name!r} "
            f"(style={self.config.style!r})",
            f"  isolated modules : {', '.join(self.isolated_names) or '(none)'}",
            f"  power  : {self.baseline.power_mw:8.4f} -> {self.final.power_mw:8.4f} mW "
            f"({self.power_reduction:+.1%})",
            f"  area   : {self.baseline.area:8.0f} -> {self.final.area:8.0f} um^2 "
            f"({self.area_increase:+.1%})",
            f"  slack  : {self.baseline.worst_slack:8.3f} -> {self.final.worst_slack:8.3f} ns "
            f"(clock {self.baseline.clock_period:.3f} ns)",
            f"  iterations: {len(self.iterations)}",
            f"  stages : simulate {self.timings.simulate_s:.3f}s, "
            f"score {self.timings.score_s:.3f}s, "
            f"transform {self.timings.transform_s:.3f}s "
            f"({self.timings.simulations} runs, engine {self.timings.engine!r}, "
            f"workers {self.timings.workers})",
        ]
        if self.timings.workers > 1 and self.timings.parallel_tasks:
            lines.append(
                f"  pool   : {self.timings.parallel_tasks} tasks, "
                f"{self.timings.worker_utilization:.0%} utilization"
            )
        if self.timings.fallback_reason:
            lines.append(
                f"  note   : engine degraded to 'python' "
                f"({self.timings.fallback_reason})"
            )
        if self.timings.pool_fallback_reason:
            lines.append(
                f"  note   : scoring pool degraded to serial "
                f"({self.timings.pool_fallback_reason})"
            )
        return "\n".join(lines)


def _stimulus_of(source: StimulusSource) -> Stimulus:
    """A fresh stimulus per estimation run (identical statistics each time)."""
    if callable(source) and not hasattr(source, "values"):
        return source()
    return copy.deepcopy(source)


def _measure_power(
    design: Design,
    source: StimulusSource,
    config: IsolationConfig,
    library: TechnologyLibrary,
    extra_monitors: Optional[list] = None,
    timings: Optional[StageTimings] = None,
) -> float:
    with obs.span(
        "power.estimate",
        "sim",
        design=design.name,
        engine=config.engine,
        cycles=config.cycles,
    ) as span:
        monitor = ToggleMonitor()
        monitors = [monitor] + list(extra_monitors or [])
        simulator = make_simulator(design, config.engine)
        if timings is not None and simulator.fallback_reason is not None:
            timings.fallback_reason = simulator.fallback_reason
        simulator.run(
            _stimulus_of(source), config.cycles, monitors=monitors, warmup=config.warmup
        )
        breakdown = PowerEstimator(library).breakdown(design, monitor)
        span.set(power_mw=breakdown.total_power_mw)
    return breakdown.total_power_mw, monitor


def isolate_design(
    design: Design,
    stimulus: StimulusSource,
    config: Optional[IsolationConfig] = None,
    library: Optional[TechnologyLibrary] = None,
    run: Optional[RunConfig] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[str] = None,
) -> IsolationResult:
    """Run Algorithm 1 on ``design`` (which is left untouched).

    ``stimulus`` is either a stimulus object (deep-copied per estimation
    run so every run sees identical statistics) or a zero-argument
    factory returning a fresh stimulus. Run control (``cycles``,
    ``warmup``, ``engine``) lives on ``config``; ``run=RunConfig(...)``
    and ``engine=`` override it, and bare ``cycles=``/``warmup=`` are
    deprecated aliases.
    """
    config = config or IsolationConfig()
    if run is not None or engine is not None or cycles is not None or warmup is not None:
        cfg = resolve_run_config(
            run,
            defaults=RunConfig(
                cycles=config.cycles, warmup=config.warmup, engine=config.engine
            ),
            stacklevel=3,
            engine=engine,
            cycles=cycles,
            warmup=warmup,
        )
        config = replace(
            config, cycles=cfg.cycles, warmup=cfg.warmup, engine=cfg.engine
        )
    library = library or default_library()

    # Algorithm 1 now lives in the pass-agnostic optimizer (repro.opt);
    # running it with the isolation pass alone is bit-identical to the
    # historical loop this function used to own. Imported lazily to
    # avoid a core <-> opt import cycle.
    from repro.opt import optimize

    return optimize(
        design,
        stimulus,
        passes=("isolation",),
        config=config,
        library=library,
        _working_name=f"{design.name}_iso_{config.style}",
        _root_span="isolate",
    ).to_isolation_result()
