"""The isolation transform: netlist rewriting (paper Section 5.2).

:func:`isolate_candidate` rewrites a design in place:

1. the candidate's activation function is synthesized into gates (the
   *activation logic*), producing a one-bit activation-signal net ``AS``
   with the convention **high = non-redundant** (pass);
2. for every operand input, an isolation bank of the chosen style is
   inserted between the original operand net and the module:

   * ``and``   — AND gates force zeros while idle,
   * ``or``    — OR gates force ones while idle,
   * ``latch`` — transparent latches freeze the last operand while idle;

3. the module's input pins are rewired to the bank outputs.

All cells created by the transform are tagged with ``isolation_role``
(``"activation"`` or ``"bank"``) so power reports can attribute the
overhead, and the bank enables observe the standard bank semantics that
the activation derivation understands — re-deriving activation functions
on the transformed design therefore composes correctly on the next
iteration of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.boolean.expr import Expr
from repro.boolean.synth import ExpressionSynthesizer
from repro.errors import IsolationError
from repro.netlist.banks import AndBank, LatchBank, OrBank
from repro.netlist.bitref import materialize_variable_nets
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.netlist.nets import Net

#: The three isolation styles of the paper.
IsolationStyle = str
STYLES = ("and", "or", "latch")

_BANK_CLASSES = {"and": AndBank, "or": OrBank, "latch": LatchBank}


@dataclass
class IsolationInstance:
    """Record of one applied isolation transform."""

    candidate: Cell
    style: IsolationStyle
    activation: Expr
    activation_net: Net
    banks: List[Cell] = field(default_factory=list)
    activation_cells: List[Cell] = field(default_factory=list)

    @property
    def gated_bits(self) -> int:
        return sum(bank.net("Y").width for bank in self.banks)


def isolate_candidate(
    design: Design,
    candidate: Cell,
    activation: Expr,
    style: IsolationStyle = "and",
    synthesizer: Optional[ExpressionSynthesizer] = None,
    optimize: bool = True,
) -> IsolationInstance:
    """Apply operand isolation to ``candidate`` within ``design``.

    ``activation`` must be the module's activation function (high =
    non-redundant); a constant-1 function is rejected because the banks
    would never block anything.

    A shared ``synthesizer`` may be passed so several isolations of the
    same design share activation-logic subexpressions. With ``optimize``
    (default) the activation function is algebraically factored before
    synthesis — the paper's "optimized version" of the activation logic.
    """
    if style not in _BANK_CLASSES:
        raise IsolationError(f"unknown isolation style {style!r}; use one of {STYLES}")
    if not candidate.is_datapath_module:
        raise IsolationError(f"{candidate.name!r} is not a datapath module")
    if activation.is_true:
        raise IsolationError(
            f"candidate {candidate.name!r} is always active (f = 1); "
            "isolation would only add overhead"
        )
    if activation.is_false:
        raise IsolationError(
            f"candidate {candidate.name!r} has activation f = 0 — its result "
            "is never observed; remove the module instead of isolating it"
        )
    for port in candidate.data_input_ports:
        driver = candidate.net(port).driver
        if driver is not None and getattr(driver.cell, "is_isolation_bank", False):
            raise IsolationError(f"candidate {candidate.name!r} is already isolated")

    # 1. Activation logic (factored for minimum literal count).
    if optimize:
        from repro.boolean.factored import factor

        implementation = factor(activation)
    else:
        implementation = activation
    variable_nets = materialize_variable_nets(
        design, sorted(implementation.support())
    )
    if synthesizer is None:
        synthesizer = ExpressionSynthesizer(
            design, variable_nets, name_prefix=f"act_{candidate.name}"
        )
    else:
        synthesizer.variable_nets.update(variable_nets)
    synth_result = synthesizer.synthesize(implementation)
    for cell in synth_result.cells:
        cell.isolation_role = "activation"
    activation_net = synth_result.output

    instance = IsolationInstance(
        candidate=candidate,
        style=style,
        activation=activation,
        activation_net=activation_net,
        activation_cells=list(synth_result.cells),
    )

    # 2–3. Banks on every operand input.
    bank_cls = _BANK_CLASSES[style]
    for port in candidate.data_input_ports:
        operand_net = candidate.net(port)
        bank_name = design.fresh_cell_name(f"iso_{candidate.name}_{port.lower()}")
        bank = design.add_cell(bank_cls(bank_name))
        bank.isolation_role = "bank"
        gated_net = design.add_net(design.fresh_net_name(bank_name), operand_net.width)
        design.rewire_input(candidate, port, gated_net)
        design.connect(bank, "D", operand_net)
        design.connect(bank, "EN", activation_net)
        design.connect(bank, "Y", gated_net)
        instance.banks.append(bank)
    return instance


def deisolate_candidate(design: Design, instance: IsolationInstance) -> None:
    """Undo one isolation transform in place.

    The candidate's operand inputs are rewired back to the original
    nets, the banks are removed, and any activation logic left without
    readers is swept. Enables explore→measure→revert workflows and is
    the inverse used by the undo tests.
    """
    candidate = instance.candidate
    for bank in instance.banks:
        original_net = bank.net("D")
        gated_net = bank.net("Y")
        for pin in list(gated_net.readers):
            design.rewire_input(pin.cell, pin.port, original_net)
        design.remove_cell(bank)
        design.remove_net(gated_net)
    # Activation logic (and bit taps) shared with nothing else is dead now.
    design.sweep_dangling()


def is_isolated(candidate: Cell) -> bool:
    """True when every operand input of ``candidate`` is bank-gated."""
    ports = candidate.data_input_ports
    if not ports:
        return False
    for port in ports:
        driver = candidate.net(port).driver
        if driver is None or not getattr(driver.cell, "is_isolation_bank", False):
            return False
    return True
