"""What-if exploration: score candidates without transforming anything.

:func:`rank_candidates` runs the measurement half of Algorithm 1 — one
simulation with probes, savings estimation, cost evaluation, slack
impact — and returns every candidate's numbers, ranked by ``h(c)``.
Useful for floorplanning an isolation campaign, for reports, and for the
CLI's ``rank`` subcommand; :func:`repro.core.algorithm.isolate_design`
is the committing counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.activation import derive_activation_functions
from repro.core.candidates import IsolationCandidate, find_candidates
from repro.core.cost import CostModel, CostWeights
from repro.core.savings import SavingsModel
from repro.netlist.design import Design
from repro.power.estimator import PowerEstimator
from repro.power.library import TechnologyLibrary, default_library
from repro.runconfig import RunConfig, resolve_run_config
from repro.sim.engine import Simulator, make_simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import Stimulus
from repro.timing.impact import estimate_isolation_impact
from repro.timing.sta import analyze_timing


@dataclass
class RankedCandidate:
    """One candidate's full what-if assessment."""

    name: str
    activation: str
    idle_probability: float
    primary_mw: float
    secondary_mw: float
    overhead_mw: float
    net_mw: float
    area_um2: float
    h: float
    estimated_slack: float
    block_index: int
    always_active: bool

    @property
    def worth_isolating(self) -> bool:
        return not self.always_active and self.h >= 0 and self.estimated_slack >= 0

    def to_dict(self) -> dict:
        """JSON-serialisable record of the assessment."""
        return {
            "name": self.name,
            "activation": self.activation,
            "idle_probability": self.idle_probability,
            "primary_mw": self.primary_mw,
            "secondary_mw": self.secondary_mw,
            "overhead_mw": self.overhead_mw,
            "net_mw": self.net_mw,
            "area_um2": self.area_um2,
            "h": self.h,
            "estimated_slack": self.estimated_slack,
            "block": self.block_index,
            "always_active": self.always_active,
            "worth_isolating": self.worth_isolating,
        }


def assess_candidate(
    candidate: IsolationCandidate,
    cost_model: CostModel,
    design: Design,
    style: str,
    library: TechnologyLibrary,
    timing,
) -> RankedCandidate:
    """The full what-if assessment of one (non-always-active) candidate.

    Pure per-candidate computation against a calibrated cost model —
    also the unit of work the :mod:`repro.parallel` pool dispatches.
    """
    score = cost_model.evaluate(candidate, style)
    impact = estimate_isolation_impact(
        design, candidate.cell, candidate.activation, style, library, timing
    )
    return RankedCandidate(
        name=candidate.name,
        activation=repr(candidate.activation),
        idle_probability=score.savings.idle_probability,
        primary_mw=score.savings.primary_mw,
        secondary_mw=score.savings.secondary_mw,
        overhead_mw=score.savings.overhead_mw,
        net_mw=score.savings.net_mw,
        area_um2=score.area,
        h=score.h,
        estimated_slack=impact.estimated_slack,
        block_index=candidate.block.index,
        always_active=False,
    )


def rank_candidates(
    design: Design,
    stimulus: Stimulus,
    style: str = "and",
    cycles: Optional[int] = None,
    weights: Optional[CostWeights] = None,
    library: Optional[TechnologyLibrary] = None,
    clock_period: Optional[float] = None,
    lookahead_depth: int = 0,
    run: Optional[RunConfig] = None,
    engine: Optional[str] = None,
) -> List[RankedCandidate]:
    """Assess every candidate of ``design`` under ``stimulus``.

    Returns candidates sorted by descending ``h(c)``. The design is not
    modified. Run control comes from ``run=RunConfig(...)`` (including
    ``workers`` — per-candidate assessments go to the process pool, with
    results identical to the serial loop); the first-class ``engine=``
    override and the deprecated bare ``cycles=`` alias still work.
    """
    cfg = resolve_run_config(
        run,
        defaults=RunConfig(cycles=2000, warmup=16),
        stacklevel=3,
        engine=engine,
        cycles=cycles,
    )
    library = library or default_library()
    weights = weights or CostWeights()

    if lookahead_depth > 0:
        from repro.core.lookahead import derive_with_lookahead

        analysis = derive_with_lookahead(design, depth=lookahead_depth)
    else:
        analysis = derive_activation_functions(design)
    candidates = find_candidates(design, analysis)

    savings_model = SavingsModel(design, candidates, library)
    monitor = ToggleMonitor()
    make_simulator(design, cfg.engine).run(
        stimulus,
        cfg.cycles,
        monitors=[monitor, savings_model.probes],
        warmup=cfg.warmup,
    )
    savings_model.calibrate(monitor)

    total_power = PowerEstimator(library).breakdown(design, monitor).total_power_mw
    cost_model = CostModel(
        savings_model,
        library,
        total_power_mw=total_power,
        total_area=library.total_area(design),
        weights=weights,
    )
    reference = analyze_timing(design, library, clock_period=None)
    period = clock_period if clock_period is not None else reference.clock_period * 1.25
    timing = analyze_timing(design, library, clock_period=period)

    # Assess the non-trivial candidates, serially or on the worker pool
    # (lazy import: repro.parallel imports this module's RankedCandidate).
    from repro.parallel.pool import WorkerPool
    from repro.parallel.scoring import rank_chunked

    assessable = [
        c.name for c in candidates if not c.isolated and not c.always_active
    ]
    with WorkerPool(cfg.workers) as pool:
        assessed = rank_chunked(
            cost_model, assessable, design, style, library, timing, pool
        )

    ranked: List[RankedCandidate] = []
    for candidate in candidates:
        if candidate.isolated:
            continue
        if candidate.always_active:
            ranked.append(
                RankedCandidate(
                    name=candidate.name,
                    activation=repr(candidate.activation),
                    idle_probability=0.0,
                    primary_mw=0.0,
                    secondary_mw=0.0,
                    overhead_mw=0.0,
                    net_mw=0.0,
                    area_um2=0.0,
                    h=0.0,
                    estimated_slack=timing.slack(candidate.cell.net("Y")),
                    block_index=candidate.block.index,
                    always_active=True,
                )
            )
            continue
        ranked.append(assessed[candidate.name])
    ranked.sort(key=lambda r: r.h, reverse=True)
    return ranked


def format_ranking(ranked: List[RankedCandidate]) -> str:
    """Render a ranking as a text table."""
    lines = [
        f"{'candidate':<14} {'blk':>3} {'idle':>6} {'dP[mW]':>8} {'ovh':>7} "
        f"{'area':>7} {'h':>9} {'slack':>7}  activation"
    ]
    for r in ranked:
        if r.always_active:
            lines.append(f"{r.name:<14} {r.block_index:>3} {'--':>6} "
                         f"{'always active':<42} {r.activation}")
            continue
        lines.append(
            f"{r.name:<14} {r.block_index:>3} {r.idle_probability:>6.0%} "
            f"{r.net_mw:>8.4f} {r.overhead_mw:>7.4f} {r.area_um2:>7.0f} "
            f"{r.h:>9.4f} {r.estimated_slack:>7.3f}  {r.activation}"
        )
    return "\n".join(lines)
