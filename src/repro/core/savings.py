"""Power-savings estimation (paper Section 4).

Given one measured simulation run of the current design (toggle rates +
expression probes), :class:`SavingsModel` predicts, per candidate:

* **primary savings** ``ΔP_p`` — power no longer burnt inside the
  candidate itself (Section 4.2). Eq. (1) is the even-distribution
  approximation ``Pr(¬f_c) · p_c(Tr)``; the refined model decomposes
  each operand's idle-cycle toggles per source using measured joint
  probabilities and the Eq. (2) scaling ``Tr' = Tr / Pr(AS)`` for
  already-isolated fanin candidates (the Eq. (3) structure, generalised
  to any number of inputs and sources);
* **secondary savings** ``ΔP_s`` — power no longer burnt in fanout
  candidates because the candidate's output goes quiescent during its
  idle cycles, Eq. (5) including the ``z_j`` already-isolated decision
  variable;
* **overhead** ``P_i`` — power of the would-be isolation banks and
  activation logic, style-dependent (latch banks carry standing clock
  power; gate banks burn a transition on every activation edge).

All probabilities of signal products are *measured* by probes — never
assumed independent (Section 4.2: "the probabilities cannot further be
simplified, since we cannot assume statistical independence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.boolean.expr import Expr, and_, not_
from repro.core.candidates import IsolationCandidate
from repro.errors import IsolationError
from repro.netlist.cells import Cell
from repro.power.library import TechnologyLibrary
from repro.power.macromodel import MacroPowerModel
from repro.sim.monitor import ToggleMonitor
from repro.sim.probes import ProbeSet


@dataclass
class SavingsEstimate:
    """Predicted effect of isolating one candidate (all in mW)."""

    candidate: IsolationCandidate
    style: str
    primary_mw: float
    secondary_mw: float
    overhead_mw: float
    idle_probability: float

    @property
    def net_mw(self) -> float:
        """ΔP_p + ΔP_s − P_i: the numerator of the paper's rP(c)."""
        return self.primary_mw + self.secondary_mw - self.overhead_mw


class SavingsModel:
    """Savings predictor for one design + candidate set.

    Usage: construct, attach :attr:`probes` (and a full
    :class:`ToggleMonitor`) to a simulation run, call
    :meth:`calibrate`, then query :meth:`estimate` per candidate.
    """

    def __init__(
        self,
        design,
        candidates: List[IsolationCandidate],
        library: TechnologyLibrary,
    ) -> None:
        self.design = design
        self.candidates = candidates
        self.library = library
        self.probes = ProbeSet()
        self._by_cell: Dict[Cell, IsolationCandidate] = {
            c.cell: c for c in candidates
        }
        self._macro: Dict[Cell, MacroPowerModel] = {}
        self._monitor: Optional[ToggleMonitor] = None
        self._register_probes()

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def _register_probes(self) -> None:
        for c in self.candidates:
            f_c = c.activation
            self._add_probe(f"act:{c.name}", f_c)
            idle = not_(f_c)
            for port, links in c.fanin.items():
                for link in links:
                    base = and_(idle, link.condition)
                    source = self._by_cell.get(link.source)
                    f_k = source.activation if source else None
                    if f_k is not None:
                        self._add_probe(
                            f"pri:{c.name}:{port}:{link.source.name}:on",
                            and_(base, f_k),
                        )
                    self._add_probe(
                        f"pri:{c.name}:{port}:{link.source.name}:any", base
                    )
                for i, env in enumerate(c.environment.get(port, [])):
                    self._add_probe(
                        f"env:{c.name}:{port}:{i}", and_(idle, env.condition)
                    )
            for link in c.fanout:
                sink = self._by_cell.get(link.sink)
                if sink is None:
                    continue
                base = and_(idle, link.condition)
                self._add_probe(
                    f"sec:{c.name}:{link.sink.name}:{link.port}:on",
                    and_(base, sink.activation),
                )
                self._add_probe(
                    f"sec:{c.name}:{link.sink.name}:{link.port}:off",
                    and_(base, not_(sink.activation)),
                )

    def _add_probe(self, name: str, expr: Expr) -> None:
        if name not in self.probes:
            self.probes.add(name, expr)

    # ------------------------------------------------------------------
    def calibrate(self, monitor: ToggleMonitor) -> None:
        """Bind measured activity; fit macro models from it."""
        self._monitor = monitor
        self._macro = {
            c.cell: MacroPowerModel.from_measurement(c.cell, self.library, monitor)
            for c in self.candidates
        }

    def _require_calibration(self) -> ToggleMonitor:
        if self._monitor is None:
            raise IsolationError(
                "SavingsModel.calibrate(monitor) must run after simulation "
                "and before estimates are queried"
            )
        return self._monitor

    def macro_model(self, cell: Cell) -> MacroPowerModel:
        return self._macro[cell]

    # ------------------------------------------------------------------
    # Measured quantities
    # ------------------------------------------------------------------
    def activation_probability(self, c: IsolationCandidate) -> float:
        """Measured Pr(f_c = 1)."""
        return self.probes.probability(f"act:{c.name}")

    def scaled_output_rate(self, c: IsolationCandidate, net=None) -> float:
        """Eq. (2): the candidate's output toggle rate during active cycles.

        ``Tr'_C = Tr_C / Pr(AS)`` — the measured average rate concentrated
        into the non-redundant cycles. ``net`` selects which output of a
        multi-output module (default: its primary output ``Y``).
        """
        monitor = self._require_calibration()
        rate = monitor.toggle_rate(net if net is not None else c.cell.net("Y"))
        pr_active = self.activation_probability(c)
        if pr_active <= 0.0:
            return 0.0
        return rate / pr_active

    # ------------------------------------------------------------------
    # Primary savings
    # ------------------------------------------------------------------
    def primary_savings_simple(self, c: IsolationCandidate) -> float:
        """Eq. (1): ``Pr(¬f_c) · p_c(measured input rates)`` in mW."""
        monitor = self._require_calibration()
        rates = {
            port: monitor.toggle_rate(c.cell.net(port))
            for port in c.cell.data_input_ports
        }
        idle = 1.0 - self.activation_probability(c)
        return idle * self._macro[c.cell].power_mw(rates)

    def _idle_port_rate(self, c: IsolationCandidate, port: str) -> float:
        """Expected toggles/cycle at ``port`` attributable to idle cycles.

        Decomposed per source with measured joint probabilities; isolated
        fanin candidates contribute their Eq. (2)-scaled rate only while
        simultaneously active (their banks block everything else).
        """
        monitor = self._require_calibration()
        total = 0.0
        for link in c.fanin.get(port, []):
            source = self._by_cell.get(link.source)
            if source is not None and source.isolated:
                pr_on = self.probes.probability(
                    f"pri:{c.name}:{port}:{link.source.name}:on"
                )
                total += pr_on * self.scaled_output_rate(source, link.net)
                # Gate-isolated sources also force a transition on entry
                # to each of their idle periods; those land in ¬f_k
                # cycles, a share of which are also ¬f_c ∧ g cycles.
                if source.isolation_style in ("and", "or"):
                    as_rate_k = self.probes[f"act:{source.name}"].toggle_rate
                    pr_k_idle = 1.0 - self.activation_probability(source)
                    if pr_k_idle > 1e-9:
                        pr_any = self.probes.probability(
                            f"pri:{c.name}:{port}:{link.source.name}:any"
                        )
                        share = max(0.0, pr_any - pr_on) / pr_k_idle
                        forced = (as_rate_k / 2.0) * link.net.width / 2.0
                        total += forced * share
            else:
                pr_any = self.probes.probability(
                    f"pri:{c.name}:{port}:{link.source.name}:any"
                )
                total += pr_any * monitor.toggle_rate(link.net)
        for i, env in enumerate(c.environment.get(port, [])):
            pr = self.probes.probability(f"env:{c.name}:{port}:{i}")
            total += pr * monitor.toggle_rate(env.net)
        return total

    def primary_savings(self, c: IsolationCandidate) -> float:
        """Refined primary savings (the Eq. (3) structure) in mW."""
        rates = {
            port: self._idle_port_rate(c, port)
            for port in c.cell.data_input_ports
        }
        # The macro model is linear in the (already probability-weighted)
        # idle-cycle rates, so no further Pr(¬f) factor is applied.
        return self._macro[c.cell].power_mw(rates)

    # ------------------------------------------------------------------
    # Secondary savings
    # ------------------------------------------------------------------
    def secondary_savings(self, c: IsolationCandidate) -> float:
        """Eq. (5) summed over all fanout links, in mW."""
        monitor = self._require_calibration()
        total = 0.0
        for link in c.fanout:
            sink = self._by_cell.get(link.sink)
            if sink is None:
                continue
            out_rate = monitor.toggle_rate(link.source_net)
            scaled_rate = self.scaled_output_rate(c, link.source_net)
            macro = self._macro[link.sink]
            other_rates = {
                port: monitor.toggle_rate(link.sink.net(port))
                for port in link.sink.data_input_ports
            }
            quiet = dict(other_rates)
            quiet[link.port] = 0.0
            pr_on = self.probes.probability(
                f"sec:{c.name}:{link.sink.name}:{link.port}:on"
            )
            pr_off = self.probes.probability(
                f"sec:{c.name}:{link.sink.name}:{link.port}:off"
            )
            loud_on = dict(other_rates)
            loud_on[link.port] = scaled_rate
            total += pr_on * (macro.power_mw(loud_on) - macro.power_mw(quiet))
            if not sink.isolated:  # the (1 - z_j) factor
                loud_off = dict(other_rates)
                loud_off[link.port] = out_rate
                total += pr_off * (macro.power_mw(loud_off) - macro.power_mw(quiet))
        return total

    # ------------------------------------------------------------------
    # Overhead
    # ------------------------------------------------------------------
    def overhead(self, c: IsolationCandidate, style: str) -> float:
        """Predicted power of banks + activation logic for ``style``, mW."""
        monitor = self._require_calibration()
        library = self.library
        as_rate = self.probes[f"act:{c.name}"].toggle_rate
        pr_active = self.activation_probability(c)

        # Activation logic: ~literal_count gates switching with their
        # support signals, driving the AS net at its measured rate.
        from repro.netlist.bitref import parse_bitref

        support_rate = 0.0
        for name in c.activation.support():
            net, _bit = parse_bitref(self.design, name)
            support_rate += min(1.0, monitor.toggle_rate(net))
        gate_energy = library.params_by_kind("and2").energy_in
        act_energy = gate_energy * (
            c.activation.literal_count() * 0.5 * support_rate + as_rate
        )

        # Isolation banks, per gated operand port.
        bank_kind = {"and": "andbank", "or": "orbank", "latch": "latbank"}[style]
        params = library.params_by_kind(bank_kind)
        module_in_energy = library.input_toggle_energy(c.cell)
        bank_energy = 0.0
        for port in c.cell.data_input_ports:
            net = c.cell.net(port)
            in_rate = monitor.toggle_rate(net)
            bank_energy += params.energy_in * in_rate
            # The bank enable fans out to one gating element per bit.
            bank_energy += params.energy_in * net.width * as_rate
            if style == "latch":
                bank_energy += params.energy_static * net.width
                out_rate = pr_active * in_rate
            else:
                # Gate banks force a level on entry to every idle period:
                # about half the operand bits flip on that edge, and the
                # forced transition propagates INTO the module at the
                # module's own (large) per-toggle energy — the paper's
                # "extra transitions in the first cycle of inactivity".
                # (The exit edge lands on an active cycle and replaces the
                # normal operand change there, so it costs nothing extra.)
                # Idle periods per cycle = as_rate / 2.
                forced_rate = (as_rate / 2.0) * net.width / 2.0
                out_rate = pr_active * in_rate + forced_rate
                bank_energy += module_in_energy * forced_rate
            bank_energy += params.energy_out * out_rate
        return library.power_mw(act_energy + bank_energy)

    # ------------------------------------------------------------------
    def estimate(
        self, c: IsolationCandidate, style: str, refined: bool = True
    ) -> SavingsEstimate:
        """Full savings estimate for isolating ``c`` with ``style``."""
        primary = self.primary_savings(c) if refined else self.primary_savings_simple(c)
        return SavingsEstimate(
            candidate=c,
            style=style,
            primary_mw=primary,
            secondary_mw=self.secondary_savings(c),
            overhead_mw=self.overhead(c, style),
            idle_probability=1.0 - self.activation_probability(c),
        )
