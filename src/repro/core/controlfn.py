"""Structural expansion of control logic into Boolean functions.

:func:`control_function` expresses a one-bit net as a Boolean function
over *source* control variables — primary inputs, register outputs,
datapath-module outputs, and individual bits of wider buses — by seeing
through the glue logic (gates, inverters, buffers, bit taps, one-bit
muxes) that computes it.

Used by the guarded-evaluation baseline (to compare candidate guards
canonically) and by the look-ahead extension (to predict next-cycle
control values from register inputs).
"""

from __future__ import annotations

from repro.boolean.expr import FALSE, TRUE, Expr, and_, not_, or_, var
from repro.core.activation import select_condition
from repro.netlist.bitref import format_bitref
from repro.netlist.logic import (
    AndGate,
    BitSelect,
    Buffer,
    Mux,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    XnorGate,
    XorGate,
)
from repro.netlist.nets import Net
from repro.netlist.ports import Constant


def control_function(net: Net, _depth: int = 0) -> Expr:
    """Boolean function of a one-bit net over source control variables.

    Sources (atomic variables) are primary inputs, register outputs,
    datapath-module outputs and anything else the expansion cannot see
    through. Constants fold to 0/1. Bounded recursion depth guards
    against pathological glue chains.
    """
    if net.width != 1:
        raise ValueError(f"net {net.name!r} is not one bit wide")
    driver = net.driver
    if driver is None or _depth > 64:
        return var(net.name)
    cell = driver.cell
    if isinstance(cell, Constant):
        return TRUE if (cell.value & 1) else FALSE
    if isinstance(cell, NotGate):
        return not_(control_function(cell.net("A"), _depth + 1))
    if isinstance(cell, Buffer):
        return control_function(cell.net("A"), _depth + 1)
    if isinstance(cell, BitSelect):
        return var(format_bitref(cell.net("A"), cell.bit))
    if isinstance(cell, (AndGate, OrGate, NandGate, NorGate, XorGate, XnorGate)):
        a = control_function(cell.net("A"), _depth + 1)
        b = control_function(cell.net("B"), _depth + 1)
        if isinstance(cell, AndGate):
            return and_(a, b)
        if isinstance(cell, OrGate):
            return or_(a, b)
        if isinstance(cell, NandGate):
            return not_(and_(a, b))
        if isinstance(cell, NorGate):
            return not_(or_(a, b))
        xor = or_(and_(a, not_(b)), and_(not_(a), b))
        return xor if isinstance(cell, XorGate) else not_(xor)
    if isinstance(cell, Mux):
        terms = []
        for index, port in enumerate(cell.data_ports()):
            terms.append(
                and_(
                    select_condition(cell, index),
                    control_function(cell.net(port), _depth + 1),
                )
            )
        return or_(*terms)
    # Registers, PIs, modules, banks... : atomic.
    return var(net.name)
