"""The paper's contribution: automated RT-level operand isolation.

Pipeline (one call does it all — :func:`~repro.core.algorithm.isolate_design`):

1. :mod:`~repro.core.activation` derives an activation function per
   datapath module by structural observability analysis (Section 3);
2. :mod:`~repro.core.candidates` identifies isolation candidates and
   their fanin/fanout candidate relationships with multiplexing
   functions (Section 4.1);
3. :mod:`~repro.core.savings` estimates primary and secondary power
   savings from measured activity (Sections 4.2–4.3);
4. :mod:`~repro.core.cost` scores candidates with ``h(c) = ω_p·rP −
   ω_a·rA`` and slack rejection (Section 5.1);
5. :mod:`~repro.core.isolate` rewrites the netlist with AND/OR/LAT
   isolation banks and synthesized activation logic (Section 5.2);
6. :mod:`~repro.core.algorithm` iterates 2–5 per combinational block
   until no candidate clears ``h_min`` (Algorithm 1).
"""

from repro.core.activation import (
    ActivationAnalysis,
    derive_activation_functions,
    net_activation_function,
)
from repro.core.candidates import (
    FaninLink,
    FanoutLink,
    IsolationCandidate,
    find_candidates,
)
from repro.core.savings import SavingsEstimate, SavingsModel
from repro.core.cost import CostModel, CostWeights
from repro.core.isolate import IsolationInstance, IsolationStyle, isolate_candidate
from repro.core.algorithm import (
    IsolationConfig,
    IsolationResult,
    IterationRecord,
    StageTimings,
    isolate_design,
)
from repro.core.report import StyleComparison, compare_styles, format_comparison_table
from repro.core.explore import RankedCandidate, format_ranking, rank_candidates
from repro.core.lookahead import derive_with_lookahead

__all__ = [
    "ActivationAnalysis",
    "derive_activation_functions",
    "net_activation_function",
    "IsolationCandidate",
    "FaninLink",
    "FanoutLink",
    "find_candidates",
    "SavingsModel",
    "SavingsEstimate",
    "CostModel",
    "CostWeights",
    "IsolationStyle",
    "IsolationInstance",
    "isolate_candidate",
    "IsolationConfig",
    "IsolationResult",
    "IterationRecord",
    "StageTimings",
    "isolate_design",
    "StyleComparison",
    "compare_styles",
    "format_comparison_table",
    "RankedCandidate",
    "rank_candidates",
    "format_ranking",
    "derive_with_lookahead",
]
