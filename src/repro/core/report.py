"""Result tables in the format of the paper's Tables 1 and 2.

:func:`compare_styles` runs the full Algorithm-1 flow once per isolation
style on the same design/stimulus and collects a
:class:`StyleComparison`: power, area and worst slack for the
non-isolated design and each isolated variant, with the percentage
deltas the paper reports.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.algorithm import (
    IsolationConfig,
    IsolationResult,
    StimulusSource,
    _stimulus_of,
    isolate_design,
)
from repro.netlist.design import Design
from repro.power.library import TechnologyLibrary, default_library
from repro.runconfig import RunConfig, resolve_run_config

#: Row order of the paper's tables.
STYLE_ROWS = ("non-isolated", "AND-isolated", "OR-isolated", "LAT-isolated")
_STYLE_OF_ROW = {"AND-isolated": "and", "OR-isolated": "or", "LAT-isolated": "latch"}


@dataclass
class StyleRow:
    """One row: absolute metrics plus deltas vs the non-isolated design.

    ``pass_savings`` (pass name -> estimated net mW) is populated only
    by multi-pass comparisons (``compare_styles(..., passes=[...])``).
    """

    label: str
    power_mw: float
    area: float
    slack: float
    power_reduction: Optional[float] = None
    area_increase: Optional[float] = None
    slack_reduction: Optional[float] = None
    pass_savings: Optional[Dict[str, float]] = None


@dataclass
class StyleComparison:
    """A full Table-1/Table-2 style comparison."""

    design_name: str
    rows: List[StyleRow] = field(default_factory=list)
    results: Dict[str, IsolationResult] = field(default_factory=dict)
    #: Full optimizer results, keyed by style — populated only when the
    #: comparison ran with an explicit pass list.
    pass_results: Dict[str, "object"] = field(default_factory=dict)

    def row(self, label: str) -> StyleRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def compare_styles(
    design: Design,
    stimulus: StimulusSource,
    config: Optional[IsolationConfig] = None,
    library: Optional[TechnologyLibrary] = None,
    styles: Optional[List[str]] = None,
    run: Optional[RunConfig] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    engine: Optional[str] = None,
    passes: Optional[List[str]] = None,
) -> StyleComparison:
    """Run isolation once per style and tabulate paper-style rows.

    Run control (``cycles``, ``warmup``, ``engine``) lives on ``config``;
    ``run=RunConfig(...)`` and ``engine=`` override it, and bare
    ``cycles=``/``warmup=`` are deprecated aliases.

    With ``passes=["isolation", "clock_gating"]`` each style row runs
    the full :func:`repro.opt.optimize` pass pipeline instead of
    isolation alone; rows then carry per-pass estimated savings in
    :attr:`StyleRow.pass_savings` and the comparison keeps the full
    :class:`~repro.opt.OptimizeResult` per style in ``pass_results``.
    """
    base_config = config or IsolationConfig()
    if run is not None or engine is not None or cycles is not None or warmup is not None:
        cfg = resolve_run_config(
            run,
            defaults=RunConfig(
                cycles=base_config.cycles,
                warmup=base_config.warmup,
                engine=base_config.engine,
            ),
            stacklevel=3,
            engine=engine,
            cycles=cycles,
            warmup=warmup,
        )
        base_config = dataclasses.replace(
            base_config, cycles=cfg.cycles, warmup=cfg.warmup, engine=cfg.engine
        )
    library = library or default_library()
    styles = styles or ["and", "or", "latch"]

    # With workers > 1 the per-style Algorithm-1 runs are independent, so
    # they go to the process pool (repro.parallel.isolate_styles); each
    # pooled run scores serially to avoid nested pools. Results are
    # bit-exact with the serial loop for deterministic stimulus sources.
    from repro.parallel.pool import WorkerPool
    from repro.parallel.scoring import isolate_styles

    style_configs = [
        dataclasses.replace(base_config, style=style) for style in styles
    ]
    optimize_results = None
    if passes is not None:
        # Multi-pass comparison: the per-candidate scoring inside each
        # optimize run is what the pool accelerates; styles run serially.
        from repro.opt import optimize

        optimize_results = [
            optimize(
                design,
                lambda: _stimulus_of(stimulus),
                passes=passes,
                config=style_config,
                library=library,
            )
            for style_config in style_configs
        ]
        results = [opt.to_isolation_result() for opt in optimize_results]
    else:
        with WorkerPool(base_config.workers) as pool:
            results = isolate_styles(
                design, lambda: _stimulus_of(stimulus), style_configs, library, pool=pool
            )

    comparison = StyleComparison(design_name=design.name)
    baseline_row: Optional[StyleRow] = None
    for index, (style, result) in enumerate(zip(styles, results)):
        comparison.results[style] = result
        if optimize_results is not None:
            comparison.pass_results[style] = optimize_results[index]
        if baseline_row is None:
            baseline_row = StyleRow(
                label="non-isolated",
                power_mw=result.baseline.power_mw,
                area=result.baseline.area,
                slack=result.baseline.worst_slack,
            )
            comparison.rows.append(baseline_row)
        label = {
            "and": "AND-isolated",
            "or": "OR-isolated",
            "latch": "LAT-isolated",
        }[style]
        comparison.rows.append(
            StyleRow(
                label=label,
                power_mw=result.final.power_mw,
                area=result.final.area,
                slack=result.final.worst_slack,
                power_reduction=result.power_reduction,
                area_increase=result.area_increase,
                slack_reduction=result.slack_reduction,
                pass_savings=(
                    optimize_results[index].per_pass_net_mw()
                    if optimize_results is not None
                    else None
                ),
            )
        )
    return comparison


def format_comparison_table(comparison: StyleComparison) -> str:
    """Render a :class:`StyleComparison` like the paper's tables.

    Multi-pass comparisons get one extra column per pass with the
    estimated net savings (mW) that pass contributed to the row.
    """
    pass_names: List[str] = []
    for row in comparison.rows:
        for name in row.pass_savings or {}:
            if name not in pass_names:
                pass_names.append(name)
    pass_header = "".join(f" {name + '[mW]':>16}" for name in pass_names)
    lines = [
        f"Design {comparison.design_name!r}: power / area / slack by isolation style",
        f"{'':<14} {'Power[mW]':>10} {'%red':>8} {'Area[um2]':>12} {'%inc':>8} "
        f"{'Slack[ns]':>10} {'%red':>8}" + pass_header,
    ]
    for row in comparison.rows:
        power_pct = f"{row.power_reduction:+.1%}" if row.power_reduction is not None else "n/a"
        area_pct = f"{row.area_increase:+.1%}" if row.area_increase is not None else "n/a"
        slack_pct = (
            f"{row.slack_reduction:+.1%}" if row.slack_reduction is not None else "n/a"
        )
        pass_cells = ""
        for name in pass_names:
            if row.pass_savings is None:
                pass_cells += f" {'n/a':>16}"
            else:
                pass_cells += f" {row.pass_savings.get(name, 0.0):>+16.4f}"
        lines.append(
            f"{row.label:<14} {row.power_mw:>10.4f} {power_pct:>8} "
            f"{row.area:>12.0f} {area_pct:>8} {row.slack:>10.3f} {slack_pct:>8}"
            + pass_cells
        )
    return "\n".join(lines)
