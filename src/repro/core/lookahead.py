"""One-cycle look-ahead activation functions (the Section 3 extension).

The paper's baseline sets ``f_r⁺ := 1`` for every register because the
general case "requires a look-ahead to pre-compute signal values in
subsequent clock cycles", and proposes — without implementing — "a
structural analysis of the fanin" as one way to do it. This module
implements exactly that structural look-ahead, in the one situation
where a single-cycle prediction is *exact*:

A **free-running register** (no load enable) is overwritten every clock
edge, so the value it captures at edge ``t`` is readable only during
cycle ``t+1``. Its next-cycle activation ``f_r⁺`` is therefore the
register output's ordinary activation function with every control
variable replaced by a *prediction* of its value one cycle ahead:

* a variable sampling a free-running register's output predicts to the
  register's **current D input** (tap the wire in front of the flop);
* a variable sampling an **enabled** register's output predicts to
  ``EN·D + EN̄·Q`` (the mux semantics of the enable);
* constants predict to themselves;
* glue logic is expanded with
  :func:`repro.core.controlfn.control_function` first and each atomic
  variable predicted recursively;
* a variable fed by a **primary input** (or a datapath module) is
  unpredictable — the register falls back to the paper's ``f_r⁺ = 1``.

Enabled registers always keep ``f_r⁺ = 1``: their contents have an
unbounded lifetime, so a one-cycle window cannot cover all future uses.

:func:`derive_with_lookahead` iterates the construction ``depth`` times
so pipelines of free-running registers benefit transitively, and returns
a standard :class:`~repro.core.activation.ActivationAnalysis` usable by
the whole isolation pipeline. Soundness is enforced the same way as the
baseline's (the property tests and equivalence checks run over it).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.boolean.expr import FALSE, TRUE, Const, Expr, and_, not_, or_, var
from repro.boolean.simplify import simplify
from repro.core.activation import ActivationAnalysis, derive_activation_functions
from repro.core.controlfn import control_function
from repro.errors import IsolationError
from repro.netlist.bitref import format_bitref, parse_bitref
from repro.netlist.cells import Cell
from repro.netlist.design import Design
from repro.netlist.ports import Constant
from repro.netlist.seq import Register


class Unpredictable(IsolationError):
    """A next-cycle value depends on an unknowable signal (e.g. a PI)."""


def _predict_atom(design: Design, name: str, _depth: int) -> Expr:
    """Next-cycle value of one atomic control variable, as a current-cycle
    expression. Raises :class:`Unpredictable` when impossible."""
    net, bit = parse_bitref(design, name)
    driver = net.driver
    if driver is None:
        raise Unpredictable(name)  # primary-input net
    cell = driver.cell
    if isinstance(cell, Constant):
        return TRUE if (cell.value >> bit) & 1 else FALSE
    if isinstance(cell, Register):
        d_net = cell.net("D")
        d_ref = var(format_bitref(d_net, bit if d_net.width > 1 else None))
        if not cell.has_enable:
            return d_ref
        enable = var(format_bitref(cell.net("EN")))
        current = var(name)
        return or_(and_(enable, d_ref), and_(not_(enable), current))
    if cell.kind == "pi" or cell.is_datapath_module:
        raise Unpredictable(name)
    # Glue logic: expand to atoms first, then predict those.
    if net.width == 1:
        expanded = control_function(net)
        if expanded == var(net.name):
            raise Unpredictable(name)  # expansion made no progress
        return predict_next(design, expanded, _depth + 1)
    raise Unpredictable(name)


def predict_next(design: Design, expr: Expr, _depth: int = 0) -> Expr:
    """Rewrite ``expr`` (over current-cycle control variables) into an
    expression whose *current* value equals ``expr``'s value **next**
    cycle. Raises :class:`Unpredictable` when any variable cannot be
    predicted."""
    if _depth > 16:
        raise Unpredictable("prediction recursion too deep")
    substitution: Dict[str, Expr] = {}
    for name in expr.support():
        substitution[name] = _predict_atom(design, name, _depth)
    return simplify(expr.substitute(substitution))


def register_lookahead_functions(
    design: Design, analysis: ActivationAnalysis
) -> Dict[Cell, Expr]:
    """``f_r⁺`` for every free-running register where prediction succeeds.

    ``analysis`` supplies the current-cycle activation function of each
    register's output net; predicting it one cycle ahead gives ``f_r⁺``.
    """
    result: Dict[Cell, Expr] = {}
    for register in design.registers:
        if register.has_enable:
            continue  # unbounded value lifetime: keep f_r+ = 1
        q_net = register.net("Q")
        f_q = analysis.net_functions.get(q_net)
        if f_q is None or f_q.is_true:
            continue  # nothing to gain
        try:
            result[register] = predict_next(design, f_q)
        except Unpredictable:
            continue
    return result


def derive_with_lookahead(
    design: Design, depth: int = 1, simplified: bool = True
) -> ActivationAnalysis:
    """Activation analysis with ``depth`` rounds of register look-ahead.

    ``depth = 0`` reproduces the paper's baseline. Each extra round lets
    the look-ahead see one register stage further down a free-running
    pipeline; rounds converge quickly (a round that changes nothing ends
    the iteration early).
    """
    analysis = derive_activation_functions(design, simplified=simplified)
    for _round in range(depth):
        lookahead = register_lookahead_functions(design, analysis)
        if not lookahead:
            break
        analysis = derive_activation_functions(
            design, simplified=simplified, register_lookahead=lookahead
        )
    return analysis
