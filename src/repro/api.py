"""The one-stop facade: ``repro.api``.

Everything the library does — power estimation, candidate ranking,
low-power optimization (operand isolation, clock gating, and any
registered :mod:`repro.opt` pass), style comparison, activation
derivation — is reachable from one :class:`Session` object bound to a
design, a stimulus recipe and a :class:`~repro.runconfig.RunConfig`::

    from repro import api

    session = api.Session(designs.design1(), run=api.RunConfig(engine="compiled"))
    print(session.estimate().total_power_mw)
    print(session.optimize(passes=["isolation", "clock_gating"]).summary())
    print(api.format_ranking(session.rank()))

Designs come from :func:`load` / :func:`loads` (textual netlist format)
or any generator in :mod:`repro.designs`. When no stimulus is given, a
fresh :func:`~repro.sim.stimulus.random_stimulus` with the session's
seed is built per run, so repeated calls see identical statistics.

The deep import paths (``repro.core.isolate_design``,
``repro.power.estimate_power``, ...) keep working; this module only
bundles them. See ``docs/api.md`` for the full facade map.
"""

from __future__ import annotations

import contextlib
import copy
from typing import List, Optional

from repro import obs
from repro.core.algorithm import (
    IsolationConfig,
    IsolationResult,
    StageTimings,
    isolate_design,
)
from repro.core.activation import ActivationAnalysis, derive_activation_functions
from repro.core.cost import CostWeights
from repro.core.explore import RankedCandidate, format_ranking, rank_candidates
from repro.core.report import (
    StyleComparison,
    compare_styles,
    format_comparison_table,
)
from repro.diagnostics import Diagnostic
from repro.netlist import textio
from repro.netlist.design import Design
from repro.netlist.validate import validation_problems
from repro.opt import OptimizeResult, available_passes, optimize
from repro.power.estimator import (
    PowerBreakdown,
    PowerInterval,
    estimate_power,
    estimate_power_ci,
)
from repro.power.library import TechnologyLibrary, default_library
from repro.runconfig import ENGINES, RunConfig
from repro.sim.compile import design_fingerprint
from repro.sim.engine import SimulationResult, make_simulator
from repro.sim.stimulus import Stimulus, random_stimulus


class Session:
    """A design plus its run context, with every analysis one call away.

    Parameters
    ----------
    design:
        The design under analysis (never modified; transforms work on
        copies, as in :func:`~repro.core.algorithm.isolate_design`).
    stimulus:
        A stimulus object (deep-copied per run so every run sees
        identical statistics), a zero-argument factory returning a fresh
        stimulus, or ``None`` to use a random stimulus seeded with
        ``run.seed``.
    library:
        Technology library; defaults to
        :func:`~repro.power.library.default_library`.
    run:
        Default :class:`RunConfig` for every method; each method also
        accepts a per-call ``run=`` override. With ``trace=True`` every
        run records spans and metrics into the session's observability
        recorder — read them back with :meth:`trace` / :meth:`metrics`
        or export with :meth:`write_trace`.
    """

    def __init__(
        self,
        design: Design,
        stimulus=None,
        library: Optional[TechnologyLibrary] = None,
        run: Optional[RunConfig] = None,
    ) -> None:
        self.design = design
        self.library = library or default_library()
        self.run = run or RunConfig()
        self._stimulus = stimulus
        self._recorder: Optional[obs.Recorder] = None

    # ------------------------------------------------------------------
    def _run(self, run: Optional[RunConfig]) -> RunConfig:
        return run if run is not None else self.run

    def _recording(self, run: Optional[RunConfig]):
        """Context manager activating the session recorder when tracing.

        Traced runs share one recorder, so the session trace accumulates
        every traced call made through this facade.
        """
        if not self._run(run).trace:
            return contextlib.nullcontext()
        if self._recorder is None:
            self._recorder = obs.Recorder()
        return obs.use(self._recorder)

    # ------------------------------------------------------------------
    def trace(self) -> List[obs.Span]:
        """Spans recorded by traced runs (empty before the first one)."""
        return self._recorder.tracer.roots if self._recorder else []

    def metrics(self) -> obs.MetricsRegistry:
        """Metrics recorded by traced runs (empty before the first one)."""
        return self._recorder.metrics if self._recorder else obs.MetricsRegistry()

    def write_trace(self, path: str) -> None:
        """Export the session trace as Chrome trace-event JSON (Perfetto)."""
        obs.write_chrome_trace(
            path, self.trace(), metrics=self.metrics().to_dict()
        )

    def stimulus(self, run: Optional[RunConfig] = None) -> Stimulus:
        """One fresh stimulus per call (identical statistics each time)."""
        if self._stimulus is None:
            return random_stimulus(self.design, seed=self._run(run).seed)
        if callable(self._stimulus) and not hasattr(self._stimulus, "values"):
            return self._stimulus()
        return copy.deepcopy(self._stimulus)

    def _stimulus_source(self, run: Optional[RunConfig]):
        # isolate_design/compare_styles re-pull the stimulus per
        # estimation run themselves; hand them a factory.
        return lambda: self.stimulus(run)

    def _config(
        self,
        config: Optional[IsolationConfig],
        style: Optional[str],
        run: Optional[RunConfig],
    ) -> IsolationConfig:
        cfg = self._run(run)
        if config is None:
            config = IsolationConfig(
                style=style or "and",
                cycles=cfg.cycles,
                warmup=cfg.warmup,
                engine=cfg.engine,
                workers=cfg.workers,
            )
        elif style is not None and style != config.style:
            import dataclasses

            config = dataclasses.replace(config, style=style)
        return config

    # ------------------------------------------------------------------
    def simulate(
        self, monitors=None, run: Optional[RunConfig] = None
    ) -> SimulationResult:
        """Run the session's stimulus through the design once."""
        cfg = self._run(run)
        with self._recording(run):
            return make_simulator(self.design, cfg.engine).run(
                self.stimulus(run), cfg.cycles, monitors=monitors, warmup=cfg.warmup
            )

    def estimate(self, run: Optional[RunConfig] = None) -> PowerBreakdown:
        """Power breakdown of the design under the session stimulus."""
        with self._recording(run):
            return estimate_power(
                self.design,
                self.stimulus(run),
                library=self.library,
                run=self._run(run),
            )

    def estimate_ci(
        self,
        batch_size: int = 32,
        run: Optional[RunConfig] = None,
        stimulus_kwargs: Optional[dict] = None,
    ) -> PowerInterval:
        """Monte-Carlo power estimate with a 95% confidence interval.

        Runs ``batch_size`` independent replications through the sharded
        batch engine (parallel when ``run.workers > 1``; bit-exact across
        worker counts and across engines — ``engine="bitslice"`` maps
        replications onto packed bit lanes and is the fastest backend
        here). The replications use a fresh
        :class:`~repro.sim.batch.BatchRandomStimulus` derived from the
        session seed — the session's own stimulus object, if any, is not
        consulted (the batch engine generates its lanes vectorised).
        """
        with self._recording(run):
            return estimate_power_ci(
                self.design,
                batch_size=batch_size,
                run=self._run(run),
                library=self.library,
                stimulus_kwargs=stimulus_kwargs,
            )

    def optimize(
        self,
        passes=("isolation", "clock_gating"),
        style: Optional[str] = None,
        config: Optional[IsolationConfig] = None,
        run: Optional[RunConfig] = None,
    ) -> OptimizeResult:
        """Run the greedy low-power loop with the named transform passes.

        This is the primary optimization entry point: ``passes`` lists
        registered pass families (see
        :func:`repro.opt.available_passes`) competing under one shared
        ``CostWeights``/``h_min`` budget; the default applies operand
        isolation and register clock gating jointly.
        :meth:`isolate` is the legacy single-pass spelling.
        """
        with self._recording(run):
            return optimize(
                self.design,
                self._stimulus_source(run),
                passes=passes,
                config=self._config(config, style, run),
                library=self.library,
            )

    def isolate(
        self,
        style: Optional[str] = None,
        config: Optional[IsolationConfig] = None,
        run: Optional[RunConfig] = None,
    ) -> IsolationResult:
        """Run Algorithm 1; returns the full :class:`IsolationResult`.

        Legacy spelling of :meth:`optimize` with the isolation pass
        alone — same loop, bit-identical result, narrower report.
        """
        with self._recording(run):
            return isolate_design(
                self.design,
                self._stimulus_source(run),
                self._config(config, style, run),
                self.library,
            )

    def rank(
        self,
        style: str = "and",
        weights: Optional[CostWeights] = None,
        clock_period: Optional[float] = None,
        lookahead_depth: int = 0,
        run: Optional[RunConfig] = None,
    ) -> List[RankedCandidate]:
        """What-if assessment of every candidate, best first."""
        with self._recording(run):
            return rank_candidates(
                self.design,
                self.stimulus(run),
                style=style,
                weights=weights,
                library=self.library,
                clock_period=clock_period,
                lookahead_depth=lookahead_depth,
                run=self._run(run),
            )

    def compare(
        self,
        styles: Optional[List[str]] = None,
        config: Optional[IsolationConfig] = None,
        run: Optional[RunConfig] = None,
    ) -> StyleComparison:
        """Paper-style table comparing isolation styles."""
        with self._recording(run):
            return compare_styles(
                self.design,
                self._stimulus_source(run),
                self._config(config, None, run),
                self.library,
                styles=styles,
            )

    def activation(self) -> ActivationAnalysis:
        """Derived activation functions of every datapath module."""
        with self._recording(None):
            return derive_activation_functions(self.design)

    def sweep(
        self,
        spec: Optional[dict] = None,
        store=None,
        client=None,
        service=None,
        limit: Optional[int] = None,
        progress=None,
    ):
        """Design-space exploration anchored on this session's design.

        ``spec`` is a :class:`repro.sweep.SweepSpec` or its dict form;
        when the dict omits ``designs`` the session's design is the
        (single) designs axis, and when it omits ``run`` the session's
        :class:`RunConfig` applies to every point. The remaining
        arguments pass straight to :func:`repro.sweep.run_sweep` —
        ``store`` (an :class:`~repro.sweep.ExperimentStore` or
        directory path) makes the sweep resumable, ``client`` /
        ``service`` dispatch points through the serve layer instead of
        computing inline. Returns the
        :class:`~repro.sweep.SweepResult`. See ``docs/sweeps.md``.
        """
        from repro.sweep import SweepSpec, run_sweep

        if spec is None:
            spec = {}
        if isinstance(spec, dict):
            payload = dict(spec)
            if "designs" not in payload:
                payload["designs"] = [{"text": textio.dumps(self.design)}]
            if "run" not in payload:
                payload["run"] = self.run.to_dict()
            spec = SweepSpec.from_dict(payload)
        return run_sweep(
            spec,
            store=store,
            client=client,
            service=service,
            limit=limit,
            progress=progress,
        )

    def fingerprint(self) -> str:
        """Content-addressed fingerprint of the session's design.

        See :func:`repro.sim.compile.design_fingerprint`: structurally
        identical rebuilds collide, any structural edit changes the
        digest. Combined with :meth:`RunConfig.fingerprint` this is the
        identity under which :mod:`repro.serve` caches results.
        """
        return design_fingerprint(self.design)

    def validate(self, allow_dangling: bool = False) -> List[Diagnostic]:
        """Structural diagnostics of the design (empty list = healthy).

        Returns the same :class:`~repro.diagnostics.Diagnostic` records
        the ``repro validate`` CLI subcommand and the fault campaign
        report; callers decide whether warnings matter to them
        (``d.severity == "error"`` is the hard-failure subset).
        """
        with self._recording(None):
            return validation_problems(self.design, allow_dangling=allow_dangling)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(design={self.design.name!r}, "
            f"engine={self.run.engine!r}, cycles={self.run.cycles})"
        )


def load(path: str, **session_kwargs) -> Session:
    """Read a textual netlist file into a ready-to-use :class:`Session`."""
    return Session(textio.load(path), **session_kwargs)


def loads(text: str, **session_kwargs) -> Session:
    """Parse textual netlist source into a ready-to-use :class:`Session`."""
    return Session(textio.loads(text), **session_kwargs)


__all__ = [
    "Session",
    "load",
    "loads",
    "design_fingerprint",
    "Diagnostic",
    "RunConfig",
    "ENGINES",
    "IsolationConfig",
    "IsolationResult",
    "OptimizeResult",
    "StageTimings",
    "CostWeights",
    "PowerBreakdown",
    "PowerInterval",
    "RankedCandidate",
    "StyleComparison",
    "estimate_power",
    "estimate_power_ci",
    "optimize",
    "available_passes",
    "isolate_design",
    "rank_candidates",
    "compare_styles",
    "format_ranking",
    "format_comparison_table",
]
