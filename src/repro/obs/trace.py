"""Structured tracing: nested spans with wall-clock-free timestamps.

A **span** is one timed region of the pipeline — a netlist parse, an
activation derivation, the scoring of one candidate, one pool task. Spans
nest: the :class:`Tracer` keeps a stack, so a span opened while another
is running becomes its child, and the finished run is a forest of span
trees mirroring the pipeline's call structure.

Timestamps come from :func:`time.perf_counter_ns` — monotonic,
nanosecond-resolution, and (on Linux, where worker processes are forked)
sharing one epoch across the pool, so worker-side spans line up with the
parent's timeline without clock translation.

Two serialisations are provided:

* :func:`spans_to_dicts` / :func:`spans_from_dicts` — the lossless,
  picklable exchange format worker processes ship their spans back in
  (see :meth:`Tracer.adopt` for the deterministic merge);
* :func:`chrome_trace_events` / :func:`write_chrome_trace` /
  :func:`read_chrome_trace` — the Chrome trace-event JSON format, which
  loads directly in Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``. Timestamps are exported as fractional
  microseconds carrying full nanosecond precision, so an exported trace
  reloads to the *identical* span tree (round-trip tested).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Default track label for spans recorded by the parent process.
MAIN_TRACK = "main"


@dataclass
class Span:
    """One timed, attributed region; ``children`` are fully contained."""

    name: str
    category: str = ""
    start_ns: int = 0
    end_ns: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    track: str = MAIN_TRACK

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def set(self, **attrs: object) -> "Span":
        """Attach/overwrite attributes mid-span; returns the span."""
        self.attrs.update(attrs)
        return self

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanHandle:
    """Context manager closing one span on exit (reused by ``Tracer.span``)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._tracer.end(self.span)


class Tracer:
    """Records a forest of nested spans via a span stack.

    Not thread-safe by design: one tracer per recorder per process; the
    pool exchanges *finished* spans (plain dicts), never live tracers.
    """

    def __init__(self, track: str = MAIN_TRACK) -> None:
        self.track = track
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    def start(self, name: str, category: str = "", **attrs: object) -> Span:
        span = Span(
            name=name,
            category=category,
            start_ns=time.perf_counter_ns(),
            attrs=dict(attrs),
            track=self.track,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        # Close any dangling descendants too (exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end_ns == 0:
                dangling.end_ns = span.end_ns
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def span(self, name: str, category: str = "", **attrs: object) -> _SpanHandle:
        """``with tracer.span("scoring", candidate="mul0"): ...``"""
        return _SpanHandle(self, self.start(name, category, **attrs))

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def adopt(self, payload: Sequence[dict], track: Optional[str] = None) -> List[Span]:
        """Graft serialized spans (a worker's output) into the live tree.

        The adopted spans become children of the currently open span (or
        roots). Callers adopt worker payloads **in task order**, so the
        merged tree is deterministic regardless of completion order.
        ``track`` relabels every adopted span; by default the tracks the
        worker recorded are kept.
        """
        spans = spans_from_dicts(payload)
        if track is not None:
            for span in spans:
                for node in span.walk():
                    node.track = track
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)
        return spans


# ----------------------------------------------------------------------
# Plain-dict serialisation (worker <-> parent exchange format)
# ----------------------------------------------------------------------
def spans_to_dicts(spans: Sequence[Span]) -> List[dict]:
    """Lossless, picklable representation of a span forest."""
    return [
        {
            "name": s.name,
            "category": s.category,
            "start_ns": s.start_ns,
            "end_ns": s.end_ns,
            "attrs": dict(s.attrs),
            "track": s.track,
            "children": spans_to_dicts(s.children),
        }
        for s in spans
    ]


def spans_from_dicts(payload: Sequence[dict]) -> List[Span]:
    """Inverse of :func:`spans_to_dicts`."""
    return [
        Span(
            name=d["name"],
            category=d.get("category", ""),
            start_ns=d["start_ns"],
            end_ns=d["end_ns"],
            attrs=dict(d.get("attrs", {})),
            track=d.get("track", MAIN_TRACK),
            children=spans_from_dicts(d.get("children", ())),
        )
        for d in payload
    ]


def span_shape(spans: Sequence[Span]) -> tuple:
    """Timing-free structural fingerprint: (name, child shapes) nested.

    Two traces of the same run compare equal under this view even though
    every timestamp differs — the determinism the pool merge guarantees.
    """
    return tuple((s.name, span_shape(s.children)) for s in spans)


def iter_spans(spans: Sequence[Span]):
    """Every span of a forest, depth-first."""
    for span in spans:
        yield from span.walk()


def find_spans(spans: Sequence[Span], name: str) -> List[Span]:
    """All spans with the given name, depth-first order."""
    return [s for s in iter_spans(spans) if s.name == name]


def aggregate_spans(spans: Sequence[Span]) -> List[dict]:
    """Per-name rollup (count / total / self time), longest first.

    *Self* time excludes child spans, so the rollup answers "where does
    the time actually go" rather than double-counting nested stages.
    """
    rollup: Dict[str, dict] = {}
    for span in iter_spans(spans):
        entry = rollup.setdefault(
            span.name, {"name": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.duration_s
        entry["self_s"] += max(
            0.0, span.duration_s - sum(c.duration_s for c in span.children)
        )
    return sorted(rollup.values(), key=lambda e: -e["total_s"])


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def _json_safe(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace_events(spans: Sequence[Span], pid: Optional[int] = None) -> List[dict]:
    """Flatten a span forest into complete ('X') trace events.

    One integer ``tid`` per distinct span track, announced with
    ``thread_name`` metadata so Perfetto labels the rows ("main",
    "task-0", ...). Timestamps/durations are microseconds with
    fractional nanosecond precision.
    """
    pid = pid if pid is not None else os.getpid()
    tids: Dict[str, int] = {}
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )
        return tids[track]

    for span in iter_spans(spans):
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category or "repro",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": pid,
                "tid": tid_of(span.track),
                "args": {k: _json_safe(v) for k, v in span.attrs.items()},
            }
        )
    return events


def chrome_trace(spans: Sequence[Span], metrics: Optional[dict] = None) -> dict:
    """The full Chrome trace JSON document (plus optional metrics blob)."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"repro_metrics": metrics}
    return document


def write_chrome_trace(
    path: str, spans: Sequence[Span], metrics: Optional[dict] = None
) -> None:
    """Write a Perfetto-loadable trace file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, metrics=metrics), fh, indent=1)
        fh.write("\n")


def read_chrome_trace(path: str) -> List[Span]:
    """Reload a trace written by :func:`write_chrome_trace`.

    Rebuilds the span forest from the flat event list: events are grouped
    per track, sorted by start time (longer spans first on ties, so
    parents precede the children they contain), and re-nested by interval
    containment. For traces produced by this module the reconstruction is
    exact — see the round-trip test.
    """
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    events = document["traceEvents"] if isinstance(document, dict) else document
    track_names: Dict[tuple, str] = {}
    complete: List[dict] = []
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            track_names[(event.get("pid"), event.get("tid"))] = event["args"]["name"]
        elif event.get("ph") == "X":
            complete.append(event)

    by_track: Dict[tuple, List[dict]] = {}
    for event in complete:
        by_track.setdefault((event.get("pid"), event.get("tid")), []).append(event)

    roots: List[Span] = []
    for key in sorted(by_track, key=lambda k: (str(k[0]), str(k[1]))):
        track = track_names.get(key, MAIN_TRACK)
        track_events = sorted(
            by_track[key], key=lambda e: (e["ts"], -e.get("dur", 0.0))
        )
        stack: List[Span] = []
        for event in track_events:
            start_ns = round(event["ts"] * 1000.0)
            end_ns = start_ns + round(event.get("dur", 0.0) * 1000.0)
            span = Span(
                name=event["name"],
                category="" if event.get("cat") == "repro" else event.get("cat", ""),
                start_ns=start_ns,
                end_ns=end_ns,
                attrs=dict(event.get("args", {})),
                track=track,
            )
            while stack and stack[-1].end_ns <= span.start_ns:
                stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                roots.append(span)
            stack.append(span)
    return roots
