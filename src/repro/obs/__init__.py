"""repro.obs — zero-dependency tracing + metrics for the whole pipeline.

One *recorder* is current at any time **per context**: the recorder
lives in a :class:`contextvars.ContextVar`, so each thread (and each
``contextvars`` context) resolves instrumentation calls independently —
a recorder installed in one request-handling thread is invisible to
every other thread. That is what lets the threaded job server
(:mod:`repro.serve`) give every request its own trace without
cross-request pollution. By default the current recorder is the
:data:`NULL` recorder: every facade call (``obs.span``, ``obs.counter``,
...) then resolves to a cached no-op object, so instrumented call sites
cost a function call and one branch — nothing is allocated, timed or
stored. The committed benchmark (``benchmarks/test_perf_obs.py``) pins
this at <2% overhead on ``isolate_design``.

Enabling observability swaps in an active :class:`Recorder` bundling a
:class:`~repro.obs.trace.Tracer` (nested spans) and a
:class:`~repro.obs.metrics.MetricsRegistry` (counters/gauges/
histograms)::

    from repro import obs

    with obs.use(obs.Recorder()) as rec:
        result = isolate_design(design, stimulus)
    obs.write_chrome_trace("out.json", rec.tracer.roots,
                           metrics=rec.metrics.to_dict())

Higher layers wrap this for you: ``RunConfig(trace=True)``,
``Session.trace()`` / ``Session.metrics()``, the ``repro profile``
subcommand and ``--trace FILE`` on every CLI subcommand. Worker
processes get their own recorder per task; finished spans and metric
snapshots ride back with the task result and are merged
deterministically (task order, not completion order) by the pool.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    MAIN_TRACK,
    Span,
    Tracer,
    aggregate_spans,
    chrome_trace,
    chrome_trace_events,
    find_spans,
    iter_spans,
    read_chrome_trace,
    span_shape,
    spans_from_dicts,
    spans_to_dicts,
    write_chrome_trace,
)

__all__ = [
    "Recorder",
    "NULL",
    "current",
    "enabled",
    "use",
    "enable",
    "disable",
    "span",
    "counter",
    "gauge",
    "histogram",
    "current_span",
    # re-exports
    "Span",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MAIN_TRACK",
    "spans_to_dicts",
    "spans_from_dicts",
    "span_shape",
    "iter_spans",
    "find_spans",
    "aggregate_spans",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "read_chrome_trace",
]


class Recorder:
    """An active recorder: one tracer + one metrics registry."""

    enabled = True

    def __init__(self, track: str = MAIN_TRACK) -> None:
        self.tracer = Tracer(track=track)
        self.metrics = MetricsRegistry()

    # Tracing ----------------------------------------------------------
    def span(self, name: str, category: str = "", **attrs: object):
        return self.tracer.span(name, category, **attrs)

    @property
    def current_span(self) -> Optional[Span]:
        return self.tracer.current

    # Metrics ----------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.metrics.histogram(name, **labels)

    # Worker exchange --------------------------------------------------
    def trace_payload(self) -> list:
        """Finished spans as picklable dicts (worker -> parent)."""
        return spans_to_dicts(self.tracer.roots)

    def absorb(
        self,
        trace_payload,
        metrics: Optional[MetricsRegistry],
        track: Optional[str] = None,
    ) -> None:
        """Merge one worker task's recording under the current span."""
        if trace_payload:
            self.tracer.adopt(trace_payload, track=track)
        if metrics is not None:
            self.metrics.merge(metrics)


class _NullSpan:
    """Cached stand-in for a Span when recording is off."""

    __slots__ = ()

    name = ""
    category = ""
    start_ns = 0
    end_ns = 0
    duration_ns = 0
    duration_s = 0.0
    track = MAIN_TRACK

    @property
    def attrs(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class _NullInstrument:
    """Cached stand-in for Counter/Gauge/Histogram when recording is off."""

    __slots__ = ()

    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> float:
        return 0.0


class _NullRecorder:
    """The disabled recorder: every call returns a shared no-op object."""

    enabled = False
    current_span = None

    __slots__ = ()

    _SPAN = _NullSpan()
    _INSTRUMENT = _NullInstrument()

    def span(self, name: str, category: str = "", **attrs: object) -> _NullSpan:
        return self._SPAN

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return self._INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return self._INSTRUMENT

    def histogram(self, name: str, **labels: object) -> _NullInstrument:
        return self._INSTRUMENT

    def trace_payload(self) -> list:
        return []

    def absorb(self, trace_payload, metrics, track=None) -> None:
        pass


#: The shared disabled recorder (the default).
NULL = _NullRecorder()

# The current recorder is context-local, not a module global: each
# thread / contextvars context resolves its own recorder, so concurrent
# request handlers recording into different recorders never see each
# other's spans or metrics. A freshly started thread begins at the
# default (NULL) — install a recorder with `use()`/`enable()` inside
# the thread that records.
_current: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_recorder", default=NULL
)


def current() -> Recorder:
    """The recorder instrumentation calls resolve against right now."""
    return _current.get()


def enabled() -> bool:
    """True when an active (non-null) recorder is installed."""
    return _current.get().enabled


def span(name: str, category: str = "", **attrs: object):
    """Open a span on the current recorder (no-op context when disabled)."""
    return _current.get().span(name, category, **attrs)


def counter(name: str, **labels: object):
    return _current.get().counter(name, **labels)


def gauge(name: str, **labels: object):
    return _current.get().gauge(name, **labels)


def histogram(name: str, **labels: object):
    return _current.get().histogram(name, **labels)


def current_span() -> Optional[Span]:
    return _current.get().current_span


@contextlib.contextmanager
def use(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the duration of the block (this context).

    Context-local: a recorder installed here is seen only by code
    running in the same thread / ``contextvars`` context, so concurrent
    ``use()`` blocks on different threads are fully isolated.
    """
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)


def enable(track: str = MAIN_TRACK) -> Recorder:
    """Install (and return) a fresh active recorder until :func:`disable`.

    Affects the current thread/context only (see :func:`use`).
    """
    recorder = Recorder(track=track)
    _current.set(recorder)
    return recorder


def disable() -> None:
    """Reinstall the no-op recorder (in the current thread/context)."""
    _current.set(NULL)
