"""Zero-dependency metrics: counters, gauges and histograms with labels.

The :class:`MetricsRegistry` is the numeric companion of the tracer: it
accumulates *what happened and how much* (BDD nodes grown, program-cache
hits, pool tasks dispatched, candidates accepted/rejected by reason,
per-module toggle rates...) where spans record *when and for how long*.

Three instrument kinds, Prometheus-flavoured:

* :class:`Counter` — monotone ``inc``; merged across processes by sum;
* :class:`Gauge` — last-write-wins ``set`` (plus ``inc`` for levels);
* :class:`Histogram` — fixed-bound buckets with count/sum/min/max.

Instruments are keyed by ``(name, labels)``; labels are plain keyword
pairs (``registry.counter("candidates", reason="slack")``). Exports:
:meth:`MetricsRegistry.to_dict` (flat JSON) and
:meth:`MetricsRegistry.prometheus_text` (text exposition format).
Worker processes return ``to_dict()`` payloads which the parent folds in
with :meth:`MetricsRegistry.merge` — counter/histogram addition is
commutative, so the merged registry is order-independent.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_text(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down; ``set`` is last-write-wins."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        payload = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": {
                ("+Inf" if index == len(self.bounds) else repr(bound)): count
                for index, (bound, count) in enumerate(
                    list(zip(self.bounds, self.bucket_counts))
                    + [(math.inf, self.bucket_counts[-1])]
                )
            },
        }
        if self.count:
            payload["min"] = self.min
            payload["max"] = self.max
        return payload


class MetricsRegistry:
    """All instruments of one recorder, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}

    # ------------------------------------------------------------------
    def _get(self, factory, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory if isinstance(factory, type) else type(instrument)):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object):
        """Snapshot of one instrument, or ``None`` when never recorded."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return None if instrument is None else instrument.snapshot()

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        for (name, labels), instrument in sorted(self._instruments.items()):
            yield name, dict(labels), instrument

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Flat JSON dump: ``{"name{label=\"v\"}": snapshot}`` plus kinds."""
        payload: Dict[str, dict] = {}
        for name, labels, instrument in self:
            flat = name + _label_text(_label_key(labels))
            payload[flat] = {
                "kind": instrument.kind,
                "value": instrument.snapshot(),
            }
        return payload

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (one ``# TYPE`` per family)."""
        lines: List[str] = []
        seen_families = set()
        for name, labels, instrument in self:
            family = name.replace(".", "_")
            if family not in seen_families:
                seen_families.add(family)
                lines.append(f"# TYPE {family} {instrument.kind}")
            label_text = _label_text(_label_key(labels))
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(
                    list(instrument.bounds) + [math.inf],
                    instrument.bucket_counts,
                ):
                    cumulative += count
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    bucket_labels = _label_key(dict(labels, le=le))
                    lines.append(
                        f"{family}_bucket{_label_text(bucket_labels)} {cumulative}"
                    )
                lines.append(f"{family}_sum{label_text} {instrument.sum}")
                lines.append(f"{family}_count{label_text} {instrument.count}")
            else:
                lines.append(f"{family}{label_text} {instrument.snapshot()}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/histograms add, gauges win.

        Counter and histogram merging is commutative and associative, so
        folding worker registries in task order (or any order) yields the
        same totals.
        """
        for key, instrument in other._instruments.items():
            name, labels = key
            mine = self._instruments.get(key)
            if mine is None:
                if isinstance(instrument, Counter):
                    mine = self._get(Counter, name, dict(labels))
                elif isinstance(instrument, Gauge):
                    mine = self._get(Gauge, name, dict(labels))
                else:
                    mine = self._get(
                        lambda b=instrument.bounds: Histogram(b), name, dict(labels)
                    )
            if isinstance(instrument, Counter):
                mine.value += instrument.value
            elif isinstance(instrument, Gauge):
                mine.value = instrument.value
            else:
                if mine.bounds != instrument.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ in merge"
                    )
                mine.count += instrument.count
                mine.sum += instrument.sum
                mine.min = min(mine.min, instrument.min)
                mine.max = max(mine.max, instrument.max)
                mine.bucket_counts = [
                    a + b
                    for a, b in zip(mine.bucket_counts, instrument.bucket_counts)
                ]
