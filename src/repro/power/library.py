"""The faux standard-cell/RT-module technology library.

Absolute numbers are modelled on a generic 0.25 µm / 2.5 V process and do
*not* claim to match any foundry; what matters for reproducing the paper
is the set of **relations** between them:

* internal switched capacitance of an arithmetic module per input toggle
  is much larger than that of an isolation gate (so isolation pays off);
* a multiplier's internal activity grows with operand width (each input
  bit toggle disturbs O(width) partial-product cells) while an adder's is
  O(1) on average (short expected carry chains);
* latches cost clock/static energy every cycle and more area than plain
  gates (so LAT isolation carries a standing overhead that AND/OR
  isolation does not);
* isolation banks add one gate delay to the operand paths.

Every query takes the *cell instance*, so width- and type-dependent
scaling lives here and nowhere else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import PowerModelError
from repro.netlist.arith import ArithModule
from repro.netlist.cells import Cell, PortDir
from repro.netlist.logic import Mux
from repro.netlist.nets import Net


@dataclass(frozen=True)
class CellParams:
    """Per-kind library parameters (all per bit unless noted).

    Attributes
    ----------
    area_per_bit:
        Layout area in µm² per output bit.
    delay_fixed / delay_per_bit:
        Propagation delay in ns: ``delay_fixed + delay_per_bit * width``
        (ripple-style width dependence; 0 for log-depth structures).
    energy_in:
        Internal energy in pJ per toggled *input* bit, before the
        kind-specific activity scaling of :meth:`TechnologyLibrary.input_toggle_energy`.
    energy_out:
        Driving energy in pJ per toggled *output* bit (scaled by fanout).
    energy_static:
        Standing energy in pJ per bit per clock cycle (clock load of
        registers/latches; 0 for pure combinational cells).
    input_cap:
        Relative input pin load, used by the timing engine's fanout
        delay term.
    """

    area_per_bit: float
    delay_fixed: float
    delay_per_bit: float = 0.0
    energy_in: float = 0.02
    energy_out: float = 0.025
    energy_static: float = 0.0
    input_cap: float = 1.0


#: Baseline parameter set. Arithmetic "energy_in" values are the paper's
#: macro-model coefficients before activity scaling.
_DEFAULT_PARAMS: Dict[str, CellParams] = {
    # Boundary cells: free.
    "pi": CellParams(area_per_bit=0.0, delay_fixed=0.0, energy_in=0.0, energy_out=0.0),
    "po": CellParams(area_per_bit=0.0, delay_fixed=0.0, energy_in=0.0, energy_out=0.0),
    "const": CellParams(area_per_bit=0.0, delay_fixed=0.0, energy_in=0.0, energy_out=0.0),
    # Simple gates (bitwise, area/energy scale with width).
    "and2": CellParams(area_per_bit=12.0, delay_fixed=0.12, energy_in=0.010),
    "or2": CellParams(area_per_bit=12.0, delay_fixed=0.12, energy_in=0.010),
    "nand2": CellParams(area_per_bit=9.0, delay_fixed=0.10, energy_in=0.009),
    "nor2": CellParams(area_per_bit=9.0, delay_fixed=0.10, energy_in=0.009),
    "xor2": CellParams(area_per_bit=18.0, delay_fixed=0.16, energy_in=0.014),
    "xnor2": CellParams(area_per_bit=18.0, delay_fixed=0.16, energy_in=0.014),
    "not": CellParams(area_per_bit=6.0, delay_fixed=0.06, energy_in=0.006),
    "buf": CellParams(area_per_bit=9.0, delay_fixed=0.10, energy_in=0.008),
    # Pure wiring: a bit tap costs nothing but a tiny route delay.
    "bitsel": CellParams(area_per_bit=0.0, delay_fixed=0.01, energy_in=0.001, energy_out=0.002),
    "mux": CellParams(area_per_bit=14.0, delay_fixed=0.15, energy_in=0.012),
    # Arithmetic modules (isolation candidates).
    "add": CellParams(area_per_bit=62.0, delay_fixed=0.45, delay_per_bit=0.085, energy_in=0.075),
    "sub": CellParams(area_per_bit=66.0, delay_fixed=0.45, delay_per_bit=0.085, energy_in=0.075),
    "mul": CellParams(area_per_bit=58.0, delay_fixed=0.60, delay_per_bit=0.16, energy_in=0.055),
    "mac": CellParams(area_per_bit=70.0, delay_fixed=0.80, delay_per_bit=0.17, energy_in=0.055),
    "divmod": CellParams(area_per_bit=85.0, delay_fixed=1.10, delay_per_bit=0.30, energy_in=0.050),
    "cmp": CellParams(area_per_bit=26.0, delay_fixed=0.30, delay_per_bit=0.050, energy_in=0.045),
    "shift": CellParams(area_per_bit=30.0, delay_fixed=0.28, delay_per_bit=0.020, energy_in=0.050),
    # Sequential cells.
    "reg": CellParams(
        area_per_bit=48.0, delay_fixed=0.30, energy_in=0.060, energy_static=0.012
    ),
    "lat": CellParams(
        area_per_bit=30.0, delay_fixed=0.18, energy_in=0.045, energy_static=0.009
    ),
    # Integrated clock gate (per gated register, not per bit): standing
    # cost via energy_static, switching cost per enable toggle via
    # energy_in. Used by the clock-gating model, never instantiated as a
    # netlist cell.
    "icg": CellParams(
        area_per_bit=22.0, delay_fixed=0.10, energy_in=0.015, energy_static=0.004
    ),
    # Isolation banks.
    "andbank": CellParams(area_per_bit=12.0, delay_fixed=0.12, energy_in=0.010),
    "orbank": CellParams(area_per_bit=13.0, delay_fixed=0.13, energy_in=0.010),
    "latbank": CellParams(
        area_per_bit=30.0, delay_fixed=0.18, energy_in=0.045, energy_static=0.009
    ),
}


class TechnologyLibrary:
    """Area / delay / energy oracle for every cell kind.

    ``clock_ghz`` converts pJ-per-cycle into mW
    (``P[mW] = E[pJ/cycle] * f[GHz]``).
    """

    def __init__(
        self,
        params: Optional[Dict[str, CellParams]] = None,
        clock_ghz: float = 0.1,
        fanout_delay: float = 0.03,
        fanout_energy: float = 0.20,
    ) -> None:
        self._params = dict(_DEFAULT_PARAMS)
        if params:
            self._params.update(params)
        self.clock_ghz = clock_ghz
        #: Extra delay (ns) per unit of input-cap load beyond the first reader.
        self.fanout_delay = fanout_delay
        #: Fractional extra driving energy per additional reader.
        self.fanout_energy = fanout_energy

    # ------------------------------------------------------------------
    def params(self, cell: Cell) -> CellParams:
        return self.params_by_kind(cell.kind)

    def params_by_kind(self, kind: str) -> CellParams:
        try:
            return self._params[kind]
        except KeyError:
            raise PowerModelError(f"no library entry for cell kind {kind!r}") from None

    def with_params(self, **overrides: CellParams) -> "TechnologyLibrary":
        """A copy of this library with some kinds' parameters replaced."""
        merged = dict(self._params)
        merged.update(overrides)
        return TechnologyLibrary(
            merged,
            clock_ghz=self.clock_ghz,
            fanout_delay=self.fanout_delay,
            fanout_energy=self.fanout_energy,
        )

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _output_width(cell: Cell) -> int:
        outs = cell.output_pins
        if not outs:
            return 0
        return max(pin.net.width for pin in outs)

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    def area(self, cell: Cell) -> float:
        """Cell area in µm²."""
        params = self.params(cell)
        width = self._output_width(cell)
        if isinstance(cell, Mux):
            # An n-way mux is n-1 two-way muxes per bit.
            return params.area_per_bit * width * (cell.n_inputs - 1)
        if cell.kind in ("mul", "mac", "divmod"):
            # Array structure: area grows with both operand widths.
            op_width = cell.net("A").width
            return params.area_per_bit * op_width * max(1, cell.net("B").width)
        area = params.area_per_bit * max(1, width)
        if getattr(cell, "clock_gated", False):
            # One integrated clock gate per gated register; the feedback
            # mux the enable implied is removed, roughly a wash per bit.
            area += self.params_by_kind("icg").area_per_bit
        return area

    def total_area(self, design) -> float:
        """Sum of cell areas (the paper's ``A_t``)."""
        return sum(self.area(cell) for cell in design.cells)

    # ------------------------------------------------------------------
    # Delay
    # ------------------------------------------------------------------
    def delay(self, cell: Cell) -> float:
        """Input-to-output propagation delay in ns (unloaded)."""
        params = self.params(cell)
        width = self._output_width(cell)
        if isinstance(cell, Mux):
            depth = max(1, math.ceil(math.log2(cell.n_inputs)))
            return params.delay_fixed * depth
        return params.delay_fixed + params.delay_per_bit * width

    def load_delay(self, net: Net) -> float:
        """Extra delay from fanout loading on ``net``."""
        load = 0.0
        for pin in net.readers:
            load += self.params(pin.cell).input_cap
        return self.fanout_delay * max(0.0, load - 1.0)

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def activity_factor(self, cell: Cell) -> float:
        """Internal nodes disturbed per input bit toggle, by module type.

        Adders have short expected carry chains (O(1) cells disturbed);
        multipliers/MACs disturb a whole partial-product column
        (O(width)); the remaining operators sit in between.
        """
        if not isinstance(cell, ArithModule):
            return 1.0
        width = cell.width
        if cell.kind in ("mul", "mac", "divmod"):
            return cell.complexity * width / 4.0
        if cell.kind == "shift":
            return cell.complexity * max(1.0, math.log2(max(2, width)))
        return cell.complexity * 2.0

    def input_toggle_energy(self, cell: Cell) -> float:
        """pJ of internal energy per toggled input bit."""
        return self.params(cell).energy_in * self.activity_factor(cell)

    def control_toggle_energy(self, cell: Cell) -> float:
        """pJ per toggle of a control pin (select/enable/gate).

        Enables of registers, latches and isolation banks fan out to one
        gating element *per data bit*, so their switched capacitance
        scales with the cell's width — a real and often decisive part of
        latch-isolation overhead. Mux selects likewise steer every bit.
        """
        params = self.params(cell)
        if cell.kind in ("reg", "lat", "latbank", "andbank", "orbank", "mux"):
            return params.energy_in * max(1, self._output_width(cell))
        return params.energy_in

    def output_toggle_energy(self, cell: Cell, net: Net) -> float:
        """pJ per toggled output bit, including fanout loading."""
        base = self.params(cell).energy_out
        return base * (1.0 + self.fanout_energy * max(0, len(net.readers) - 1))

    def static_energy(self, cell: Cell) -> float:
        """pJ per cycle independent of activity (clock load etc.)."""
        return self.params(cell).energy_static * self._output_width(cell)

    # ------------------------------------------------------------------
    def power_mw(self, energy_pj_per_cycle: float) -> float:
        """Convert pJ/cycle into mW at the library clock frequency."""
        return energy_pj_per_cycle * self.clock_ghz


def default_library() -> TechnologyLibrary:
    """The stock library used throughout the benchmarks."""
    return TechnologyLibrary()
