"""Human-readable power and area report formatting."""

from __future__ import annotations

from collections import defaultdict
from typing import List, Optional

from repro.netlist.design import Design
from repro.power.estimator import PowerBreakdown
from repro.power.library import TechnologyLibrary


def format_power_report(
    design: Design,
    breakdown: PowerBreakdown,
    top: Optional[int] = 15,
) -> str:
    """A DesignPower-style text report: totals, groups, hottest cells."""
    lines: List[str] = []
    lines.append(f"Power report for design {design.name!r}")
    lines.append(f"  cycles observed : {breakdown.cycles}")
    lines.append(f"  total power     : {breakdown.total_power_mw:9.4f} mW")
    lines.append(f"  design logic    : {breakdown.group_power_mw('design'):9.4f} mW")
    overhead = breakdown.overhead_power_mw
    if overhead > 0:
        lines.append(f"  isolation banks : {breakdown.group_power_mw('bank'):9.4f} mW")
        lines.append(f"  activation logic: {breakdown.group_power_mw('activation'):9.4f} mW")
    ranked = sorted(
        breakdown.energy_per_cell.items(), key=lambda item: item[1], reverse=True
    )
    if top:
        ranked = ranked[:top]
    lines.append("  hottest cells:")
    for cell, energy in ranked:
        if energy <= 0.0:
            continue
        lines.append(
            f"    {cell.name:<24} {cell.kind:<8} "
            f"{breakdown.library.power_mw(energy):9.4f} mW"
        )
    return "\n".join(lines)


def format_area_report(design: Design, library: TechnologyLibrary) -> str:
    """Area by cell kind, with the isolation overhead called out."""
    by_kind = defaultdict(float)
    overhead = defaultdict(float)
    for cell in design.cells:
        area = library.area(cell)
        by_kind[cell.kind] += area
        role = getattr(cell, "isolation_role", "design")
        if role != "design":
            overhead[role] += area
    total = sum(by_kind.values())
    lines = [f"Area report for design {design.name!r}"]
    lines.append(f"  total area : {total:10.0f} um^2")
    for kind, area in sorted(by_kind.items(), key=lambda item: -item[1]):
        if area <= 0:
            continue
        lines.append(f"    {kind:<10} {area:10.0f} um^2 ({area / total:5.1%})")
    if overhead:
        lines.append("  isolation overhead:")
        for role, area in sorted(overhead.items()):
            lines.append(f"    {role:<10} {area:10.0f} um^2 ({area / total:5.1%})")
    return "\n".join(lines)
