"""Simulation-driven power estimation (the DesignPower analogue).

:func:`estimate_power` simulates a design under a stimulus, measures
per-net toggle rates and converts them into per-cell power using the
technology library:

``E_cell = Σ_inputs e_in(cell, pin)·Tr(pin) + e_out(cell)·Tr(out) + e_static``

all in pJ/cycle, reported in mW at the library clock. The breakdown
distinguishes the cells added by operand isolation (banks and activation
logic, tagged by the transform) so the overhead term ``P_i(c)`` of the
paper's cost function can be read off directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import obs
from repro.netlist.cells import Cell, PortDir
from repro.netlist.design import Design
from repro.power.library import TechnologyLibrary, default_library
from repro.runconfig import RunConfig, resolve_run_config
from repro.sim.engine import Simulator, make_simulator
from repro.sim.monitor import ToggleMonitor
from repro.sim.stimulus import Stimulus


@dataclass
class PowerBreakdown:
    """Per-cell and aggregate power of one estimation run."""

    library: TechnologyLibrary
    energy_per_cell: Dict[Cell, float] = field(default_factory=dict)
    cycles: int = 0

    # ------------------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Total pJ per cycle."""
        return sum(self.energy_per_cell.values())

    @property
    def total_power_mw(self) -> float:
        """Total power in mW at the library clock frequency."""
        return self.library.power_mw(self.total_energy)

    def cell_power_mw(self, cell: Cell) -> float:
        return self.library.power_mw(self.energy_per_cell.get(cell, 0.0))

    def group_power_mw(self, role: str) -> float:
        """Power of cells tagged with a given ``isolation_role``.

        Roles used by the isolation transform: ``"bank"`` for isolation
        banks, ``"activation"`` for activation logic. Untagged cells have
        role ``"design"``.
        """
        energy = sum(
            e
            for cell, e in self.energy_per_cell.items()
            if getattr(cell, "isolation_role", "design") == role
        )
        return self.library.power_mw(energy)

    @property
    def overhead_power_mw(self) -> float:
        """Power of all isolation circuitry (banks + activation logic)."""
        return self.group_power_mw("bank") + self.group_power_mw("activation")

    def module_power_mw(self) -> Dict[str, float]:
        """Power per datapath module, keyed by cell name."""
        return {
            cell.name: self.library.power_mw(energy)
            for cell, energy in self.energy_per_cell.items()
            if cell.is_datapath_module
        }


class PowerEstimator:
    """Converts measured toggle rates into a :class:`PowerBreakdown`.

    ``glitch_model`` optionally compensates for the zero-delay cycle
    simulation's blindness to glitches: the dynamic energy of each
    combinational cell is scaled by ``1 + glitch_alpha · (depth - 1)``,
    with depth its topological logic level. Deeper logic sees more
    spurious transitions in a real circuit; the ablation benchmark
    checks the paper's conclusions are insensitive to this choice.
    """

    def __init__(
        self,
        library: Optional[TechnologyLibrary] = None,
        glitch_model: bool = False,
        glitch_alpha: float = 0.2,
    ) -> None:
        self.library = library or default_library()
        self.glitch_model = glitch_model
        self.glitch_alpha = glitch_alpha

    def cell_energy(
        self, cell: Cell, monitor: ToggleMonitor, depth: int = 1
    ) -> float:
        """pJ/cycle of one cell given measured activity."""
        library = self.library
        static = library.static_energy(cell)
        data_energy = library.input_toggle_energy(cell)
        control_energy = library.control_toggle_energy(cell)
        dynamic = 0.0
        for pin in cell.input_pins:
            rate = monitor.toggle_rate(pin.net)
            per_bit = control_energy if pin.is_control else data_energy
            dynamic += per_bit * rate
        for pin in cell.output_pins:
            dynamic += library.output_toggle_energy(cell, pin.net) * monitor.toggle_rate(
                pin.net
            )
        if self.glitch_model and not cell.is_sequential:
            dynamic *= 1.0 + self.glitch_alpha * max(0, depth - 1)
        if getattr(cell, "clock_gated", False) and cell.is_connected("EN"):
            # Clock gating: standing clock energy only in enabled cycles,
            # plus the integrated clock gate's own standing/switching cost.
            en_net = cell.net("EN")
            static *= monitor.one_probability(en_net)
            icg = self.library.params_by_kind("icg")
            static += icg.energy_static
            dynamic += icg.energy_in * monitor.toggle_rate(en_net)
        return static + dynamic

    def batch_total_energy(self, design: Design, batch_monitor) -> "object":
        """Per-replication total energy (pJ/cycle) from a batch run.

        ``batch_monitor`` is a :class:`repro.sim.batch.BatchToggleMonitor`;
        the return value is a numpy array with one entry per replication,
        from which honest cross-replication confidence intervals of the
        design's power follow. The glitch and clock-gating refinements
        are intentionally not applied here (use the scalar path for
        those studies).
        """
        import numpy as np

        library = self.library
        total = np.zeros(batch_monitor.batch_size)
        for cell in design.cells:
            static = library.static_energy(cell)
            total += static
            data_energy = library.input_toggle_energy(cell)
            control_energy = library.control_toggle_energy(cell)
            for pin in cell.input_pins:
                per_bit = control_energy if pin.is_control else data_energy
                total += per_bit * batch_monitor.per_lane_rates(pin.net)
            for pin in cell.output_pins:
                total += library.output_toggle_energy(
                    cell, pin.net
                ) * batch_monitor.per_lane_rates(pin.net)
        return total

    def breakdown(self, design: Design, monitor: ToggleMonitor) -> PowerBreakdown:
        """Per-cell power of the whole design from one measured run."""
        depths = {}
        if self.glitch_model:
            from repro.netlist.traversal import logic_depths

            depths = logic_depths(design)
        result = PowerBreakdown(library=self.library, cycles=monitor.cycles)
        for cell in design.cells:
            result.energy_per_cell[cell] = self.cell_energy(
                cell, monitor, depth=depths.get(cell, 1)
            )
        if obs.enabled():
            for cell in design.datapath_modules:
                for pin in cell.output_pins:
                    obs.gauge(
                        "module.toggle_rate", module=cell.name, net=pin.net.name
                    ).set(monitor.toggle_rate(pin.net))
                obs.gauge("module.power_mw", module=cell.name).set(
                    result.cell_power_mw(cell)
                )
        return result


def estimate_power(
    design: Design,
    stimulus: Stimulus,
    cycles: Optional[int] = None,
    library: Optional[TechnologyLibrary] = None,
    warmup: Optional[int] = None,
    extra_monitors: Optional[list] = None,
    run: Optional[RunConfig] = None,
    engine: Optional[str] = None,
) -> PowerBreakdown:
    """Simulate ``design`` and return its power breakdown.

    Run control comes from ``run=RunConfig(...)`` (with ``engine=`` as a
    first-class override); the historical ``cycles``/``warmup`` kwargs
    still work as deprecated aliases. ``extra_monitors`` ride along on
    the same simulation run (probes for the savings model, traces for
    verification...), avoiding a second pass over the stimulus.
    """
    cfg = resolve_run_config(
        run,
        defaults=RunConfig(cycles=2000, warmup=16),
        stacklevel=3,
        engine=engine,
        cycles=cycles,
        warmup=warmup,
    )
    with obs.span(
        "power.estimate",
        "sim",
        design=design.name,
        engine=cfg.engine,
        cycles=cfg.cycles,
    ) as span:
        monitor = ToggleMonitor()
        monitors = [monitor] + list(extra_monitors or [])
        make_simulator(design, cfg.engine).run(
            stimulus, cfg.cycles, monitors=monitors, warmup=cfg.warmup
        )
        breakdown = PowerEstimator(library).breakdown(design, monitor)
        span.set(power_mw=breakdown.total_power_mw)
    return breakdown


@dataclass
class PowerInterval:
    """Cross-replication power estimate with a 95% confidence interval.

    ``half_width_mw`` is ``inf`` for a single replication — an honest
    "no interval available", never a fake zero width (see
    :func:`repro.sim.batch.cross_lane_ci`).
    """

    mean_mw: float
    half_width_mw: float
    per_lane_mw: "object"  # numpy array, one entry per replication
    batch_size: int
    cycles: int
    workers: int
    shards: int
    fallback_reason: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "mean_mw": self.mean_mw,
            "half_width_mw": self.half_width_mw,
            "batch_size": self.batch_size,
            "cycles": self.cycles,
            "workers": self.workers,
            "shards": self.shards,
        }
        if self.fallback_reason is not None:
            payload["fallback_reason"] = self.fallback_reason
        return payload


def estimate_power_ci(
    design: Design,
    batch_size: int = 32,
    run: Optional[RunConfig] = None,
    library: Optional[TechnologyLibrary] = None,
    stimulus_kwargs: Optional[dict] = None,
    n_shards: Optional[int] = None,
) -> PowerInterval:
    """Monte-Carlo power estimate with an honest cross-replication CI.

    Runs ``batch_size`` independent replications through the sharded
    batch engine (:func:`repro.parallel.run_batch_sharded`, parallel
    when ``run.workers > 1``, bit-exact regardless) and converts the
    per-replication energies into a mean power and 95% half-width.
    ``run.engine="bitslice"`` routes every shard through the lane-packed
    kernel (replications map onto bit lanes; see ``docs/bitslice.md``)
    and is the fastest way to compute this interval.
    """
    from repro.parallel.shard import run_batch_sharded
    from repro.sim.batch import cross_lane_ci

    cfg = run or RunConfig()
    library = library or default_library()
    sharded = run_batch_sharded(
        design,
        batch_size,
        cfg.cycles,
        warmup=cfg.warmup,
        seed=cfg.seed,
        workers=cfg.workers,
        n_shards=n_shards,
        engine=cfg.engine,
        stimulus_kwargs=stimulus_kwargs,
    )
    energy = PowerEstimator(library).batch_total_energy(design, sharded.stats)
    lane_power = energy * library.clock_ghz
    mean, half = cross_lane_ci(lane_power)
    return PowerInterval(
        mean_mw=float(mean),
        half_width_mw=float(half),
        per_lane_mw=lane_power,
        batch_size=batch_size,
        cycles=cfg.cycles,
        workers=sharded.report.workers,
        shards=len(sharded.plan),
        fallback_reason=sharded.report.fallback_reason,
    )
