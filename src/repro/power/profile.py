"""Windowed power profiling: power as a function of time.

:class:`PowerProfileMonitor` prices every cycle's switching activity with
the technology library and aggregates it into fixed-size windows,
yielding a power-vs-time series. This makes the paper's core phenomenon
*visible*: before isolation a datapath burns near-constant power whether
or not its results are used; after isolation the power waveform tracks
the activation signal, collapsing during idle windows.

Per-cycle pricing uses the same coefficients as the average-power
estimator, folded into one constant per net: a toggle on net ``n`` costs
every reader's input energy plus the driver's output-driving energy, so

``E(cycle) = Σ_nets coeff(n) · popcount(v_prev ⊕ v_now) + Σ static``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.netlist.design import Design
from repro.netlist.nets import Net
from repro.power.library import TechnologyLibrary, default_library
from repro.sim.monitor import Monitor, popcount


class PowerProfileMonitor(Monitor):
    """Per-window average power (mW) over a simulation run."""

    def __init__(
        self,
        window: int = 16,
        library: Optional[TechnologyLibrary] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.library = library or default_library()
        self.windows_mw: List[float] = []

    # ------------------------------------------------------------------
    def begin(self, design: Design) -> None:
        library = self.library
        self._coeff: Dict[Net, float] = {}
        static = 0.0
        for cell in design.cells:
            static += library.static_energy(cell)
            data_energy = library.input_toggle_energy(cell)
            control_energy = library.control_toggle_energy(cell)
            for pin in cell.input_pins:
                per_bit = control_energy if pin.is_control else data_energy
                self._coeff[pin.net] = self._coeff.get(pin.net, 0.0) + per_bit
            for pin in cell.output_pins:
                self._coeff[pin.net] = self._coeff.get(
                    pin.net, 0.0
                ) + library.output_toggle_energy(cell, pin.net)
        self._static = static
        self._previous: Dict[Net, int] = {}
        self._seeded = False
        self._accumulator = 0.0
        self._in_window = 0
        self.windows_mw = []

    def observe(self, cycle: int, values: Mapping[Net, int]) -> None:
        # The first observed cycle (wherever warmup put it) has no
        # predecessor to diff against: it only seeds the reference values
        # and stays out of the window accounting entirely. Counting it
        # used to deflate the first window and shift every boundary after
        # a warmup run.
        if not self._seeded:
            for net in self._coeff:
                self._previous[net] = values[net]
            self._seeded = True
            return
        energy = self._static
        for net, coeff in self._coeff.items():
            value = values[net]
            energy += coeff * popcount(self._previous[net] ^ value)
            self._previous[net] = value
        self._accumulator += energy
        self._in_window += 1
        if self._in_window == self.window:
            self._flush()

    def finish(self) -> None:
        if self._in_window:
            self._flush()

    def _flush(self) -> None:
        mean_energy = self._accumulator / self._in_window
        self.windows_mw.append(self.library.power_mw(mean_energy))
        self._accumulator = 0.0
        self._in_window = 0

    # ------------------------------------------------------------------
    @property
    def peak_mw(self) -> float:
        return max(self.windows_mw, default=0.0)

    @property
    def mean_mw(self) -> float:
        if not self.windows_mw:
            return 0.0
        return sum(self.windows_mw) / len(self.windows_mw)

    def sparkline(self, width: int = 64) -> str:
        """Compact ASCII rendering of the profile (one char per bucket)."""
        if not self.windows_mw:
            return ""
        glyphs = " .:-=+*#%@"
        series = self.windows_mw
        if len(series) > width:
            stride = len(series) / width
            series = [
                series[int(i * stride)] for i in range(width)
            ]
        peak = max(series) or 1.0
        return "".join(
            glyphs[min(len(glyphs) - 1, int(value / peak * (len(glyphs) - 1)))]
            for value in series
        )
