"""Power modelling: technology library, macro models and estimation.

The estimation flow mirrors the paper's use of Synopsys DesignPower:

1. simulate the design with real-life (or synthetic) stimuli, measuring
   per-net toggle rates (:mod:`repro.sim`);
2. convert switching activity into energy with per-cell-type parameters
   from a :class:`~repro.power.library.TechnologyLibrary`;
3. report total and per-cell power (:mod:`repro.power.estimator`).

*Macro power models* (:mod:`repro.power.macromodel`) are the predictive
counterpart: closed-form ``p_i(Tr)`` per module as a function of input
toggle rates (Landman-style), used by the savings model **before** any
transform is applied.
"""

from repro.power.library import CellParams, TechnologyLibrary, default_library
from repro.power.macromodel import MacroPowerModel
from repro.power.estimator import PowerBreakdown, PowerEstimator, estimate_power
from repro.power.report import format_area_report, format_power_report
from repro.power.profile import PowerProfileMonitor

__all__ = [
    "format_area_report",
    "PowerProfileMonitor",
    "CellParams",
    "TechnologyLibrary",
    "default_library",
    "MacroPowerModel",
    "PowerEstimator",
    "PowerBreakdown",
    "estimate_power",
    "format_power_report",
]
