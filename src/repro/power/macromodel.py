"""Macro power models: closed-form ``p_i(Tr)`` per module.

Paper Section 4.1: *"The power consumption of a module can be
characterized as a function of the toggle rates at its inputs using
so-called macro power models [Landman, Pedram]. We assume that for each
isolation candidate such a macro power model p_i(Tr) is available."*

Our macro model is linear in the input toggle rates with an internal
activity coefficient from the technology library plus an output-driving
term. The output toggle rate is not an input of ``p_i`` — the model
estimates it as ``output_ratio · Σ Tr_in``, where ``output_ratio`` is
either a per-kind default or, preferably, calibrated from a measured run
(:meth:`MacroPowerModel.from_measurement`), mirroring how macro models
are characterised from simulation in practice.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import PowerModelError
from repro.netlist.cells import Cell
from repro.power.library import TechnologyLibrary
from repro.sim.monitor import ToggleMonitor

#: Fallback output-activity ratios (output toggles per summed input toggle).
_DEFAULT_OUTPUT_RATIO: Dict[str, float] = {
    "add": 0.55,
    "sub": 0.55,
    "mul": 0.85,
    "mac": 0.75,
    "cmp": 0.05,
    "shift": 0.70,
}


class MacroPowerModel:
    """``p_i(Tr)``: module power as a function of input toggle rates."""

    def __init__(
        self,
        cell: Cell,
        library: TechnologyLibrary,
        output_ratio: Optional[float] = None,
    ) -> None:
        if not cell.is_datapath_module:
            raise PowerModelError(
                f"macro models apply to datapath modules, not {cell.kind!r}"
            )
        self.cell = cell
        self.library = library
        if output_ratio is None:
            output_ratio = _DEFAULT_OUTPUT_RATIO.get(cell.kind, 0.5)
        self.output_ratio = output_ratio

    # ------------------------------------------------------------------
    @classmethod
    def from_measurement(
        cls,
        cell: Cell,
        library: TechnologyLibrary,
        monitor: ToggleMonitor,
    ) -> "MacroPowerModel":
        """Calibrate the output ratio from one measured simulation run."""
        total_in = sum(
            monitor.toggle_rate(pin.net) for pin in cell.input_pins if not pin.is_control
        )
        total_out = sum(monitor.toggle_rate(pin.net) for pin in cell.output_pins)
        ratio = None
        if total_in > 1e-12:
            ratio = total_out / total_in
        return cls(cell, library, output_ratio=ratio)

    # ------------------------------------------------------------------
    def energy(self, rates: Mapping[str, float]) -> float:
        """pJ/cycle for hypothetical input toggle rates.

        ``rates`` maps operand port names (``A``, ``B``, ...) to toggle
        rates; missing ports default to 0 (a fully quiescent operand).
        """
        cell = self.cell
        e_in = self.library.input_toggle_energy(cell)
        total_in = 0.0
        energy = 0.0
        for port in cell.data_input_ports:
            rate = rates.get(port, 0.0)
            energy += e_in * rate
            total_in += rate
        # Output activity estimated from the (calibrated) ratio, spread
        # across the output nets by width share; each capped at its width.
        out_pins = cell.output_pins
        total_out_width = sum(pin.net.width for pin in out_pins) or 1
        predicted_out = self.output_ratio * total_in
        for pin in out_pins:
            share = predicted_out * pin.net.width / total_out_width
            out_rate = min(float(pin.net.width), share)
            energy += self.library.output_toggle_energy(cell, pin.net) * out_rate
        energy += self.library.static_energy(cell)
        return energy

    def power_mw(self, rates: Mapping[str, float]) -> float:
        """``p_i(Tr)`` in mW — the quantity used throughout Section 4."""
        return self.library.power_mw(self.energy(rates))

    def __repr__(self) -> str:
        return (
            f"MacroPowerModel({self.cell.name!r}, kind={self.cell.kind!r}, "
            f"output_ratio={self.output_ratio:.3f})"
        )
