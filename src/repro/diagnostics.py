"""Structured diagnostics: one typed record per detected problem.

Every subsystem that reports problems — structural validation
(:mod:`repro.netlist.validate`), the fault-injection campaign
(:mod:`repro.verify.faults`), the :class:`repro.api.Session` facade and
the ``repro validate`` CLI subcommand — speaks :class:`Diagnostic`, so
one problem renders the same way everywhere: a stable machine-readable
``code``, a ``severity``, the cell/net it anchors to and a
human-readable message.

For backward compatibility a :class:`Diagnostic` still *reads* like the
plain strings ``validation_problems`` used to return: ``str(diag)`` is
the legacy message and ``"substring" in diag`` tests against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: Diagnostic severities, most severe first.
SEVERITIES = ("error", "warning")

#: The diagnostic codes emitted by ``validation_problems`` plus the
#: fault campaign's ``silent-fault``.
CODES = (
    "unconnected-port",
    "width-mismatch",
    "no-driver",
    "no-readers",
    "comb-loop",
    "silent-fault",
)


@dataclass(frozen=True)
class Diagnostic:
    """One structural or behavioural problem, typed and located.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (kebab-case), e.g.
        ``"unconnected-port"`` or ``"comb-loop"``.
    message:
        Human-readable description (the legacy string form).
    severity:
        ``"error"`` — the design cannot be trusted to simulate
        correctly — or ``"warning"`` — suspicious but survivable
        (e.g. a net nobody reads).
    cell / net:
        Names of the cell and/or net the problem anchors to, when the
        problem has a location.
    """

    code: str
    message: str
    severity: str = "error"
    cell: Optional[str] = None
    net: Optional[str] = None

    def __str__(self) -> str:
        return self.message

    def __contains__(self, item: str) -> bool:
        # Legacy compatibility: callers used to substring-match the plain
        # problem strings; keep `"..." in diagnostic` working.
        return item in self.message

    @property
    def location(self) -> str:
        """``cell`` / ``net`` rendered as one anchor string."""
        parts = []
        if self.cell:
            parts.append(f"cell {self.cell}")
        if self.net:
            parts.append(f"net {self.net}")
        return ", ".join(parts) or "design"

    def format(self) -> str:
        """One-line rendering with severity, code and location."""
        return f"[{self.severity}] {self.code} ({self.location}): {self.message}"

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "code": self.code,
            "severity": self.severity,
            "cell": self.cell,
            "net": self.net,
            "message": self.message,
        }


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Optional[str]:
    """Most severe severity present, or None for an empty iterable."""
    present = {d.severity for d in diagnostics}
    for severity in SEVERITIES:
        if severity in present:
            return severity
    return None


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The subset with ``severity == "error"``."""
    return [d for d in diagnostics if d.severity == "error"]


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """Multi-line rendering, one :meth:`Diagnostic.format` line each."""
    return "\n".join(d.format() for d in diagnostics)
