"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at an API boundary. Subsystems raise the
more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad connection, duplicate name...)."""


class WidthMismatchError(NetlistError):
    """A port was connected to a net of incompatible bit width."""


class ValidationError(NetlistError):
    """A design failed structural validation (loops, floating pins...)."""


class SimulationError(ReproError):
    """The simulator was asked to do something impossible."""


class StimulusError(SimulationError):
    """A stimulus generator was configured inconsistently."""


class BooleanError(ReproError):
    """Malformed Boolean expression or BDD operation."""


class TimingError(ReproError):
    """Static timing analysis failed (e.g. no clock period given)."""


class PowerModelError(ReproError):
    """A power model was queried for an unknown cell or pin."""


class IsolationError(ReproError):
    """Operand isolation could not be applied to a candidate."""


class EquivalenceError(ReproError):
    """Two designs that should be observably equivalent are not."""
