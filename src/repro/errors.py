"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at an API boundary. Subsystems raise the
more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad connection, duplicate name...)."""


class WidthMismatchError(NetlistError):
    """A port was connected to a net of incompatible bit width."""


class ValidationError(NetlistError):
    """A design failed structural validation (loops, floating pins...)."""


class SimulationError(ReproError):
    """The simulator was asked to do something impossible."""


class CompilationError(SimulationError):
    """Lowering a design to the compiled backend failed.

    Carries the name of the compiled unit that failed so callers (and the
    ``engine="compiled"`` graceful-degradation path) can report exactly
    which block could not be lowered.
    """

    def __init__(self, message: str, unit: str = "") -> None:
        super().__init__(message)
        self.unit = unit


class StimulusError(SimulationError):
    """A stimulus generator was configured inconsistently."""


class BooleanError(ReproError):
    """Malformed Boolean expression or BDD operation."""


class BudgetExceededError(BooleanError):
    """A resource budget (e.g. the BDD node-count budget) was exhausted.

    Raised instead of letting an operation grow without bound; callers
    either widen the budget or fall back to a cheaper approximation
    (see :func:`repro.boolean.probability.probability_bounds`).
    """

    def __init__(self, message: str, budget: int = 0, used: int = 0) -> None:
        super().__init__(message)
        self.budget = budget
        self.used = used


class TimingError(ReproError):
    """Static timing analysis failed (e.g. no clock period given)."""


class PowerModelError(ReproError):
    """A power model was queried for an unknown cell or pin."""


class IsolationError(ReproError):
    """Operand isolation could not be applied to a candidate."""


class EquivalenceError(ReproError):
    """Two designs that should be observably equivalent are not."""


class FaultInjectionError(ReproError):
    """A fault could not be injected at the requested site.

    Raised by :mod:`repro.verify.faults` when a fault spec names a site
    that does not exist or cannot host that fault kind (e.g. a stuck-at
    on a net with no readers)."""
