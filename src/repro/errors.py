"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at an API boundary. Subsystems raise the
more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad connection, duplicate name...)."""


class WidthMismatchError(NetlistError):
    """A port was connected to a net of incompatible bit width."""


class ValidationError(NetlistError):
    """A design failed structural validation (loops, floating pins...)."""


class SimulationError(ReproError):
    """The simulator was asked to do something impossible."""


class CompilationError(SimulationError):
    """Lowering a design to the compiled backend failed.

    Carries the name of the compiled unit that failed so callers (and the
    ``engine="compiled"`` graceful-degradation path) can report exactly
    which block could not be lowered.
    """

    def __init__(self, message: str, unit: str = "") -> None:
        super().__init__(message)
        self.unit = unit


class StimulusError(SimulationError):
    """A stimulus generator was configured inconsistently."""


class BooleanError(ReproError):
    """Malformed Boolean expression or BDD operation."""


class BudgetExceededError(BooleanError):
    """A resource budget (e.g. the BDD node-count budget) was exhausted.

    Raised instead of letting an operation grow without bound; callers
    either widen the budget or fall back to a cheaper approximation
    (see :func:`repro.boolean.probability.probability_bounds`).
    """

    def __init__(self, message: str, budget: int = 0, used: int = 0) -> None:
        super().__init__(message)
        self.budget = budget
        self.used = used


class TimingError(ReproError):
    """Static timing analysis failed (e.g. no clock period given)."""


class PowerModelError(ReproError):
    """A power model was queried for an unknown cell or pin."""


class IsolationError(ReproError):
    """Operand isolation could not be applied to a candidate."""


class EquivalenceError(ReproError):
    """Two designs that should be observably equivalent are not."""


class ServeError(ReproError):
    """Job-service layer problem (:mod:`repro.serve`).

    Carries the HTTP status the server maps it to, so one exception
    type renders consistently on both sides of the wire.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class QueueFullError(ServeError):
    """The bounded job queue is full; retry after ``retry_after_s``.

    The HTTP layer renders this as 429 with a ``Retry-After`` header —
    explicit backpressure instead of unbounded buffering.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message, status=429)
        self.retry_after_s = retry_after_s


class ServiceStoppedError(ServeError):
    """The job service is shutting down and no longer accepts work."""

    def __init__(self, message: str = "service is shutting down") -> None:
        super().__init__(message, status=503)


class JobNotFoundError(ServeError):
    """An unknown job id was queried."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"no such job: {job_id}", status=404)
        self.job_id = job_id


class TransientJobError(ServeError):
    """A job attempt failed for a reason unrelated to the job itself.

    The retry taxonomy of the serving layer: subclasses of this type are
    *transient* — the same job may succeed on a fresh attempt (a crashed
    worker process, an expired lease) — so the service re-enqueues the
    job with exponential backoff until its attempt budget runs out.
    Every other failure is *permanent* and recorded with a structured
    :class:`~repro.diagnostics.Diagnostic` body instead of retried.
    """

    def __init__(self, message: str, status: int = 503) -> None:
        super().__init__(message, status=status)


class WorkerCrashError(TransientJobError):
    """A job's worker process died (signal/exit) before reporting back."""


class LeaseExpiredError(TransientJobError):
    """A running job's lease lapsed without a heartbeat; the worker is
    presumed dead and the job is handed to another attempt."""


class JobDeadlineError(ServeError):
    """A job exceeded its per-job deadline and was killed.

    Deadlines are a *budget*, not an infrastructure fault: retrying the
    same work against the same budget would fail the same way, so this
    is permanent (status 504 on the wire).
    """

    def __init__(self, message: str, timeout_s: float = 0.0) -> None:
        super().__init__(message, status=504)
        self.timeout_s = timeout_s


class StateStoreError(ServeError):
    """The durable job store (journal / blob cache) hit an I/O problem
    it could not work around (unwritable state dir, disk full...)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=500)


class SweepError(ReproError):
    """A design-space sweep could not be expanded, run or resumed
    (:mod:`repro.sweep`): malformed spec, unknown design/profile/pass,
    or an unusable experiment store."""


class FaultInjectionError(ReproError):
    """A fault could not be injected at the requested site.

    Raised by :mod:`repro.verify.faults` when a fault spec names a site
    that does not exist or cannot host that fault kind (e.g. a stuck-at
    on a net with no readers)."""
