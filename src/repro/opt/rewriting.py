"""Power-driven datapath rewriting as a :class:`TransformPass`.

The third pass family: instead of suppressing redundant activity
(isolation) or stopping clocks (gating), it *restructures* the
arithmetic so there is less activity to suppress — strength-reducing
constant multipliers, reassociating add/mul chains by measured operand
activity, and moving muxes through operators. Run it ahead of isolation
(``passes=("rewrite", "isolation")``) so isolation scores the settled
structure; the loop defers structure-sensitive passes in any iteration
where a rewrite landed, so composition in either order is safe.

Candidates come from :func:`repro.rewrite.rules.find_rewrites`, are
scored exactly against the shared estimation run by replaying traced
boundary values through the replacement cone
(:mod:`repro.rewrite.scoring`), and compete in a single selection group:
at most one rewrite applies per iteration, so overlapping plans never
fight and every application is re-measured before the next.

Every applied rewrite is immediately re-verified: the working design
before and after the splice are co-simulated through the lockstep
``engine="checked"`` rig on a fresh random stimulus, and any divergence
aborts the run loudly. The rewrite is discarded only by failing, never
silently.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.opt.framework import (
    AppliedTransform,
    OptIterationRecord,
    PassContext,
    TransformPass,
    register_pass,
)
from repro.power.estimator import PowerEstimator
from repro.rewrite.rules import RewritePlan, find_rewrites
from repro.rewrite.scoring import (
    MIN_GAIN_MW,
    RewriteScore,
    ValueTrace,
    score_rewrite,
)

#: Cycles of the per-rewrite checked-engine equivalence run. Plenty for
#: the shipped designs' state depth while keeping apply cheap; the full
#: campaign-length verification lives in the test suite.
VERIFY_CYCLES = 128

#: Seed of the verification stimulus (independent of the scoring run).
VERIFY_SEED = 20260808


class RewritePass(TransformPass):
    """Greedy, estimator-scored structural rewriting of the datapath."""

    name = "rewrite"
    changes_structure = True
    conflicts_with_structure = True

    def __init__(self) -> None:
        #: Cell name -> rule that grafted it, for the whole run. Keeps
        #: the two mux directions from unwinding each other's work.
        self._rule_of: dict = {}

    def begin(self, ctx: PassContext) -> None:
        super().begin(ctx)
        self._estimator = PowerEstimator(ctx.library)
        self._plans: List[RewritePlan] = []
        self._trace: Optional[ValueTrace] = None

    def enumerate(self, record: OptIterationRecord) -> int:
        self._plans = find_rewrites(self.ctx.working, created_by=self._rule_of)
        self._trace = None
        if self._plans:
            nets = [net for plan in self._plans for net in plan.sources]
            self._trace = ValueTrace(nets)
        return len(self._plans)

    def monitors(self) -> list:
        return [self._trace] if self._trace is not None else []

    def score(self, total_power_mw: float, monitor) -> List[List[RewriteScore]]:
        ctx = self.ctx
        total_area = ctx.library.total_area(ctx.working)
        scores: List[RewriteScore] = []
        for plan in self._plans:
            if plan.prepare is not None:
                plan.prepare(plan, monitor)
            score = score_rewrite(
                plan,
                trace=self._trace,
                monitor=monitor,
                total_power_mw=total_power_mw,
                total_area=total_area,
                weights=ctx.config.weights,
                library=ctx.library,
                estimator=self._estimator,
            )
            if score.net_mw > MIN_GAIN_MW:
                scores.append(score)
            else:
                obs.counter("rewrites.rejected", reason="no_gain").inc()
        if not scores:
            return []
        # One selection group: at most one rewrite per iteration. Plans
        # can overlap structurally (nested chains, a mul that is both a
        # strength-reduction and a mux-push target), so the losers must
        # be re-enumerated against the post-splice netlist, not applied.
        return [scores]

    def apply(self, best: RewriteScore) -> AppliedTransform:
        from repro.netlist.splice import GraftBuilder, splice_readers
        from repro.sim.stimulus import random_stimulus
        from repro.verify.equivalence import assert_observable_equivalence

        plan = best.plan
        working = self.ctx.working
        with obs.span(
            "rewrite.apply", "transform", rule=plan.rule, target=plan.target
        ):
            golden = working.copy(f"{working.name}_pre_rewrite")
            graft = GraftBuilder(working)
            new_out = plan.build(graft, plan.sources)
            splice_readers(working, plan.out_net, new_out)
            swept = working.sweep_dangling()
            for cell in graft.cells:
                self._rule_of[cell.name] = plan.rule
            # Trust nothing: co-simulate the pre/post-splice designs in
            # lockstep (python + compiled) before accepting the rewrite.
            cycles = min(self.ctx.config.cycles, VERIFY_CYCLES)
            assert_observable_equivalence(
                golden,
                working,
                random_stimulus(working, seed=VERIFY_SEED),
                cycles=cycles,
                engine="checked",
            )
        obs.counter("rewrites.applied", rule=plan.rule).inc()
        return AppliedTransform(
            pass_name=self.name,
            target=plan.target,
            detail={
                "rule": plan.rule,
                "cells_removed": swept,
                "cells_added": best.cells_added,
                **{
                    k: v
                    for k, v in plan.detail.items()
                    if isinstance(v, (str, int, float, bool, list))
                },
            },
            estimated_net_mw=best.net_mw,
        )

    def below_threshold(self, best: RewriteScore) -> None:
        obs.counter("rewrites.rejected", reason="below_h_min").inc()

    def serialize_score(self, score: RewriteScore) -> dict:
        return {
            "rule": score.rule,
            "target": score.target,
            "h": score.h,
            "net_mw": score.net_mw,
            "area_delta": score.area_delta,
            "cells_added": score.cells_added,
        }


register_pass(RewritePass.name, RewritePass)
