"""The pluggable low-power pass framework.

Algorithm 1's greedy loop — enumerate candidates, derive activation
conditions, measure one simulation, score against the shared cost
budget, transform the netlist, repeat — is one instance of a general
shape. :func:`optimize` owns that loop; what varies per transform
family lives behind the :class:`TransformPass` protocol:

* :class:`~repro.opt.isolation.IsolationPass` — the paper's operand
  isolation (AND/OR/LAT banks in front of datapath modules);
* :class:`~repro.opt.gating.ClockGatingPass` — RT-level register clock
  gating driven by the same activation machinery.

All passes in one run compete under the *shared*
:class:`~repro.core.cost.CostWeights` / ``h_min`` budget and are fed by
the *same* per-iteration estimation run, so their scores are directly
comparable. With ``passes=("isolation",)`` the loop is an exact
transcription of the legacy :func:`repro.core.algorithm.isolate_design`
and produces bit-identical results; that function is now a thin wrapper
over this one.

Writing a third pass means subclassing :class:`TransformPass` and
registering a factory with :func:`register_pass` — see
``docs/passes.md`` for the walkthrough and the composition semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import obs
from repro.core.algorithm import (
    DesignMetrics,
    IsolationConfig,
    IsolationResult,
    IterationRecord,
    StageTimings,
    StimulusSource,
    _measure_power,
)
from repro.errors import IsolationError
from repro.netlist.design import Design
from repro.power.library import TechnologyLibrary, default_library
from repro.runconfig import RunConfig, resolve_run_config
from repro.timing.sta import analyze_timing

#: The optimizer reuses Algorithm 1's knobs unchanged; the pass list is a
#: separate argument so one config drives any pass combination.
OptimizeConfig = IsolationConfig


@dataclass
class PassContext:
    """Shared per-run state handed to every pass at :meth:`TransformPass.begin`.

    ``working`` is the mutable design copy all passes transform in turn;
    ``period`` is the resolved clock constraint (ns) slack checks use.
    """

    working: Design
    config: IsolationConfig
    library: TechnologyLibrary
    period: float
    pool: object


@dataclass
class AppliedTransform:
    """One accepted transform: which pass, on what, at what predicted gain."""

    pass_name: str
    target: str
    detail: dict = field(default_factory=dict)
    estimated_net_mw: float = 0.0
    instance: object = None


@dataclass
class OptIterationRecord:
    """What happened in one pass of the generic greedy loop.

    Generalises :class:`~repro.core.algorithm.IterationRecord`: scores and
    rejections are keyed by pass name, applications carry their pass.
    """

    index: int
    total_power_mw: float
    scores: Dict[str, list] = field(default_factory=dict)
    applied: List[AppliedTransform] = field(default_factory=list)
    rejected: Dict[str, List[str]] = field(default_factory=dict)


class TransformPass:
    """One transform family pluggable into :func:`optimize`.

    Lifecycle per run: :meth:`begin` once, then per iteration
    :meth:`enumerate` → :meth:`monitors` → (one shared estimation run) →
    :meth:`score` → per selection group the loop applies the best scored
    entry via :meth:`apply` when it clears ``h_min`` (else
    :meth:`below_threshold` is notified).

    Score objects are pass-defined; the only contract is a float ``h``
    attribute comparable against the shared ``CostWeights.h_min``.
    """

    #: Registry key and the name used in records/results.
    name: str = "pass"

    #: True for passes whose :meth:`apply` rewires or removes netlist
    #: structure (isolation bank insertion, datapath rewriting). The
    #: loop tracks this to protect structure-sensitive passes below.
    changes_structure: bool = False

    #: True for passes whose planned applications become unsafe once
    #: *another* pass has changed the structure in the same iteration
    #: (their candidates reference cells/nets that may no longer exist).
    #: Such a pass is deferred to the next iteration's fresh
    #: enumeration and measurement instead of applying stale plans.
    conflicts_with_structure: bool = False

    def begin(self, ctx: PassContext) -> None:
        """Bind the run context; called once before the main loop."""
        self.ctx = ctx

    def enumerate(self, record: OptIterationRecord) -> int:
        """Find this iteration's candidates; return how many are scorable.

        Permanent rejections (slack violations, structurally ungateable
        registers, ...) are recorded into ``record.rejected[self.name]``
        here. Returning 0 contributes nothing to this iteration; when
        every pass returns 0 the loop ends without simulating.
        """
        raise NotImplementedError

    def monitors(self) -> list:
        """Extra monitors to ride along on the shared estimation run."""
        return []

    def score(self, total_power_mw: float, monitor) -> List[list]:
        """Score the enumerated candidates from the measured run.

        Returns selection *groups* (lists of score objects): the loop
        greedily applies the best entry of each group, mirroring
        Algorithm 1's per-combinational-block selection. Isolation
        groups by block; clock gating puts each register in its own
        group (registers are independent).
        """
        raise NotImplementedError

    def apply(self, best) -> AppliedTransform:
        """Transform the working design for one accepted score."""
        raise NotImplementedError

    def below_threshold(self, best) -> None:
        """A group's best score missed ``h_min`` (for counters)."""

    def serialize_score(self, score) -> dict:
        """JSON-friendly view of one score object."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Pass registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], TransformPass]] = {}


def register_pass(name: str, factory: Callable[[], TransformPass]) -> None:
    """Register a pass factory under ``name`` (last registration wins)."""
    _REGISTRY[name] = factory


def available_passes() -> tuple:
    """Registered pass names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_passes(names: Sequence[str]) -> List[TransformPass]:
    """Instantiate the named passes, preserving order; loud on bad input."""
    if isinstance(names, str):
        names = [part.strip() for part in names.split(",") if part.strip()]
    names = list(names)
    if not names:
        raise IsolationError("optimize() needs at least one pass")
    seen = set()
    passes = []
    for name in names:
        if name not in _REGISTRY:
            raise IsolationError(
                f"unknown pass {name!r}; available: {list(available_passes())}"
            )
        if name in seen:
            raise IsolationError(f"duplicate pass {name!r} in pass list")
        seen.add(name)
        passes.append(_REGISTRY[name]())
    return passes


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class OptimizeResult:
    """Everything :func:`optimize` produces; subsumes ``IsolationResult``."""

    original: Design
    design: Design
    config: IsolationConfig
    passes: tuple
    baseline: DesignMetrics
    final: DesignMetrics
    transforms: List[AppliedTransform] = field(default_factory=list)
    iterations: List[OptIterationRecord] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    _pass_objects: dict = field(default_factory=dict, repr=False)

    # -- convenience views ---------------------------------------------
    def targets_of(self, pass_name: str) -> List[str]:
        return [t.target for t in self.transforms if t.pass_name == pass_name]

    @property
    def isolated_names(self) -> List[str]:
        return self.targets_of("isolation")

    @property
    def gated_registers(self) -> List[str]:
        return self.targets_of("clock_gating")

    def per_pass_net_mw(self) -> Dict[str, float]:
        """Predicted net savings attributed per pass (sum over transforms)."""
        out = {name: 0.0 for name in self.passes}
        for t in self.transforms:
            out[t.pass_name] = out.get(t.pass_name, 0.0) + t.estimated_net_mw
        return out

    @property
    def power_reduction(self) -> float:
        """Fractional power reduction (positive = saved power)."""
        if self.baseline.power_mw <= 0:
            return 0.0
        return 1.0 - self.final.power_mw / self.baseline.power_mw

    @property
    def area_increase(self) -> float:
        if self.baseline.area <= 0:
            return 0.0
        return self.final.area / self.baseline.area - 1.0

    @property
    def slack_reduction(self) -> float:
        if self.baseline.worst_slack <= 0:
            return 0.0
        return 1.0 - self.final.worst_slack / self.baseline.worst_slack

    # ------------------------------------------------------------------
    def to_isolation_result(self) -> IsolationResult:
        """The legacy view: exactly what ``isolate_design`` used to build.

        Score/instance objects are shared, not copied, so a
        ``passes=("isolation",)`` run converts into a bit-identical
        :class:`IsolationResult`.
        """
        result = IsolationResult(
            original=self.original,
            design=self.design,
            config=self.config,
            baseline=self.baseline,
            final=self.final,
            timings=self.timings,
        )
        result.instances = [
            t.instance for t in self.transforms if t.pass_name == "isolation"
        ]
        for rec in self.iterations:
            result.iterations.append(
                IterationRecord(
                    index=rec.index,
                    total_power_mw=rec.total_power_mw,
                    scores=list(rec.scores.get("isolation", [])),
                    isolated=[
                        t.target for t in rec.applied if t.pass_name == "isolation"
                    ],
                    rejected_slack=list(rec.rejected.get("isolation", [])),
                )
            )
        return result

    def to_dict(self) -> dict:
        """JSON-serialisable record of the run (for tooling/serving)."""
        return {
            "design": self.original.name,
            "passes": list(self.passes),
            "style": self.config.style,
            "applied": [
                {
                    "pass": t.pass_name,
                    "target": t.target,
                    "estimated_net_mw": t.estimated_net_mw,
                    **t.detail,
                }
                for t in self.transforms
            ],
            "per_pass_net_mw": self.per_pass_net_mw(),
            "power_mw": {
                "before": self.baseline.power_mw,
                "after": self.final.power_mw,
                "reduction": self.power_reduction,
            },
            "area_um2": {
                "before": self.baseline.area,
                "after": self.final.area,
                "increase": self.area_increase,
            },
            "slack_ns": {
                "before": self.baseline.worst_slack,
                "after": self.final.worst_slack,
                "clock_period": self.baseline.clock_period,
            },
            "timings": self.timings.to_dict(),
            "iterations": [
                {
                    "index": rec.index,
                    "measured_power_mw": rec.total_power_mw,
                    "applied": [[t.pass_name, t.target] for t in rec.applied],
                    "rejected": {k: list(v) for k, v in rec.rejected.items()},
                    "scores": {
                        name: [
                            self._serialize_score(name, score) for score in scores
                        ]
                        for name, scores in rec.scores.items()
                    },
                }
                for rec in self.iterations
            ],
        }

    def _serialize_score(self, pass_name: str, score) -> dict:
        handler = self._pass_objects.get(pass_name)
        if handler is not None:
            return handler.serialize_score(score)
        return {"h": getattr(score, "h", None)}

    def summary(self) -> str:
        per_pass = self.per_pass_net_mw()
        lines = [
            f"Low-power optimization of {self.original.name!r} "
            f"(passes={', '.join(self.passes)}; style={self.config.style!r})",
        ]
        for name in self.passes:
            targets = self.targets_of(name)
            lines.append(
                f"  {name:<13}: {', '.join(targets) or '(none)'} "
                f"(est. {per_pass.get(name, 0.0):+.4f} mW)"
            )
        lines += [
            f"  power  : {self.baseline.power_mw:8.4f} -> {self.final.power_mw:8.4f} mW "
            f"({self.power_reduction:+.1%})",
            f"  area   : {self.baseline.area:8.0f} -> {self.final.area:8.0f} um^2 "
            f"({self.area_increase:+.1%})",
            f"  slack  : {self.baseline.worst_slack:8.3f} -> {self.final.worst_slack:8.3f} ns "
            f"(clock {self.baseline.clock_period:.3f} ns)",
            f"  iterations: {len(self.iterations)}",
            f"  stages : simulate {self.timings.simulate_s:.3f}s, "
            f"score {self.timings.score_s:.3f}s, "
            f"transform {self.timings.transform_s:.3f}s "
            f"({self.timings.simulations} runs, engine {self.timings.engine!r}, "
            f"workers {self.timings.workers})",
        ]
        if self.timings.fallback_reason:
            lines.append(
                f"  note   : engine degraded to 'python' "
                f"({self.timings.fallback_reason})"
            )
        if self.timings.pool_fallback_reason:
            lines.append(
                f"  note   : scoring pool degraded to serial "
                f"({self.timings.pool_fallback_reason})"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The pass-agnostic greedy loop (Algorithm 1, generalised)
# ----------------------------------------------------------------------
def optimize(
    design: Design,
    stimulus: StimulusSource,
    passes: Union[str, Sequence[str]] = ("isolation",),
    config: Optional[IsolationConfig] = None,
    library: Optional[TechnologyLibrary] = None,
    run: Optional[RunConfig] = None,
    _working_name: Optional[str] = None,
    _root_span: str = "optimize",
) -> OptimizeResult:
    """Run the greedy low-power loop with the named passes on a design copy.

    ``stimulus`` is a stimulus object (deep-copied per estimation run) or
    a zero-argument factory. ``passes`` lists registered pass names in
    application order (order is documented not to change the final
    design — see ``docs/passes.md``). ``run=RunConfig(...)`` overrides
    the config's cycles/warmup/engine, as in ``isolate_design``.
    """
    config = config or IsolationConfig()
    if run is not None:
        cfg = resolve_run_config(
            run,
            defaults=RunConfig(
                cycles=config.cycles, warmup=config.warmup, engine=config.engine
            ),
        )
        config = replace(
            config, cycles=cfg.cycles, warmup=cfg.warmup, engine=cfg.engine
        )
    library = library or default_library()
    pass_objects = resolve_passes(passes)
    pass_names = tuple(p.name for p in pass_objects)

    from repro.parallel.pool import WorkerPool

    pool = WorkerPool(config.workers)

    attrs = dict(
        design=design.name,
        style=config.style,
        engine=config.engine,
        workers=pool.workers,
    )
    if _root_span != "isolate":
        attrs["passes"] = ",".join(pass_names)
    with obs.span(_root_span, "stage", **attrs):
        return _run_optimize(
            design,
            stimulus,
            pass_objects,
            config,
            library,
            pool,
            working_name=_working_name or f"{design.name}_opt",
            iteration_span=f"{_root_span}.iteration",
        )


def _run_optimize(
    design: Design,
    stimulus: StimulusSource,
    passes: List[TransformPass],
    config: IsolationConfig,
    library: TechnologyLibrary,
    pool,
    working_name: str,
    iteration_span: str,
) -> OptimizeResult:
    """The traced body of the generic loop (see :func:`optimize`)."""
    working = design.copy(working_name)

    timings = StageTimings(engine=config.engine, workers=pool.workers)

    def timed_measure(*args, **kwargs):
        start = time.perf_counter()
        out = _measure_power(*args, timings=timings, **kwargs)
        timings.simulate_s += time.perf_counter() - start
        timings.simulations += 1
        return out

    def settle_score() -> None:
        # Score time = iteration wall time minus what the simulate and
        # transform stages already claimed.
        timings.score_s += (
            (time.perf_counter() - iteration_start)
            - (timings.simulate_s - simulate_before)
            - (timings.transform_s - transform_before)
        )

    # --- Baseline metrics & timing constraint -------------------------
    reference_timing = analyze_timing(working, library, clock_period=None)
    period = config.clock_period
    if period is None:
        period = reference_timing.clock_period * config.period_margin
    baseline_timing = analyze_timing(working, library, clock_period=period)
    baseline_power, _ = timed_measure(working, stimulus, config, library)
    baseline = DesignMetrics(
        power_mw=baseline_power,
        area=library.total_area(working),
        worst_slack=baseline_timing.worst_slack,
        clock_period=period,
    )

    result = OptimizeResult(
        original=design,
        design=working,
        config=config,
        passes=tuple(p.name for p in passes),
        baseline=baseline,
        final=baseline,  # replaced below
        timings=timings,
        _pass_objects={p.name: p for p in passes},
    )

    ctx = PassContext(
        working=working, config=config, library=library, period=period, pool=pool
    )
    for p in passes:
        p.begin(ctx)

    # --- Main loop (Algorithm 1 lines 13-31, across all passes) -------
    for index in range(config.max_iterations):
        with obs.span(iteration_span, "stage", index=index) as span:
            iteration_start = time.perf_counter()
            simulate_before = timings.simulate_s
            transform_before = timings.transform_s

            record = OptIterationRecord(index=index, total_power_mw=0.0)
            counts = [p.enumerate(record) for p in passes]
            if not any(counts):
                result.iterations.append(record)
                settle_score()
                break

            # One estimation run feeds every pass (line 16): toggle rates
            # for the power model plus each pass's own probes.
            monitors = [m for p in passes for m in p.monitors()]
            total_power, monitor = timed_measure(
                working, stimulus, config, library, extra_monitors=monitors
            )
            record.total_power_mw = total_power

            # Greedy selection under the shared h_min budget (lines 17-29),
            # pass by pass in the listed order, group by group within each.
            performed = False
            structure_changed = False
            for p, count in zip(passes, counts):
                if not count:
                    continue
                if structure_changed and p.conflicts_with_structure:
                    # An earlier pass rewired the netlist this iteration;
                    # this pass's candidates were enumerated against the
                    # old structure. Defer to the next iteration rather
                    # than apply stale plans.
                    obs.counter("passes.deferred", deferred=p.name).inc()
                    continue
                applied_this_pass = False
                for scores in p.score(total_power, monitor):
                    if not scores:
                        continue
                    record.scores.setdefault(p.name, []).extend(scores)
                    best = max(scores, key=lambda s: s.h)
                    if best.h >= config.weights.h_min:
                        transform_start = time.perf_counter()
                        applied = p.apply(best)
                        timings.transform_s += time.perf_counter() - transform_start
                        result.transforms.append(applied)
                        record.applied.append(applied)
                        performed = True
                        applied_this_pass = True
                    else:
                        p.below_threshold(best)
                if applied_this_pass and p.changes_structure:
                    structure_changed = True

            result.iterations.append(record)
            span.set(
                applied=len(record.applied),
                rejected=sum(len(v) for v in record.rejected.values()),
                measured_power_mw=record.total_power_mw,
            )
            settle_score()
            if not performed:
                break

    # --- Final metrics -------------------------------------------------
    final_power, _ = timed_measure(working, stimulus, config, library)
    final_timing = analyze_timing(working, library, clock_period=period)
    result.final = DesignMetrics(
        power_mw=final_power,
        area=library.total_area(working),
        worst_slack=final_timing.worst_slack,
        clock_period=period,
    )

    # Fold the pool's utilization accounting into the stage timings.
    # Close *before* reporting so a failing shutdown (recorded into
    # fallback_reason by WorkerPool.close) is visible in the timings.
    pool.close()
    pool_report = pool.report()
    timings.parallel_tasks = pool_report.tasks
    timings.parallel_busy_s = pool_report.busy_seconds
    timings.parallel_wall_s = pool_report.wall_seconds
    timings.pool_fallback_reason = pool_report.fallback_reason
    return result
