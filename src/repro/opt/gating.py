"""RT-level register clock gating as a :class:`TransformPass`.

The gating condition of a load-enabled register is derived with the
same activation machinery isolation uses
(:func:`repro.core.activation.enable_condition`), measured with an
expression probe riding on the shared estimation run, and scored with
the estimator's own clock-gating model: gating a register saves its
standing clock energy in disabled cycles but pays the integrated clock
gate's standing energy, its switching energy per enable toggle, and its
area. The score is the same ``h(c) = ω_p·rP − ω_a·rA`` merit every
other pass uses, so gating and isolation candidates compete under one
``h_min`` budget.

Free-running registers (no enable) have no gating condition at RT level
and are reported as rejected once per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import obs
from repro.baselines.clock_gating import clock_gate_registers
from repro.core.activation import enable_condition
from repro.opt.framework import (
    AppliedTransform,
    OptIterationRecord,
    PassContext,
    TransformPass,
    register_pass,
)
from repro.sim.probes import ProbeSet


@dataclass
class GatingScore:
    """Scored clock-gating opportunity for one load-enabled register."""

    register: object
    width: int
    condition: str
    enable_probability: float
    saved_mw: float
    overhead_mw: float
    net_mw: float
    area: float
    relative_power: float
    relative_area: float
    h: float

    @property
    def idle_probability(self) -> float:
        """Fraction of cycles the register's clock would be stopped."""
        return 1.0 - self.enable_probability


class ClockGatingPass(TransformPass):
    """Stop the clock of load-enabled registers in their idle cycles."""

    name = "clock_gating"

    def begin(self, ctx: PassContext) -> None:
        super().begin(ctx)
        self._reported_free_running = False

    def enumerate(self, record: OptIterationRecord) -> int:
        working = self.ctx.working
        self._candidates = []
        self._probes = ProbeSet()
        free_running: List[str] = []
        for register in sorted(working.registers, key=lambda r: r.name):
            if getattr(register, "clock_gated", False):
                continue
            if not register.has_enable:
                free_running.append(register.name)
                continue
            condition = enable_condition(register, "EN")
            self._probes.add(f"cg:{register.name}", condition)
            self._candidates.append((register, condition))
        if free_running and not self._reported_free_running:
            # Structural, not score-dependent: report once per run.
            self._reported_free_running = True
            record.rejected.setdefault(self.name, []).extend(free_running)
            for _ in free_running:
                obs.counter("registers.rejected", reason="free_running").inc()
        return len(self._candidates)

    def monitors(self) -> list:
        if not self._candidates:
            return []
        return [self._probes]

    def score(self, total_power_mw: float, monitor) -> List[List[GatingScore]]:
        ctx = self.ctx
        library = ctx.library
        icg = library.params_by_kind("icg")
        total_area = library.total_area(ctx.working)

        # Each register is its own selection group: unlike isolation banks
        # inside one combinational block, gated registers are independent,
        # so every one clearing h_min is applied in the same iteration.
        groups: List[List[GatingScore]] = []
        for register, condition in self._candidates:
            en_net = register.net("EN")
            pr_en = self._probes.probability(f"cg:{register.name}")
            toggle = monitor.toggle_rate(en_net)
            # Mirror of the estimator's clock-gated branch: standing
            # clock energy is charged only in enabled cycles, the ICG
            # costs standing energy plus switching per enable toggle.
            saved_pj = library.static_energy(register) * (1.0 - pr_en)
            overhead_pj = icg.energy_static + icg.energy_in * toggle
            saved_mw = library.power_mw(saved_pj)
            overhead_mw = library.power_mw(overhead_pj)
            net_mw = saved_mw - overhead_mw
            area = icg.area_per_bit
            relative_power = net_mw / total_power_mw if total_power_mw else 0.0
            relative_area = area / total_area if total_area else 0.0
            h = (
                ctx.config.weights.omega_p * relative_power
                - ctx.config.weights.omega_a * relative_area
            )
            groups.append(
                [
                    GatingScore(
                        register=register,
                        width=register.net("Q").width,
                        condition=str(condition),
                        enable_probability=pr_en,
                        saved_mw=saved_mw,
                        overhead_mw=overhead_mw,
                        net_mw=net_mw,
                        area=area,
                        relative_power=relative_power,
                        relative_area=relative_area,
                        h=h,
                    )
                ]
            )
        return groups

    def apply(self, best: GatingScore) -> AppliedTransform:
        # clock_gate_registers emits the "clock.gate" span and the
        # registers.gated counter itself (it is a traced transform now).
        name = best.register.name
        clock_gate_registers(self.ctx.working, registers=[name], in_place=True)
        return AppliedTransform(
            pass_name=self.name,
            target=name,
            detail={
                "condition": best.condition,
                "idle_probability": best.idle_probability,
            },
            estimated_net_mw=best.net_mw,
        )

    def below_threshold(self, best: GatingScore) -> None:
        obs.counter("registers.rejected", reason="below_h_min").inc()

    def serialize_score(self, score: GatingScore) -> dict:
        return {
            "register": score.register.name,
            "condition": score.condition,
            "h": score.h,
            "net_mw": score.net_mw,
            "idle_probability": score.idle_probability,
        }


register_pass(ClockGatingPass.name, ClockGatingPass)
