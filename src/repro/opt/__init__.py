"""`repro.opt` — the pluggable low-power pass framework.

:func:`optimize` runs Algorithm 1's greedy loop over any combination of
registered :class:`TransformPass` families; operand isolation and
register clock gating ship built in. See ``docs/passes.md``.
"""

from repro.opt.framework import (
    AppliedTransform,
    OptimizeConfig,
    OptimizeResult,
    OptIterationRecord,
    PassContext,
    TransformPass,
    available_passes,
    optimize,
    register_pass,
    resolve_passes,
)

# Importing the built-in pass modules registers them.
from repro.opt.isolation import IsolationPass
from repro.opt.gating import ClockGatingPass, GatingScore
from repro.opt.rewriting import RewritePass

__all__ = [
    "AppliedTransform",
    "ClockGatingPass",
    "GatingScore",
    "IsolationPass",
    "RewritePass",
    "OptimizeConfig",
    "OptimizeResult",
    "OptIterationRecord",
    "PassContext",
    "TransformPass",
    "available_passes",
    "optimize",
    "register_pass",
    "resolve_passes",
]
