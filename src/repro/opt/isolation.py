"""Operand isolation re-expressed as a :class:`TransformPass`.

This is the paper's Algorithm 1 body, stage by stage, moved behind the
pass protocol. Every statement, counter and span is carried over from
the legacy ``_run_isolation`` loop so that
``optimize(passes=("isolation",))`` is bit-identical to the seed
``isolate_design`` (the equivalence suite in
``tests/test_opt_equivalence.py`` pins this across all shipped designs).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro import obs
from repro.core.activation import derive_activation_functions
from repro.core.candidates import IsolationCandidate, find_candidates
from repro.core.cost import CandidateCost, CostModel
from repro.core.isolate import isolate_candidate
from repro.core.savings import SavingsModel
from repro.netlist.partition import partition_blocks
from repro.opt.framework import (
    AppliedTransform,
    OptIterationRecord,
    PassContext,
    TransformPass,
    register_pass,
)
from repro.timing.impact import estimate_isolation_impact
from repro.timing.sta import analyze_timing


class IsolationPass(TransformPass):
    """Insert AND/OR/latch isolation banks in front of idle datapath modules."""

    name = "isolation"
    # Bank insertion rewires module fanin; a structure-sensitive pass
    # scored this iteration must not apply after isolation has.
    changes_structure = True
    conflicts_with_structure = True

    def begin(self, ctx: PassContext) -> None:
        super().begin(ctx)
        # Candidates rejected for slack stay rejected: earlier transforms
        # only ever *add* delay on these paths.
        self._rejected: Set[str] = set()

    def enumerate(self, record: OptIterationRecord) -> int:
        ctx = self.ctx
        working, config, library = ctx.working, ctx.config, ctx.library
        blocks = partition_blocks(working)
        if config.lookahead_depth > 0:
            from repro.core.lookahead import derive_with_lookahead

            analysis = derive_with_lookahead(working, depth=config.lookahead_depth)
        else:
            analysis = derive_activation_functions(working)
        candidates = find_candidates(working, analysis, blocks)

        # Prune candidates whose activation function is a tautology —
        # syntactically (f ≡ 1) or semantically (e.g. the OR of a full
        # mux-select decode): isolation could never block anything.
        from repro.boolean.bdd import BddManager

        tautology_check = BddManager()
        eligible: List[IsolationCandidate] = []
        for c in candidates:
            if c.isolated or c.name in self._rejected:
                continue
            if c.always_active:
                obs.counter("candidates.rejected", reason="always_active").inc()
                continue
            if tautology_check.is_tautology(c.activation):
                obs.counter("candidates.rejected", reason="tautology").inc()
                continue
            eligible.append(c)

        # Slack rejection (lines 5–10; re-checked per iteration because
        # earlier isolations change arrival times). With style "auto" a
        # candidate survives if ANY style meets timing; the per-candidate
        # style choice below only considers the surviving styles.
        styles = ["and", "or", "latch"] if config.style == "auto" else [config.style]
        rejected_here = record.rejected.setdefault(self.name, [])
        with obs.span("slack.check", "stage", candidates=len(eligible)):
            timing = analyze_timing(working, library, clock_period=ctx.period)
            slack_ok: List[IsolationCandidate] = []
            allowed_styles: Dict[str, List[str]] = {}
            for c in eligible:
                passing = []
                for style in styles:
                    impact = estimate_isolation_impact(
                        working, c.cell, c.activation, style, library, timing
                    )
                    if not impact.violates(config.slack_threshold):
                        passing.append(style)
                if passing:
                    slack_ok.append(c)
                    allowed_styles[c.name] = passing
                else:
                    self._rejected.add(c.name)
                    rejected_here.append(c.name)
                    obs.counter("candidates.rejected", reason="slack").inc()

        self._blocks = blocks
        self._slack_ok = slack_ok
        self._allowed_styles = allowed_styles
        if slack_ok:
            # Savings probes ride along on the shared estimation run
            # (Algorithm 1 line 16); built over ALL candidates so probe
            # layout does not depend on this iteration's slack outcome.
            self._savings_model = SavingsModel(working, candidates, library)
        else:
            self._savings_model = None
        return len(slack_ok)

    def monitors(self) -> list:
        if self._savings_model is None:
            return []
        return [self._savings_model.probes]

    def score(self, total_power_mw: float, monitor) -> List[List[CandidateCost]]:
        from repro.parallel.scoring import score_candidates

        ctx = self.ctx
        self._savings_model.calibrate(monitor)
        cost_model = CostModel(
            self._savings_model,
            ctx.library,
            total_power_mw=total_power_mw,
            total_area=ctx.library.total_area(ctx.working),
            weights=ctx.config.weights,
        )

        # Score every surviving (candidate, style) pair — serially or on
        # the worker pool; both paths are bit-identical (repro.parallel).
        evaluated = score_candidates(
            cost_model,
            [
                (c.name, style)
                for c in self._slack_ok
                for style in self._allowed_styles[c.name]
            ],
            refined=ctx.config.refined_savings,
            pool=ctx.pool,
        )

        # One selection group per combinational block, each holding the
        # best-style score of every surviving candidate in that block
        # (Algorithm 1 lines 17–29: isolate at most one per block).
        groups: List[List[CandidateCost]] = []
        for block in self._blocks:
            block_candidates = [
                c for c in self._slack_ok if c.block.index == block.index
            ]
            if not block_candidates:
                continue
            scores = []
            for c in block_candidates:
                best_for_candidate = None
                for style in self._allowed_styles[c.name]:
                    score = evaluated[(c.name, style)]
                    if best_for_candidate is None or score.h > best_for_candidate.h:
                        best_for_candidate = score
                scores.append(best_for_candidate)
            groups.append(scores)
        return groups

    def apply(self, best: CandidateCost) -> AppliedTransform:
        with obs.span(
            "bank.insert",
            "transform",
            candidate=best.candidate.name,
            style=best.savings.style,
            block=best.candidate.block.index,
        ):
            instance = isolate_candidate(
                self.ctx.working, best.candidate.cell, best.candidate.activation,
                style=best.savings.style,
            )
        obs.counter("candidates.isolated", style=best.savings.style).inc()
        return AppliedTransform(
            pass_name=self.name,
            target=best.candidate.name,
            detail={
                "style": best.savings.style,
                "block": best.candidate.block.index,
            },
            estimated_net_mw=best.savings.net_mw,
            instance=instance,
        )

    def below_threshold(self, best: CandidateCost) -> None:
        obs.counter("candidates.rejected", reason="below_h_min").inc()

    def serialize_score(self, score: CandidateCost) -> dict:
        return {
            "candidate": score.candidate.name,
            "style": score.savings.style,
            "h": score.h,
            "net_mw": score.savings.net_mw,
            "idle_probability": score.savings.idle_probability,
        }


register_pass(IsolationPass.name, IsolationPass)
