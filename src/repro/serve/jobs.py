"""The job service: bounded queue, worker threads, job lifecycle.

:class:`JobService` turns the :class:`repro.api.Session` API into an
asynchronous multi-client workload:

* ``submit()`` validates the request *synchronously* (unknown method,
  bad parameters, unparseable design and unknown ``RunConfig`` fields
  fail fast, before anything is queued), computes the job's content
  address and either answers it from the :class:`ResultCache` —
  ``cached: true``, no queue slot consumed — or enqueues it;
* a fixed set of worker **threads** executes queued jobs through a
  fresh :class:`~repro.api.Session` each, recording a per-job trace
  into a private :class:`~repro.obs.Recorder` (the contextvar-based
  ``obs`` layer keeps concurrent jobs fully isolated) that is merged
  into the service recorder when the job finishes;
* the queue is **bounded**: when it is full, ``submit()`` raises
  :class:`~repro.errors.QueueFullError` carrying a ``retry_after_s``
  hint — the HTTP layer renders that as 429 + ``Retry-After`` instead
  of buffering without limit;
* ``shutdown(drain=True)`` stops intake and lets the workers finish
  every queued job before returning (``drain=False`` cancels what has
  not started yet).

Job states: ``queued → running → done | failed``, plus ``cancelled``
for jobs revoked before a worker picked them up. A transient failure
(worker crash, expired lease) sends a running job *back* to ``queued``
with exponential backoff until its attempt budget runs out; only
permanent failures (task errors, exceeded deadlines, exhausted budgets)
reach ``failed``, always with a structured ``Diagnostic`` body.

Durability and supervision are opt-in and composable:

* ``state_dir=`` attaches a :class:`~repro.serve.durable.DurableStore`:
  every lifecycle transition is journaled (fsync'd JSONL) and results
  spill to a disk blob cache, so a ``kill -9`` loses nothing that was
  acknowledged — on restart :meth:`JobService.recover` replays the
  journal, restores terminal jobs (results integrity-verified against
  their recorded digests), and re-enqueues orphans;
* ``supervise=True`` runs each attempt in a forked worker process via
  :class:`~repro.serve.supervisor.WorkerSupervisor` — worker threads
  never simulate inline — enabling real deadlines (SIGKILL past
  ``timeout_s``), crash containment with retry, lease heartbeats, and a
  circuit breaker that degrades to inline execution under repeated
  worker failures instead of going dark.

Result payloads are **deterministic**: they contain no wall-clock
timings, so a payload computed once, served from cache and recomputed
from scratch are all byte-identical (the equivalence the smoke test and
``tests/test_serve*.py`` pin down). Wall-clock data lives in the job
*metadata* (``duration_s``) and the observability layer instead.
"""

from __future__ import annotations

import itertools
import logging
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.api import Session
from repro.diagnostics import Diagnostic, errors_only
from repro.errors import (
    JobDeadlineError,
    JobNotFoundError,
    LeaseExpiredError,
    QueueFullError,
    ReproError,
    ServeError,
    ServiceStoppedError,
    TransientJobError,
)
from repro.netlist import textio
from repro.netlist.design import Design
from repro.runconfig import RunConfig
from repro.sim.compile import design_fingerprint
from repro.sim.stimulus import (
    normalize_stimulus_spec,
    resolve_stimulus_spec,
    stimulus_fingerprint,
)

from .cache import ResultCache, job_cache_key
from .durable import DiskResultCache, DurableStore, RecoveryReport, payload_digest
from .supervisor import RemoteJobError, WorkerSupervisor

logger = logging.getLogger("repro.serve")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

_STOP = object()  # worker-thread sentinel


# ----------------------------------------------------------------------
# Methods: name -> (allowed params, payload builder)
# ----------------------------------------------------------------------
def _result_validate(session: Session, params: dict) -> dict:
    diagnostics = session.validate(
        allow_dangling=bool(params.get("allow_dangling", False))
    )
    return {
        "design": session.design.name,
        "ok": not errors_only(diagnostics),
        "diagnostics": [d.to_dict() for d in diagnostics],
    }


def _result_estimate(session: Session, params: dict) -> dict:
    breakdown = session.estimate()
    cells = sorted(session.design.cells, key=lambda c: c.name)
    return {
        "design": session.design.name,
        "total_power_mw": breakdown.total_power_mw,
        "overhead_power_mw": breakdown.overhead_power_mw,
        "cell_power_mw": {c.name: breakdown.cell_power_mw(c) for c in cells},
        "module_power_mw": dict(sorted(breakdown.module_power_mw().items())),
    }


def _result_isolate(session: Session, params: dict) -> dict:
    result = session.isolate(style=params.get("style"))
    payload = result.to_dict()
    # Wall-clock stage timings are run metadata, not content — keeping
    # them out makes cached and fresh payloads byte-identical.
    payload.pop("timings", None)
    return payload


def _result_optimize(session: Session, params: dict) -> dict:
    kwargs = {}
    if params.get("passes") is not None:
        kwargs["passes"] = list(params["passes"])
    if any(params.get(key) is not None for key in ("h_min", "omega_p", "omega_a")):
        # Cost-weight overrides (the sweep grid's ω/h_min axis). They
        # ride in params, so they are cache-key ingredients for free.
        from repro.core.algorithm import IsolationConfig
        from repro.core.cost import CostWeights

        run_cfg = session.run
        kwargs["config"] = IsolationConfig(
            style=params.get("style") or "and",
            weights=CostWeights(
                omega_p=float(params.get("omega_p", 1.0)),
                omega_a=float(params.get("omega_a", 0.25)),
                h_min=float(params.get("h_min", 0.0)),
            ),
            cycles=run_cfg.cycles,
            warmup=run_cfg.warmup,
            engine=run_cfg.engine,
            workers=run_cfg.workers,
        )
    result = session.optimize(style=params.get("style"), **kwargs)
    payload = result.to_dict()
    payload.pop("timings", None)
    return payload


def _result_rank(session: Session, params: dict) -> dict:
    ranked = session.rank(
        style=params.get("style", "and"),
        clock_period=params.get("clock_period"),
        lookahead_depth=int(params.get("lookahead_depth", 0)),
    )
    return {
        "design": session.design.name,
        "style": params.get("style", "and"),
        "candidates": [r.to_dict() for r in ranked],
    }


def _result_compare(session: Session, params: dict) -> dict:
    comparison = session.compare(styles=params.get("styles"))
    rows = []
    for row in comparison.rows:
        rows.append(
            {
                "label": row.label,
                "power_mw": row.power_mw,
                "area_um2": row.area,
                "slack_ns": row.slack,
                "power_reduction": row.power_reduction,
                "area_increase": row.area_increase,
            }
        )
    return {"design": session.design.name, "rows": rows}


def _result_activation(session: Session, params: dict) -> dict:
    analysis = session.activation()
    modules = sorted(session.design.datapath_modules, key=lambda c: c.name)
    return {
        "design": session.design.name,
        "activation": {m.name: str(analysis.of_module(m)) for m in modules},
    }


#: The Session API surface exposed as job methods.
METHODS: Dict[str, Tuple[frozenset, Callable[[Session, dict], dict]]] = {
    "validate": (frozenset({"allow_dangling"}), _result_validate),
    "estimate": (frozenset(), _result_estimate),
    "isolate": (frozenset({"style"}), _result_isolate),
    # The ordered pass list is a cache-key ingredient: job_cache_key
    # canonicalises params with lists preserved in order.
    "optimize": (
        frozenset({"style", "passes", "h_min", "omega_p", "omega_a"}),
        _result_optimize,
    ),
    "rank": (
        frozenset({"style", "clock_period", "lookahead_depth"}),
        _result_rank,
    ),
    "compare": (frozenset({"styles"}), _result_compare),
    "activation": (frozenset(), _result_activation),
}

_ISOLATION_STYLES = ("and", "or", "latch")


def _validate_params(method: str, params: dict) -> dict:
    allowed, _ = METHODS[method]
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ServeError(
            f"unknown parameter(s) {unknown} for method {method!r}; "
            f"allowed: {sorted(allowed)}"
        )
    style = params.get("style")
    if style is not None and style not in _ISOLATION_STYLES:
        raise ServeError(
            f"unknown style {style!r}; choose one of {_ISOLATION_STYLES}"
        )
    for style in params.get("styles") or ():
        if style not in _ISOLATION_STYLES:
            raise ServeError(
                f"unknown style {style!r}; choose one of {_ISOLATION_STYLES}"
            )
    passes = params.get("passes")
    if passes is not None:
        from repro.opt import available_passes

        known = available_passes()
        if not isinstance(passes, (list, tuple)) or not passes:
            raise ServeError("passes must be a non-empty list of pass names")
        for name in passes:
            if name not in known:
                raise ServeError(
                    f"unknown pass {name!r}; choose one of {known}"
                )
        if len(set(passes)) != len(passes):
            raise ServeError("duplicate pass names in passes")
    for key in ("h_min", "omega_p", "omega_a"):
        value = params.get(key)
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ServeError(f"{key} must be a number, got {value!r}")
        if value < 0:
            raise ServeError(f"{key} must be >= 0, got {value}")
    return params


def _builtin_design(name: str) -> Design:
    """Resolve a builtin design name (generator name or CLI alias)."""
    import repro.designs as designs

    aliases = {
        "fig1": "paper_example",
        "fir": "fir_datapath",
        "alu": "alu_control_dominated",
        "bus": "shared_bus_datapath",
        "pipeline": "lookahead_pipeline",
        "soc": "soc_datapath",
        "cordic": "cordic_pipeline",
    }
    target = aliases.get(name, name)
    if target not in designs.__all__ or target == "random_datapath":
        raise ServeError(f"unknown builtin design {name!r}")
    return getattr(designs, target)()


def _error_payload(exc: BaseException, code: Optional[str] = None) -> dict:
    """Structured error body: exception type + Diagnostic records."""
    if code is None:
        code = "".join(
            "-" + ch.lower() if ch.isupper() else ch
            for ch in type(exc).__name__
        ).lstrip("-")
    diagnostic = Diagnostic(code=code, message=str(exc), severity="error")
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "diagnostics": [diagnostic.to_dict()],
    }


def _budget_exhausted_payload(exc: BaseException, attempts: int) -> dict:
    """Permanent-failure body for a job whose retry budget ran out."""
    diagnostic = Diagnostic(
        code="retry-budget-exhausted",
        message=(
            f"gave up after {attempts} attempt(s); "
            f"last transient failure: {exc}"
        ),
        severity="error",
    )
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "attempts": attempts,
        "diagnostics": [diagnostic.to_dict()],
    }


def _remote_error_payload(exc: "RemoteJobError") -> dict:
    """Task error that crossed the worker pipe — render like inline."""
    code = "".join(
        "-" + ch.lower() if ch.isupper() else ch for ch in exc.type_name
    ).lstrip("-")
    diagnostic = Diagnostic(code=code, message=str(exc), severity="error")
    return {
        "type": exc.type_name,
        "message": str(exc),
        "diagnostics": [diagnostic.to_dict()],
    }


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One asynchronous analysis request and its lifecycle record."""

    id: str
    method: str
    design: Optional[Design]
    design_name: str
    fingerprint: str
    run: RunConfig
    params: dict
    cache_key: str
    #: Canonical textual netlist — the wire/journal form every attempt
    #: (inline, worker process, post-crash replay) is rebuilt from.
    design_text: str = ""
    #: Normalized stimulus spec (profile / recorded trace); ``None`` is
    #: the legacy default random stimulus. Its fingerprint is folded
    #: into ``cache_key``.
    stimulus: Optional[dict] = None
    state: str = QUEUED
    cached: bool = False
    result: Optional[dict] = None
    error: Optional[dict] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Execution-robustness fields (PR 7): per-job deadline, bounded
    #: attempt budget, lease bookkeeping. ``attempt_token`` increments on
    #: every attempt start *and* every lease revocation, so a superseded
    #: attempt can never apply its outcome ("exactly-once completion").
    timeout_s: Optional[float] = None
    max_attempts: int = 1
    attempts: int = 0
    lease_expires_at: Optional[float] = None
    attempt_token: int = 0
    last_transient_error: Optional[str] = None
    recovered: bool = False

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def wire_payload(self) -> dict:
        """What crosses the fork/journal boundary to run this job."""
        payload = {
            "method": self.method,
            "design_text": self.design_text,
            "run": self.run.to_dict(),
            "params": self.params,
        }
        # Omitted (not null) for the default, keeping legacy payloads
        # byte-identical — journal replay and inline/worker dedupe rely
        # on that stability.
        if self.stimulus is not None:
            payload["stimulus"] = self.stimulus
        return payload

    def to_dict(self, include_result: bool = True) -> dict:
        """Wire representation (summary with ``include_result=False``)."""
        payload = {
            "id": self.id,
            "method": self.method,
            "design": self.design_name,
            "fingerprint": self.fingerprint,
            "cache_key": self.cache_key,
            "state": self.state,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "timeout_s": self.timeout_s,
            "recovered": self.recovered,
        }
        if include_result:
            payload["result"] = self.result
            payload["error"] = self.error
        return payload


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class JobService:
    """Bounded-queue job executor with a content-addressed result cache.

    Parameters
    ----------
    queue_size:
        Maximum queued (not yet running) jobs; submissions beyond it
        raise :class:`~repro.errors.QueueFullError`.
    job_workers:
        Worker threads executing jobs.
    cache_capacity:
        Result-cache entries kept (LRU beyond that; 0 disables).
    default_run:
        :class:`RunConfig` applied when a request carries none; per-job
        request fields override it.
    start:
        Start the worker threads immediately. Tests pass ``False`` to
        exercise queue backpressure and cancellation deterministically,
        then call :meth:`start`.
    state_dir:
        Attach a crash-safe :class:`~repro.serve.durable.DurableStore`
        rooted here: journal every transition, spill results to disk,
        and replay/recover on construction. ``None`` (default) keeps the
        legacy in-memory-only behaviour.
    supervise:
        Execute each attempt in a forked, killable worker process via
        :class:`~repro.serve.supervisor.WorkerSupervisor` (enables hard
        deadlines, crash retry, leases). Default off.
    max_attempts:
        Attempt budget per job when transient failures occur (used when
        a submission names none). ``1`` disables retries.
    job_timeout_s:
        Default per-job deadline in seconds (``None`` = unlimited);
        enforced by SIGKILL only under ``supervise=True``.
    lease_s:
        Running-job lease duration; heartbeats renew it while the
        supervisor polls. An expired lease marks the attempt dead and
        re-enqueues the job. ``0`` disables the lease reaper.
    retry_base_s / retry_cap_s:
        Exponential-backoff shape for transient retries:
        ``base * 2**(attempt-1) * jitter`` clamped to the cap.
    fsync:
        fsync the journal on every append (durable but slower); tests
        may disable it.
    """

    def __init__(
        self,
        queue_size: int = 64,
        job_workers: int = 2,
        cache_capacity: int = 256,
        default_run: Optional[RunConfig] = None,
        start: bool = True,
        state_dir: Optional[str] = None,
        supervise: bool = False,
        max_attempts: int = 3,
        job_timeout_s: Optional[float] = None,
        lease_s: float = 15.0,
        retry_base_s: float = 0.05,
        retry_cap_s: float = 2.0,
        fsync: bool = True,
        circuit_threshold: int = 3,
        circuit_cooldown_s: float = 10.0,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if job_workers < 1:
            raise ValueError(f"job_workers must be >= 1, got {job_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue_size = queue_size
        self.job_workers = job_workers
        self.default_run = default_run or RunConfig()
        self.max_attempts = max_attempts
        self.job_timeout_s = job_timeout_s
        self.lease_s = lease_s
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        self.recorder = obs.Recorder(track="serve")
        # One lock guards the (not thread-safe) service recorder: the
        # metrics registry, the tracer and everything absorbed into them.
        self._obs_lock = threading.RLock()
        self.store: Optional[DurableStore] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        if supervise:
            self.supervisor = WorkerSupervisor(
                circuit_threshold=circuit_threshold,
                circuit_cooldown_s=circuit_cooldown_s,
            )
        if state_dir is not None:
            self.store = DurableStore(
                state_dir,
                cache_capacity=cache_capacity,
                metrics=self.recorder.metrics,
                fsync=fsync,
            )
            self.cache = self.store.cache
            self.cache._lock = self._obs_lock  # share the recorder lock
        else:
            self.cache = _LockedCache(
                cache_capacity, self.recorder.metrics, self._obs_lock
            )
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.RLock()
        self._ids = itertools.count(1)
        self._accepting = True
        self._threads: List[threading.Thread] = []
        self._reaper: Optional[threading.Thread] = None
        self._stop_reaper = threading.Event()
        self._started = False
        self.last_recovery: Optional[RecoveryReport] = None
        if self.store is not None:
            self.last_recovery = self.recover()
        if start:
            self.start()

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Replay the journal: restore terminal jobs, re-enqueue orphans.

        Called from the constructor when a ``state_dir`` is attached.
        Completed jobs get their results back from the blob cache,
        integrity-verified against the digest recorded at finish time; a
        missing or corrupt blob re-enqueues the job instead of serving a
        lie. Jobs that were ``queued`` or ``running`` at crash time are
        orphans — their (implicit) lease died with the process — and are
        re-enqueued with a journaled ``retry`` record.
        """
        assert self.store is not None
        report = RecoveryReport(
            journal_records=len(self.store.replayed_records),
            corrupt_lines=self.store.corrupt_lines,
        )
        replayed = self.store.replayed_jobs()
        report.jobs_seen = len(replayed)
        max_id = 0
        orphans: List[Job] = []
        for job_id in sorted(replayed):
            state = replayed[job_id]
            try:
                max_id = max(max_id, int(job_id.lstrip("j")))
            except ValueError:
                pass
            run_cfg = self.default_run
            try:
                run_cfg = RunConfig.from_dict(state.get("run") or {})
            except ReproError:
                pass
            job = Job(
                id=job_id,
                method=state.get("method", ""),
                design=None,
                design_name=state.get("design_name", ""),
                fingerprint=state.get("fingerprint", ""),
                run=run_cfg,
                params=dict(state.get("params") or {}),
                cache_key=state.get("cache_key", ""),
                design_text=state.get("design_text", ""),
                stimulus=state.get("stimulus"),
                submitted_at=state.get("submitted_at", state.get("t", 0.0)),
                timeout_s=state.get("timeout_s"),
                max_attempts=int(state.get("max_attempts", self.max_attempts)),
                attempts=int(state.get("attempts", 0)),
                recovered=True,
            )
            terminal = state["state"]
            if terminal == "done":
                hit, payload = self.cache.get(job.cache_key)
                digest = state.get("result_digest")
                if hit and (digest is None or payload_digest(payload) == digest):
                    job.state = DONE
                    job.cached = True
                    job.result = payload
                    now = time.time()
                    job.started_at = job.started_at or now
                    job.finished_at = now
                    report.completed += 1
                    report.results_recovered += 1
                else:
                    report.results_missing += 1
                    orphans.append(job)
            elif terminal == "failed":
                job.state = FAILED
                job.error = state.get("error")
                job.finished_at = time.time()
                report.failed += 1
            elif terminal == "cancelled":
                job.state = CANCELLED
                job.finished_at = time.time()
                report.cancelled += 1
            else:  # queued / running: orphaned by the crash
                orphans.append(job)
            with self._jobs_lock:
                self._jobs[job.id] = job
        self._ids = itertools.count(max_id + 1)
        # Re-enqueued orphans may exceed the nominal queue bound; widen
        # the queue rather than drop acknowledged work (backpressure
        # applies to *new* submissions on top of the recovered backlog).
        if len(orphans) > self.queue_size:
            self._queue = queue.Queue(maxsize=len(orphans))
        for job in orphans:
            job.state = QUEUED
            job.attempt_token += 1
            job.lease_expires_at = None
            self._journal("retry", job, reason="recovered")
            report.reenqueued += 1
            report.reenqueued_ids.append(job.id)
            self._queue.put_nowait(job)
        with self._obs_lock:
            self.recorder.counter("serve.recoveries").inc()
            self.recorder.counter("serve.jobs.reenqueued", reason="recovered").inc(
                float(report.reenqueued)
            )
        self.store.last_recovery = report
        if report.reenqueued or report.corrupt_lines:
            logger.info("serve recovery: %s", report.summary())
        return report

    def _journal(self, type: str, job: Job, **fields) -> None:
        if self.store is None:
            return
        self.store.journal.append(type, job.id, **fields)
        with self._obs_lock:
            self.recorder.counter("serve.journal.records", type=type).inc()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.job_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.supervisor is not None and self.lease_s > 0:
            self._stop_reaper.clear()
            self._reaper = threading.Thread(
                target=self._reaper_loop,
                name="repro-serve-lease-reaper",
                daemon=True,
            )
            self._reaper.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        method: str,
        design: Optional[str] = None,
        builtin: Optional[str] = None,
        run: Optional[dict] = None,
        params: Optional[dict] = None,
        timeout_s: Optional[float] = None,
        max_attempts: Optional[int] = None,
        stimulus: Optional[dict] = None,
    ) -> Job:
        """Validate, content-address and enqueue (or cache-answer) a job.

        ``design`` is textual netlist source (:mod:`repro.netlist.textio`
        format); ``builtin`` names a shipped generator instead. Exactly
        one of the two must be given. ``run`` is a partial
        :class:`RunConfig` dict; ``params`` are method parameters.
        ``timeout_s`` / ``max_attempts`` override the service defaults
        for this job only — neither is a cache-key ingredient (a
        deadline changes whether a result exists, never its bytes).
        ``stimulus`` is an optional stimulus spec (see
        :func:`repro.sim.stimulus.normalize_stimulus_spec`): a workload
        profile name/dict or a recorded CSV/VCD trace. Its fingerprint
        *is* a cache-key ingredient — two jobs replaying different
        activity on the same design must never share a result.

        With a durable store attached, the successful return of this
        method *is* the acknowledgement: the job's ``submit`` record has
        been fsync'd and will survive ``kill -9``. A rejected submission
        (full queue) is compensated with a ``cancel`` record, so replay
        never resurrects work the client was told to retry.
        """
        if not self._accepting:
            raise ServiceStoppedError()
        if method not in METHODS:
            raise ServeError(
                f"unknown method {method!r}; choose one of {sorted(METHODS)}"
            )
        params = _validate_params(method, dict(params or {}))
        if (design is None) == (builtin is None):
            raise ServeError("provide exactly one of 'design' and 'builtin'")
        if timeout_s is not None and timeout_s <= 0:
            raise ServeError(f"timeout_s must be > 0, got {timeout_s}")
        if max_attempts is not None and int(max_attempts) < 1:
            raise ServeError(f"max_attempts must be >= 1, got {max_attempts}")
        design_obj = (
            textio.loads(design) if design is not None else _builtin_design(builtin)
        )
        stimulus_spec = normalize_stimulus_spec(stimulus)  # raises StimulusError
        run_cfg = self.default_run
        if run:
            RunConfig.from_dict(run)  # rejects unknown fields loudly
            run_cfg = run_cfg.replace(**dict(run))  # only the named fields
        run_cfg = run_cfg.replace(trace=False)  # job tracing is service-managed
        fingerprint = design_fingerprint(design_obj)
        cache_key = job_cache_key(
            method,
            fingerprint,
            run_cfg.fingerprint(),
            params,
            stimulus_fingerprint(stimulus_spec),
        )
        job = Job(
            id=f"j{next(self._ids):06d}",
            method=method,
            design=design_obj,
            design_name=design_obj.name,
            fingerprint=fingerprint,
            run=run_cfg,
            params=params,
            cache_key=cache_key,
            design_text=textio.dumps(design_obj),
            stimulus=stimulus_spec,
            timeout_s=timeout_s if timeout_s is not None else self.job_timeout_s,
            max_attempts=(
                int(max_attempts) if max_attempts is not None else self.max_attempts
            ),
        )
        with self._jobs_lock:
            self._jobs[job.id] = job
        with self._obs_lock:
            self.recorder.counter("serve.jobs.submitted", method=method).inc()
        self._journal(
            "submit",
            job,
            method=job.method,
            design_name=job.design_name,
            design_text=job.design_text,
            run=job.run.to_dict(),
            params=job.params,
            stimulus=job.stimulus,
            cache_key=job.cache_key,
            fingerprint=job.fingerprint,
            timeout_s=job.timeout_s,
            max_attempts=job.max_attempts,
            submitted_at=job.submitted_at,
        )
        hit, payload = self.cache.get(cache_key)
        if hit:
            job.cached = True
            job.result = payload
            job.state = DONE
            now = time.time()
            job.started_at = job.finished_at = now
            self._journal(
                "finish", job, cached=True, result_digest=payload_digest(payload)
            )
            with self._obs_lock:
                self.recorder.counter("serve.jobs.completed", state=DONE).inc()
            return job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._jobs_lock:
                del self._jobs[job.id]
            self._journal("cancel", job, reason="queue-full")
            with self._obs_lock:
                self.recorder.counter("serve.jobs.rejected").inc()
            raise QueueFullError(
                f"job queue is full ({self.queue_size} queued); retry later",
                retry_after_s=self._retry_after_s(),
            ) from None
        self._set_queue_gauge()
        return job

    def _retry_after_s(self) -> float:
        """Backpressure hint: how long until a queue slot likely frees."""
        with self._obs_lock:
            snapshot = self.recorder.metrics.value("serve.job.duration_s")
        mean = (snapshot or {}).get("mean", 0.0) if snapshot else 0.0
        if mean <= 0.0:
            return 1.0
        estimate = mean * self.queue_size / max(1, self.job_workers)
        return max(1.0, min(60.0, estimate))

    def _set_queue_gauge(self) -> None:
        with self._obs_lock:
            self.recorder.gauge("serve.queue.depth").set(self._queue.qsize())

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def jobs(self, limit: int = 100) -> List[Job]:
        """Most recent jobs, newest first."""
        with self._jobs_lock:
            recent = list(self._jobs.values())[-limit:]
        return list(reversed(recent))

    def cancel(self, job_id: str) -> Job:
        """Revoke a queued job (running/finished jobs are left alone)."""
        job = self.get(job_id)
        cancelled = False
        with self._jobs_lock:
            if job.state == QUEUED:
                job.state = CANCELLED
                job.attempt_token += 1
                job.finished_at = time.time()
                cancelled = True
        if cancelled:
            self._journal("cancel", job, reason="client")
            with self._obs_lock:
                self.recorder.counter(
                    "serve.jobs.completed", state=CANCELLED
                ).inc()
        return job

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_s: float = 0.005,
        max_poll_s: float = 0.25,
    ) -> Job:
        """Block until the job finishes (in-process convenience).

        Polls with exponential backoff from ``poll_s`` up to
        ``max_poll_s`` instead of burning a fixed-rate busy loop.
        """
        deadline = time.monotonic() + timeout
        interval = max(poll_s, 1e-4)
        while True:
            job = self.get(job_id)
            if job.finished:
                return job
            now = time.monotonic()
            if now >= deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for job {job_id}",
                    status=504,
                )
            time.sleep(min(interval, deadline - now))
            interval = min(interval * 2.0, max_poll_s)

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._execute(item)
            finally:
                self._queue.task_done()
                self._set_queue_gauge()

    def _heartbeat(self, job: Job) -> None:
        """Renew the running job's lease (called from the poll loop)."""
        if self.lease_s > 0:
            job.lease_expires_at = time.time() + self.lease_s

    def _retry_backoff_s(self, attempt: int) -> float:
        """Exponential backoff with full jitter, clamped to the cap."""
        base = self.retry_base_s * (2.0 ** max(0, attempt - 1))
        return min(self.retry_cap_s, base * (0.5 + random.random()))

    def _run_attempt(self, job: Job) -> dict:
        """One execution attempt: supervised process, or legacy inline."""
        if self.supervisor is not None:
            return self.supervisor.execute(
                job.id,
                job.wire_payload(),
                timeout_s=job.timeout_s,
                heartbeat=lambda: self._heartbeat(job),
            )
        design = job.design
        if design is None:  # recovered from the journal: rebuild
            design = textio.loads(job.design_text)
            job.design = design
        _, builder = METHODS[job.method]
        stimulus = None
        if job.stimulus is not None:
            stimulus = resolve_stimulus_spec(
                job.stimulus, design, seed=job.run.seed
            )
        session = Session(design, stimulus=stimulus, run=job.run)
        return builder(session, job.params)

    def _execute(self, job: Job) -> None:
        with self._jobs_lock:
            if job.state != QUEUED:  # cancelled while queued
                return
            job.state = RUNNING
            if job.started_at is None:
                job.started_at = time.time()
            job.attempts += 1
            job.attempt_token += 1
            token = job.attempt_token
            attempt = job.attempts
            if self.supervisor is not None and self.lease_s > 0:
                job.lease_expires_at = time.time() + self.lease_s
        self._journal("start", job, attempt=attempt)
        recorder = obs.Recorder(track=f"serve:{job.id}")
        outcome = "failed"
        payload: Optional[dict] = None
        error: Optional[dict] = None
        retry_reason: Optional[str] = None
        try:
            with obs.use(recorder):
                with obs.span(
                    "serve.job",
                    "serve",
                    job=job.id,
                    method=job.method,
                    design=job.design_name,
                    fingerprint=job.fingerprint[:12],
                    attempt=attempt,
                ):
                    payload = self._run_attempt(job)
            outcome = "done"
        except TransientJobError as exc:
            if attempt < job.max_attempts:
                outcome = "retry"
                retry_reason = f"{type(exc).__name__}: {exc}"
            else:
                error = _budget_exhausted_payload(exc, attempt)
        except JobDeadlineError as exc:
            error = _error_payload(exc, code="deadline-exceeded")
            with self._obs_lock:
                self.recorder.counter("serve.jobs.timeouts").inc()
        except RemoteJobError as exc:
            error = _remote_error_payload(exc)
        except ReproError as exc:
            error = _error_payload(exc)
        except Exception as exc:  # defensive: a job must never kill a worker
            error = _error_payload(exc)
        with self._obs_lock:
            self.recorder.absorb(
                recorder.trace_payload(),
                recorder.metrics,
                track=f"serve:{job.id}",
            )
        if outcome == "retry":
            self._requeue_after_transient(job, token, retry_reason or "")
            return
        if outcome == "done" and payload is not None:
            # Write-ahead: blob first, then the journal finish record,
            # then the in-memory transition — a crash between any two
            # steps replays to a consistent (at worst re-run) state.
            self.cache.put(job.cache_key, payload)
            self._journal(
                "finish", job, result_digest=payload_digest(payload)
            )
        else:
            self._journal("fail", job, error=error)
        applied = False
        with self._jobs_lock:
            if job.attempt_token == token and job.state == RUNNING:
                if outcome == "done":
                    job.result = payload
                    job.state = DONE
                else:
                    job.error = error
                    job.state = FAILED
                job.lease_expires_at = None
                job.finished_at = time.time()
                applied = True
        if applied:
            with self._obs_lock:
                self.recorder.counter(
                    "serve.jobs.completed", state=job.state
                ).inc()
                self.recorder.histogram("serve.job.duration_s").observe(
                    job.duration_s or 0.0
                )

    def _requeue_after_transient(
        self, job: Job, token: int, reason: str
    ) -> None:
        """Back off, then hand the job back to the queue for a retry."""
        backoff = self._retry_backoff_s(job.attempts)
        requeued = False
        with self._jobs_lock:
            if job.attempt_token == token and job.state == RUNNING:
                job.state = QUEUED
                job.lease_expires_at = None
                job.last_transient_error = reason
                requeued = True
        if not requeued:  # superseded by the reaper meanwhile
            return
        self._journal("retry", job, reason=reason, backoff_s=backoff)
        with self._obs_lock:
            self.recorder.counter("serve.jobs.retries").inc()
        logger.warning(
            "job %s attempt %d/%d failed transiently (%s); retrying in %.2fs",
            job.id, job.attempts, job.max_attempts, reason, backoff,
        )
        time.sleep(backoff)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            error = {
                "type": "QueueFullError",
                "message": "could not re-enqueue after transient failure: "
                "queue is full",
                "diagnostics": [
                    Diagnostic(
                        code="retry-requeue-failed",
                        message=f"job {job.id}: {reason}",
                        severity="error",
                    ).to_dict()
                ],
            }
            with self._jobs_lock:
                if job.attempt_token == token and job.state == QUEUED:
                    job.error = error
                    job.state = FAILED
                    job.finished_at = time.time()
            self._journal("fail", job, error=error)
            with self._obs_lock:
                self.recorder.counter(
                    "serve.jobs.completed", state=FAILED
                ).inc()

    # ------------------------------------------------------------------
    def _reaper_loop(self) -> None:
        interval = max(0.05, min(1.0, self.lease_s / 3.0))
        while not self._stop_reaper.wait(interval):
            self._reap_expired_leases()

    def _reap_expired_leases(self) -> int:
        """Re-enqueue (or fail) running jobs whose lease lapsed.

        A lease only lapses when the attempt's poll loop stopped
        heartbeating — a wedged or dead worker thread. Bumping
        ``attempt_token`` guarantees that if the old attempt *does*
        come back from the dead, its outcome is discarded: completion
        is applied exactly once.
        """
        now = time.time()
        reaped = 0
        with self._jobs_lock:
            expired = [
                job
                for job in self._jobs.values()
                if job.state == RUNNING
                and job.lease_expires_at is not None
                and job.lease_expires_at < now
            ]
        for job in expired:
            requeue = False
            with self._jobs_lock:
                if (
                    job.state != RUNNING
                    or job.lease_expires_at is None
                    or job.lease_expires_at >= now
                ):
                    continue
                job.attempt_token += 1
                job.lease_expires_at = None
                if job.attempts < job.max_attempts:
                    job.state = QUEUED
                    job.last_transient_error = "lease expired"
                    requeue = True
                else:
                    job.error = _budget_exhausted_payload(
                        LeaseExpiredError(
                            f"job {job.id}: lease expired after "
                            f"{job.attempts} attempt(s)"
                        ),
                        job.attempts,
                    )
                    job.state = FAILED
                    job.finished_at = time.time()
            reaped += 1
            with self._obs_lock:
                self.recorder.counter("serve.leases.expired").inc()
            logger.warning(
                "job %s lease expired (attempt %d/%d); %s",
                job.id, job.attempts, job.max_attempts,
                "re-enqueueing" if requeue else "attempt budget exhausted",
            )
            if requeue:
                self._journal("retry", job, reason="lease-expired")
                try:
                    self._queue.put_nowait(job)
                except queue.Full:
                    with self._jobs_lock:
                        job.error = _budget_exhausted_payload(
                            LeaseExpiredError(
                                f"job {job.id}: lease expired and queue full"
                            ),
                            job.attempts,
                        )
                        job.state = FAILED
                        job.finished_at = time.time()
                    self._journal("fail", job, error=job.error)
                    with self._obs_lock:
                        self.recorder.counter(
                            "serve.jobs.completed", state=FAILED
                        ).inc()
            else:
                self._journal("fail", job, error=job.error)
                with self._obs_lock:
                    self.recorder.counter(
                        "serve.jobs.completed", state=FAILED
                    ).inc()
        return reaped

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Health snapshot (the ``/healthz`` body)."""
        with self._jobs_lock:
            counts: Dict[str, int] = {state: 0 for state in STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
        payload = {
            "status": "ok" if self._accepting else "draining",
            "accepting": self._accepting,
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "job_workers": self.job_workers,
            "jobs": counts,
            "cache": self.cache.stats(),
        }
        if self.store is not None:
            payload["durable"] = self.store.status()
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.status()
        return payload

    def metrics_text(self) -> str:
        """Prometheus exposition of the service registry."""
        with self._obs_lock:
            self.recorder.gauge("serve.queue.depth").set(self._queue.qsize())
            return self.recorder.metrics.prometheus_text()

    @property
    def accepting(self) -> bool:
        return self._accepting

    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop intake; drain (or cancel) queued work; join the workers.

        Idempotent. With ``drain=True`` every job already queued still
        runs to completion; with ``drain=False`` queued jobs are
        cancelled and only in-flight ones finish. Worker threads that
        fail to join within ``timeout`` are detected and reported (a
        metric plus a log line) instead of silently leaked.
        """
        self._accepting = False
        if not drain:
            with self._jobs_lock:
                queued = [j for j in self._jobs.values() if j.state == QUEUED]
            for job in queued:
                self.cancel(job.id)
        if self._started:
            # Sentinels queue *behind* remaining jobs, so workers finish
            # the backlog before exiting. put() may block briefly when
            # the queue is full of real jobs — that is the drain.
            for _ in self._threads:
                self._queue.put(_STOP)
            stuck: List[str] = []
            for thread in self._threads:
                thread.join(timeout)
                if thread.is_alive():
                    stuck.append(thread.name)
            if stuck:
                with self._obs_lock:
                    self.recorder.counter("serve.shutdown.stuck_threads").inc(
                        float(len(stuck))
                    )
                logger.warning(
                    "shutdown: %d worker thread(s) failed to join within "
                    "%.1fs: %s (daemon threads; they die with the process)",
                    len(stuck), timeout, ", ".join(stuck),
                )
            self._threads = []
            self._started = False
        if self._reaper is not None:
            self._stop_reaper.set()
            self._reaper.join(timeout)
            self._reaper = None
        if self.store is not None:
            self.store.close()


class _LockedCache(ResultCache):
    """ResultCache sharing the service's recorder lock for its counters."""

    def __init__(self, capacity, metrics, lock) -> None:
        super().__init__(capacity, metrics)
        self._lock = lock
