"""The job service: bounded queue, worker threads, job lifecycle.

:class:`JobService` turns the :class:`repro.api.Session` API into an
asynchronous multi-client workload:

* ``submit()`` validates the request *synchronously* (unknown method,
  bad parameters, unparseable design and unknown ``RunConfig`` fields
  fail fast, before anything is queued), computes the job's content
  address and either answers it from the :class:`ResultCache` —
  ``cached: true``, no queue slot consumed — or enqueues it;
* a fixed set of worker **threads** executes queued jobs through a
  fresh :class:`~repro.api.Session` each, recording a per-job trace
  into a private :class:`~repro.obs.Recorder` (the contextvar-based
  ``obs`` layer keeps concurrent jobs fully isolated) that is merged
  into the service recorder when the job finishes;
* the queue is **bounded**: when it is full, ``submit()`` raises
  :class:`~repro.errors.QueueFullError` carrying a ``retry_after_s``
  hint — the HTTP layer renders that as 429 + ``Retry-After`` instead
  of buffering without limit;
* ``shutdown(drain=True)`` stops intake and lets the workers finish
  every queued job before returning (``drain=False`` cancels what has
  not started yet).

Job states: ``queued → running → done | failed``, plus ``cancelled``
for jobs revoked before a worker picked them up.

Result payloads are **deterministic**: they contain no wall-clock
timings, so a payload computed once, served from cache and recomputed
from scratch are all byte-identical (the equivalence the smoke test and
``tests/test_serve*.py`` pin down). Wall-clock data lives in the job
*metadata* (``duration_s``) and the observability layer instead.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.api import Session
from repro.diagnostics import Diagnostic, errors_only
from repro.errors import (
    JobNotFoundError,
    QueueFullError,
    ReproError,
    ServeError,
    ServiceStoppedError,
)
from repro.netlist import textio
from repro.netlist.design import Design
from repro.runconfig import RunConfig
from repro.sim.compile import design_fingerprint

from .cache import ResultCache, job_cache_key

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

_STOP = object()  # worker-thread sentinel


# ----------------------------------------------------------------------
# Methods: name -> (allowed params, payload builder)
# ----------------------------------------------------------------------
def _result_validate(session: Session, params: dict) -> dict:
    diagnostics = session.validate(
        allow_dangling=bool(params.get("allow_dangling", False))
    )
    return {
        "design": session.design.name,
        "ok": not errors_only(diagnostics),
        "diagnostics": [d.to_dict() for d in diagnostics],
    }


def _result_estimate(session: Session, params: dict) -> dict:
    breakdown = session.estimate()
    cells = sorted(session.design.cells, key=lambda c: c.name)
    return {
        "design": session.design.name,
        "total_power_mw": breakdown.total_power_mw,
        "overhead_power_mw": breakdown.overhead_power_mw,
        "cell_power_mw": {c.name: breakdown.cell_power_mw(c) for c in cells},
        "module_power_mw": dict(sorted(breakdown.module_power_mw().items())),
    }


def _result_isolate(session: Session, params: dict) -> dict:
    result = session.isolate(style=params.get("style"))
    payload = result.to_dict()
    # Wall-clock stage timings are run metadata, not content — keeping
    # them out makes cached and fresh payloads byte-identical.
    payload.pop("timings", None)
    return payload


def _result_optimize(session: Session, params: dict) -> dict:
    kwargs = {}
    if params.get("passes") is not None:
        kwargs["passes"] = list(params["passes"])
    result = session.optimize(style=params.get("style"), **kwargs)
    payload = result.to_dict()
    payload.pop("timings", None)
    return payload


def _result_rank(session: Session, params: dict) -> dict:
    ranked = session.rank(
        style=params.get("style", "and"),
        clock_period=params.get("clock_period"),
        lookahead_depth=int(params.get("lookahead_depth", 0)),
    )
    return {
        "design": session.design.name,
        "style": params.get("style", "and"),
        "candidates": [r.to_dict() for r in ranked],
    }


def _result_compare(session: Session, params: dict) -> dict:
    comparison = session.compare(styles=params.get("styles"))
    rows = []
    for row in comparison.rows:
        rows.append(
            {
                "label": row.label,
                "power_mw": row.power_mw,
                "area_um2": row.area,
                "slack_ns": row.slack,
                "power_reduction": row.power_reduction,
                "area_increase": row.area_increase,
            }
        )
    return {"design": session.design.name, "rows": rows}


def _result_activation(session: Session, params: dict) -> dict:
    analysis = session.activation()
    modules = sorted(session.design.datapath_modules, key=lambda c: c.name)
    return {
        "design": session.design.name,
        "activation": {m.name: str(analysis.of_module(m)) for m in modules},
    }


#: The Session API surface exposed as job methods.
METHODS: Dict[str, Tuple[frozenset, Callable[[Session, dict], dict]]] = {
    "validate": (frozenset({"allow_dangling"}), _result_validate),
    "estimate": (frozenset(), _result_estimate),
    "isolate": (frozenset({"style"}), _result_isolate),
    # The ordered pass list is a cache-key ingredient: job_cache_key
    # canonicalises params with lists preserved in order.
    "optimize": (frozenset({"style", "passes"}), _result_optimize),
    "rank": (
        frozenset({"style", "clock_period", "lookahead_depth"}),
        _result_rank,
    ),
    "compare": (frozenset({"styles"}), _result_compare),
    "activation": (frozenset(), _result_activation),
}

_ISOLATION_STYLES = ("and", "or", "latch")


def _validate_params(method: str, params: dict) -> dict:
    allowed, _ = METHODS[method]
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ServeError(
            f"unknown parameter(s) {unknown} for method {method!r}; "
            f"allowed: {sorted(allowed)}"
        )
    style = params.get("style")
    if style is not None and style not in _ISOLATION_STYLES:
        raise ServeError(
            f"unknown style {style!r}; choose one of {_ISOLATION_STYLES}"
        )
    for style in params.get("styles") or ():
        if style not in _ISOLATION_STYLES:
            raise ServeError(
                f"unknown style {style!r}; choose one of {_ISOLATION_STYLES}"
            )
    passes = params.get("passes")
    if passes is not None:
        from repro.opt import available_passes

        known = available_passes()
        if not isinstance(passes, (list, tuple)) or not passes:
            raise ServeError("passes must be a non-empty list of pass names")
        for name in passes:
            if name not in known:
                raise ServeError(
                    f"unknown pass {name!r}; choose one of {known}"
                )
        if len(set(passes)) != len(passes):
            raise ServeError("duplicate pass names in passes")
    return params


def _builtin_design(name: str) -> Design:
    """Resolve a builtin design name (generator name or CLI alias)."""
    import repro.designs as designs

    aliases = {
        "fig1": "paper_example",
        "fir": "fir_datapath",
        "alu": "alu_control_dominated",
        "bus": "shared_bus_datapath",
        "pipeline": "lookahead_pipeline",
        "soc": "soc_datapath",
        "cordic": "cordic_pipeline",
    }
    target = aliases.get(name, name)
    if target not in designs.__all__ or target == "random_datapath":
        raise ServeError(f"unknown builtin design {name!r}")
    return getattr(designs, target)()


def _error_payload(exc: BaseException) -> dict:
    """Structured error body: exception type + Diagnostic records."""
    code = "".join(
        "-" + ch.lower() if ch.isupper() else ch for ch in type(exc).__name__
    ).lstrip("-")
    diagnostic = Diagnostic(code=code, message=str(exc), severity="error")
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "diagnostics": [diagnostic.to_dict()],
    }


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One asynchronous analysis request and its lifecycle record."""

    id: str
    method: str
    design: Design
    design_name: str
    fingerprint: str
    run: RunConfig
    params: dict
    cache_key: str
    state: str = QUEUED
    cached: bool = False
    result: Optional[dict] = None
    error: Optional[dict] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, include_result: bool = True) -> dict:
        """Wire representation (summary with ``include_result=False``)."""
        payload = {
            "id": self.id,
            "method": self.method,
            "design": self.design_name,
            "fingerprint": self.fingerprint,
            "cache_key": self.cache_key,
            "state": self.state,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
        }
        if include_result:
            payload["result"] = self.result
            payload["error"] = self.error
        return payload


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class JobService:
    """Bounded-queue job executor with a content-addressed result cache.

    Parameters
    ----------
    queue_size:
        Maximum queued (not yet running) jobs; submissions beyond it
        raise :class:`~repro.errors.QueueFullError`.
    job_workers:
        Worker threads executing jobs.
    cache_capacity:
        Result-cache entries kept (LRU beyond that; 0 disables).
    default_run:
        :class:`RunConfig` applied when a request carries none; per-job
        request fields override it.
    start:
        Start the worker threads immediately. Tests pass ``False`` to
        exercise queue backpressure and cancellation deterministically,
        then call :meth:`start`.
    """

    def __init__(
        self,
        queue_size: int = 64,
        job_workers: int = 2,
        cache_capacity: int = 256,
        default_run: Optional[RunConfig] = None,
        start: bool = True,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if job_workers < 1:
            raise ValueError(f"job_workers must be >= 1, got {job_workers}")
        self.queue_size = queue_size
        self.job_workers = job_workers
        self.default_run = default_run or RunConfig()
        self.recorder = obs.Recorder(track="serve")
        # One lock guards the (not thread-safe) service recorder: the
        # metrics registry, the tracer and everything absorbed into them.
        self._obs_lock = threading.RLock()
        self.cache = _LockedCache(
            cache_capacity, self.recorder.metrics, self._obs_lock
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.RLock()
        self._ids = itertools.count(1)
        self._accepting = True
        self._threads: List[threading.Thread] = []
        self._started = False
        if start:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.job_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    def submit(
        self,
        method: str,
        design: Optional[str] = None,
        builtin: Optional[str] = None,
        run: Optional[dict] = None,
        params: Optional[dict] = None,
    ) -> Job:
        """Validate, content-address and enqueue (or cache-answer) a job.

        ``design`` is textual netlist source (:mod:`repro.netlist.textio`
        format); ``builtin`` names a shipped generator instead. Exactly
        one of the two must be given. ``run`` is a partial
        :class:`RunConfig` dict; ``params`` are method parameters.
        """
        if not self._accepting:
            raise ServiceStoppedError()
        if method not in METHODS:
            raise ServeError(
                f"unknown method {method!r}; choose one of {sorted(METHODS)}"
            )
        params = _validate_params(method, dict(params or {}))
        if (design is None) == (builtin is None):
            raise ServeError("provide exactly one of 'design' and 'builtin'")
        design_obj = (
            textio.loads(design) if design is not None else _builtin_design(builtin)
        )
        run_cfg = self.default_run
        if run:
            RunConfig.from_dict(run)  # rejects unknown fields loudly
            run_cfg = run_cfg.replace(**dict(run))  # only the named fields
        run_cfg = run_cfg.replace(trace=False)  # job tracing is service-managed
        fingerprint = design_fingerprint(design_obj)
        cache_key = job_cache_key(
            method, fingerprint, run_cfg.fingerprint(), params
        )
        job = Job(
            id=f"j{next(self._ids):06d}",
            method=method,
            design=design_obj,
            design_name=design_obj.name,
            fingerprint=fingerprint,
            run=run_cfg,
            params=params,
            cache_key=cache_key,
        )
        with self._jobs_lock:
            self._jobs[job.id] = job
        with self._obs_lock:
            self.recorder.counter("serve.jobs.submitted", method=method).inc()
        hit, payload = self.cache.get(cache_key)
        if hit:
            job.cached = True
            job.result = payload
            job.state = DONE
            now = time.time()
            job.started_at = job.finished_at = now
            with self._obs_lock:
                self.recorder.counter("serve.jobs.completed", state=DONE).inc()
            return job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._jobs_lock:
                del self._jobs[job.id]
            with self._obs_lock:
                self.recorder.counter("serve.jobs.rejected").inc()
            raise QueueFullError(
                f"job queue is full ({self.queue_size} queued); retry later",
                retry_after_s=self._retry_after_s(),
            ) from None
        self._set_queue_gauge()
        return job

    def _retry_after_s(self) -> float:
        """Backpressure hint: how long until a queue slot likely frees."""
        with self._obs_lock:
            snapshot = self.recorder.metrics.value("serve.job.duration_s")
        mean = (snapshot or {}).get("mean", 0.0) if snapshot else 0.0
        if mean <= 0.0:
            return 1.0
        estimate = mean * self.queue_size / max(1, self.job_workers)
        return max(1.0, min(60.0, estimate))

    def _set_queue_gauge(self) -> None:
        with self._obs_lock:
            self.recorder.gauge("serve.queue.depth").set(self._queue.qsize())

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def jobs(self, limit: int = 100) -> List[Job]:
        """Most recent jobs, newest first."""
        with self._jobs_lock:
            recent = list(self._jobs.values())[-limit:]
        return list(reversed(recent))

    def cancel(self, job_id: str) -> Job:
        """Revoke a queued job (running/finished jobs are left alone)."""
        job = self.get(job_id)
        with self._jobs_lock:
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = time.time()
                with self._obs_lock:
                    self.recorder.counter(
                        "serve.jobs.completed", state=CANCELLED
                    ).inc()
        return job

    def wait(self, job_id: str, timeout: float = 60.0, poll_s: float = 0.01) -> Job:
        """Block until the job finishes (in-process convenience)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            if job.finished:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for job {job_id}",
                    status=504,
                )
            time.sleep(poll_s)

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._execute(item)
            finally:
                self._queue.task_done()
                self._set_queue_gauge()

    def _execute(self, job: Job) -> None:
        with self._jobs_lock:
            if job.state != QUEUED:  # cancelled while queued
                return
            job.state = RUNNING
            job.started_at = time.time()
        recorder = obs.Recorder(track=f"serve:{job.id}")
        try:
            with obs.use(recorder):
                with obs.span(
                    "serve.job",
                    "serve",
                    job=job.id,
                    method=job.method,
                    design=job.design_name,
                    fingerprint=job.fingerprint[:12],
                ):
                    _, builder = METHODS[job.method]
                    session = Session(job.design, run=job.run)
                    payload = builder(session, job.params)
            self.cache.put(job.cache_key, payload)
            job.result = payload
            job.state = DONE
        except ReproError as exc:
            job.error = _error_payload(exc)
            job.state = FAILED
        except Exception as exc:  # defensive: a job must never kill a worker
            job.error = _error_payload(exc)
            job.state = FAILED
        finally:
            job.finished_at = time.time()
            with self._obs_lock:
                self.recorder.absorb(
                    recorder.trace_payload(),
                    recorder.metrics,
                    track=f"serve:{job.id}",
                )
                self.recorder.counter(
                    "serve.jobs.completed", state=job.state
                ).inc()
                self.recorder.histogram("serve.job.duration_s").observe(
                    job.duration_s or 0.0
                )

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Health snapshot (the ``/healthz`` body)."""
        with self._jobs_lock:
            counts: Dict[str, int] = {state: 0 for state in STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
        return {
            "status": "ok" if self._accepting else "draining",
            "accepting": self._accepting,
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "job_workers": self.job_workers,
            "jobs": counts,
            "cache": self.cache.stats(),
        }

    def metrics_text(self) -> str:
        """Prometheus exposition of the service registry."""
        with self._obs_lock:
            self.recorder.gauge("serve.queue.depth").set(self._queue.qsize())
            return self.recorder.metrics.prometheus_text()

    @property
    def accepting(self) -> bool:
        return self._accepting

    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop intake; drain (or cancel) queued work; join the workers.

        Idempotent. With ``drain=True`` every job already queued still
        runs to completion; with ``drain=False`` queued jobs are
        cancelled and only in-flight ones finish.
        """
        self._accepting = False
        if not drain:
            with self._jobs_lock:
                queued = [j for j in self._jobs.values() if j.state == QUEUED]
            for job in queued:
                self.cancel(job.id)
        if self._started:
            # Sentinels queue *behind* remaining jobs, so workers finish
            # the backlog before exiting. put() may block briefly when
            # the queue is full of real jobs — that is the drain.
            for _ in self._threads:
                self._queue.put(_STOP)
            for thread in self._threads:
                thread.join(timeout)
            self._threads = []
            self._started = False


class _LockedCache(ResultCache):
    """ResultCache sharing the service's recorder lock for its counters."""

    def __init__(self, capacity, metrics, lock) -> None:
        super().__init__(capacity, metrics)
        self._lock = lock
